"""Figure 10: cooperation between RENO_CF and RENO_CSE+RA."""

import pytest

from repro.harness import figure10_division_of_labor


@pytest.mark.benchmark(group="figure10")
def test_figure10_specint(benchmark, suite_subsets, save_report):
    spec, _ = suite_subsets
    report = benchmark.pedantic(
        figure10_division_of_labor, args=("specint",),
        kwargs={"workloads": spec}, rounds=1, iterations=1,
    )
    save_report(report, "fig10_specint.txt")
    # Paper: RENO beats loads-only integration handily, and adding a full IT
    # on top of RENO buys almost nothing.
    assert report.data[("avg", "RENO")] >= report.data[("avg", "LoadsInteg")]
    assert abs(report.data[("avg", "RENO+FullInteg")] - report.data[("avg", "RENO")]) < 0.05


@pytest.mark.benchmark(group="figure10")
def test_figure10_mediabench(benchmark, suite_subsets, save_report):
    _, media = suite_subsets
    report = benchmark.pedantic(
        figure10_division_of_labor, args=("mediabench",),
        kwargs={"workloads": media}, rounds=1, iterations=1,
    )
    save_report(report, "fig10_mediabench.txt")
    assert report.data[("avg", "RENO")] >= report.data[("avg", "LoadsInteg")]
