"""Figure 11: RENO compensating for fewer physical registers / narrower issue."""

import pytest

from repro.harness import figure11_issue_width, figure11_register_file


@pytest.mark.benchmark(group="figure11")
def test_figure11_register_file_specint(benchmark, suite_subsets, save_report):
    spec, _ = suite_subsets
    report = benchmark.pedantic(
        figure11_register_file, args=("specint",),
        kwargs={"workloads": spec}, rounds=1, iterations=1,
    )
    save_report(report, "fig11_registers_specint.txt")
    # Paper: CF+ME alone compensates for a 160 -> 112 reduction.
    assert report.data[("CF+ME", 112)] >= report.data[("BASE", 112)]
    assert report.data[("RENO", 96)] >= report.data[("BASE", 96)]
    assert report.data[("CF+ME", 112)] >= 0.95 * report.data[("BASE", 160)]


@pytest.mark.benchmark(group="figure11")
def test_figure11_issue_width_mediabench(benchmark, suite_subsets, save_report):
    _, media = suite_subsets
    report = benchmark.pedantic(
        figure11_issue_width, args=("mediabench",),
        kwargs={"workloads": media}, rounds=1, iterations=1,
    )
    save_report(report, "fig11_width_mediabench.txt")
    # Narrowing issue hurts the baseline; RENO recovers part of the loss.
    assert report.data[("BASE", "i2t2")] <= report.data[("BASE", "i3t4")]
    assert report.data[("RENO", "i2t3")] >= report.data[("BASE", "i2t3")]
    assert report.data[("RENO", "i2t2")] >= report.data[("BASE", "i2t2")]
