"""In-text results: §2.3 instruction mix, §3.3 fusion sensitivity, §4.4 IT cost."""

import pytest

from repro.harness import fusion_sensitivity, instruction_mix, integration_table_cost


@pytest.mark.benchmark(group="text")
def test_instruction_mix_both_suites(benchmark, suite_subsets, save_report):
    spec, media = suite_subsets

    def run():
        return (instruction_mix("specint", workloads=spec),
                instruction_mix("mediabench", workloads=media))

    spec_report, media_report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(spec_report, "mix_specint.txt")
    save_report(media_report, "mix_mediabench.txt")
    # Paper: reg-imm additions are a surprisingly large fraction of the
    # dynamic stream (12% SPEC / 17% MediaBench); moves are ~4%.
    assert spec_report.data["amean"]["addis"] > 0.08
    assert media_report.data["amean"]["addis"] > 0.10
    assert 0.0 < spec_report.data["amean"]["moves"] < 0.15


@pytest.mark.benchmark(group="text")
def test_fusion_sensitivity(benchmark, suite_subsets, save_report):
    _, media = suite_subsets
    report = benchmark.pedantic(
        fusion_sensitivity, args=("mediabench",),
        kwargs={"workloads": media}, rounds=1, iterations=1,
    )
    save_report(report, "fusion_sensitivity.txt")
    fast_mean = sum(entry["fast"] for entry in report.data.values()) / len(report.data)
    slow_mean = sum(entry["slow"] for entry in report.data.values()) / len(report.data)
    # Slower fusion can only reduce the benefit, and it must not turn RENO_CF
    # into a large slowdown.  (The paper's "only 20-25% of the benefit is
    # lost" claim is magnitude-sensitive and is discussed in EXPERIMENTS.md:
    # our kernels fuse a larger fraction of operations than SPEC/MediaBench,
    # so charging every fusion an extra cycle costs relatively more here.)
    assert slow_mean <= fast_mean + 0.01
    assert slow_mean > -0.05


@pytest.mark.benchmark(group="text")
def test_integration_table_cost(benchmark, suite_subsets, save_report):
    spec, _ = suite_subsets
    report = benchmark.pedantic(
        integration_table_cost, args=("specint",),
        kwargs={"workloads": spec}, rounds=1, iterations=1,
    )
    save_report(report, "it_cost_specint.txt")
    saved = [entry["saved"] for entry in report.data.values()]
    # Paper: the loads-only division of labor cuts IT bandwidth by ~56%.
    assert sum(saved) / len(saved) > 0.3
