"""Figure 12: RENO with a 2-cycle wakeup-select loop."""

import pytest

from repro.harness import figure12_scheduler


@pytest.mark.benchmark(group="figure12")
def test_figure12_specint(benchmark, suite_subsets, save_report):
    spec, _ = suite_subsets
    report = benchmark.pedantic(
        figure12_scheduler, args=("specint",),
        kwargs={"workloads": spec}, rounds=1, iterations=1,
    )
    save_report(report, "fig12_specint.txt")
    # The slow scheduler hurts the baseline; RENO recovers part of the loss.
    assert report.data[("BASE", "sched2")] <= report.data[("BASE", "sched1")]
    assert report.data[("RENO", "sched2")] >= report.data[("BASE", "sched2")]


@pytest.mark.benchmark(group="figure12")
def test_figure12_mediabench(benchmark, suite_subsets, save_report):
    _, media = suite_subsets
    report = benchmark.pedantic(
        figure12_scheduler, args=("mediabench",),
        kwargs={"workloads": media}, rounds=1, iterations=1,
    )
    save_report(report, "fig12_mediabench.txt")
    assert report.data[("RENO", "sched2")] >= report.data[("BASE", "sched2")]
