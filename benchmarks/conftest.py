"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure of the paper.  The benchmark
timer measures how long the experiment takes to run; the experiment's table
(the actual reproduction artifact) is printed and also written to
``benchmarks/results/<name>.txt`` so it survives the run.

The workload subsets below keep every benchmark in the tens-of-seconds range;
pass ``--full-suites`` to run every kernel of both suites (slow).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Representative subsets used by default (full suites are available with
#: ``--full-suites`` but take much longer in pure Python).
SPEC_SUBSET = ["gzip_like", "vortex_like", "crafty_like", "parser_like", "twolf_like"]
MEDIA_SUBSET = ["adpcm_decode_like", "gsm_decode_like", "jpeg_encode_like",
                "epic_like", "mpeg2_encode_like"]
CRITPATH_SPEC_SUBSET = ["gzip_like", "parser_like", "vortex_like"]
CRITPATH_MEDIA_SUBSET = ["adpcm_decode_like", "gsm_decode_like", "mpeg2_encode_like"]


def pytest_addoption(parser):
    parser.addoption("--full-suites", action="store_true", default=False,
                     help="run every workload of both suites in each benchmark")


@pytest.fixture
def suite_subsets(request):
    """(spec_workloads, media_workloads) — None means the full suite."""
    if request.config.getoption("--full-suites"):
        return None, None
    return SPEC_SUBSET, MEDIA_SUBSET


@pytest.fixture
def save_report():
    """Print an ExperimentReport and persist it under benchmarks/results/."""

    def _save(report, filename: str):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = str(report)
        (RESULTS_DIR / filename).write_text(text + "\n")
        print("\n" + text)
        return report

    return _save
