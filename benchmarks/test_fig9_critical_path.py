"""Figure 9: critical-path breakdown (baseline vs CF+ME vs full RENO)."""

import pytest

from repro.harness import figure9_critical_path
from benchmarks.conftest import CRITPATH_MEDIA_SUBSET, CRITPATH_SPEC_SUBSET


@pytest.mark.benchmark(group="figure9")
def test_figure9_specint(benchmark, save_report):
    report = benchmark.pedantic(
        figure9_critical_path, args=("specint",),
        kwargs={"workloads": CRITPATH_SPEC_SUBSET}, rounds=1, iterations=1,
    )
    save_report(report, "fig9_specint.txt")
    for name in CRITPATH_SPEC_SUBSET:
        fractions = report.data[(name, "RENO")]
        assert abs(sum(fractions.values()) - 1.0) < 1e-9


@pytest.mark.benchmark(group="figure9")
def test_figure9_mediabench(benchmark, save_report):
    report = benchmark.pedantic(
        figure9_critical_path, args=("mediabench",),
        kwargs={"workloads": CRITPATH_MEDIA_SUBSET}, rounds=1, iterations=1,
    )
    save_report(report, "fig9_mediabench.txt")
    # The paper: RENO shifts ALU criticality toward fetch criticality on
    # MediaBench.  Check the direction on the aggregate.
    base_alu = sum(report.data[(n, "BASE")]["alu_exec"] for n in CRITPATH_MEDIA_SUBSET)
    reno_alu = sum(report.data[(n, "RENO")]["alu_exec"] for n in CRITPATH_MEDIA_SUBSET)
    base_fetch = sum(report.data[(n, "BASE")]["fetch"] for n in CRITPATH_MEDIA_SUBSET)
    reno_fetch = sum(report.data[(n, "RENO")]["fetch"] for n in CRITPATH_MEDIA_SUBSET)
    assert reno_alu <= base_alu + 0.05
    assert reno_fetch >= base_fetch - 0.05
