"""Figure 8: instruction elimination rates and RENO speedups (4- and 6-wide)."""

import pytest

from repro.harness import figure8_elimination_and_speedup


@pytest.mark.benchmark(group="figure8")
def test_figure8_specint(benchmark, suite_subsets, save_report):
    spec, _ = suite_subsets
    report = benchmark.pedantic(
        figure8_elimination_and_speedup, args=("specint",),
        kwargs={"workloads": spec}, rounds=1, iterations=1,
    )
    save_report(report, "fig8_specint.txt")
    mean = report.data["amean"]
    assert 0.05 < mean["total"] < 0.60          # paper: ~22% eliminated/folded
    assert mean["cf"] > mean["me"]              # CF carries more than ME
    assert mean["speedup4"] > 0.0               # RENO speeds up the 4-wide machine


@pytest.mark.benchmark(group="figure8")
def test_figure8_mediabench(benchmark, suite_subsets, save_report):
    _, media = suite_subsets
    report = benchmark.pedantic(
        figure8_elimination_and_speedup, args=("mediabench",),
        kwargs={"workloads": media}, rounds=1, iterations=1,
    )
    save_report(report, "fig8_mediabench.txt")
    mean = report.data["amean"]
    assert mean["cf"] > 0.10                    # paper: CF folds ~16% on MediaBench
    assert mean["speedup4"] > 0.0
