"""The ``store-schema`` checker: the result-store wire contract is frozen.

The store protocol (:mod:`repro.store.schema`) is what ``repro
store-serve`` servers, :class:`~repro.store.http.HTTPStore` clients and
cross-host fleet workers of different package versions speak to each
other.  This checker extracts every reply dataclass — field names,
annotations, defaults, order — plus ``STORE_SCHEMA_VERSION`` and the
auth constants (``AUTH_HEADER`` / ``AUTH_SCHEME``) from the module's AST
and diffs them against the ``"store"`` section of the committed baseline
(``scripts/schema_baseline.json``, shared with the ``schema-freeze``
rule):

* a **removed** class or field, a **type change**, a **default change**
  or a **reorder** always fails — deployed peers would misread replies;
* an **addition** is legal only together with a ``STORE_SCHEMA_VERSION``
  bump, recorded by regenerating the baseline (``python -m repro lint
  --update-baseline``) — the same evolution policy as the wire schema;
* a changed **auth header or scheme** *always* fails: every deployed
  client would silently start answering 401s, and no version bump makes
  that compatible.  Changing auth means a new header next to the old
  one, not an edit.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.lint.base import Checker, Finding, register_checker
from repro.lint.schema_freeze import (
    DEFAULT_BASELINE,
    _is_dataclass_decorated,
    dataclass_fields,
    diff_schema,
    module_constants,
)

#: Repo-relative location of the store-schema module this checker freezes.
STORE_MODULE = "src/repro/store/schema.py"

#: The module-level constant naming the store protocol version.
VERSION_CONSTANT = "STORE_SCHEMA_VERSION"

#: Auth constants frozen *unconditionally* (no version-bump escape).
AUTH_CONSTANTS = ("AUTH_HEADER", "AUTH_SCHEME")

#: The baseline document key holding this contract's section.
BASELINE_KEY = "store"


def extract_store_schema(tree: ast.Module) -> dict:
    """The frozen view of the store-schema module.

    Returns ``{"store_schema_version": int | None, "auth": {name: str},
    "classes": {...}}`` with the same per-class shape as
    :func:`repro.lint.schema_freeze.extract_schema`.
    """
    constants = module_constants(
        tree, frozenset({VERSION_CONSTANT, *AUTH_CONSTANTS}))
    version = constants.get(VERSION_CONSTANT)
    classes: dict[str, dict] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node):
            classes[node.name] = {"line": node.lineno,
                                  "fields": dataclass_fields(node)}
    return {
        "store_schema_version": version if isinstance(version, int) else None,
        "auth": {name: constants.get(name) for name in AUTH_CONSTANTS},
        "classes": classes,
    }


def store_schema_to_baseline(schema: dict) -> dict:
    """Strip volatile line numbers; the committed ``"store"`` section."""
    return {
        "store_schema_version": schema["store_schema_version"],
        "auth": dict(schema["auth"]),
        "classes": {
            name: {"fields": [{key: field[key]
                               for key in ("name", "type", "default")}
                              for field in record["fields"]]}
            for name, record in schema["classes"].items()
        },
    }


def load_store_schema(root: Path) -> tuple[dict, str] | None:
    """Parse the repo's store-schema module (None when absent)."""
    path = root / STORE_MODULE
    if not path.is_file():
        return None
    return extract_store_schema(ast.parse(path.read_text())), STORE_MODULE


def diff_store_schema(current: dict, baseline: dict, rel: str,
                      rule: str) -> list[Finding]:
    """Every finding from comparing the live store contract to baseline."""
    findings = diff_schema(current, baseline, rel, rule,
                           version_key="store_schema_version",
                           version_constant=VERSION_CONSTANT)
    baseline_auth = baseline.get("auth", {})
    for name in AUTH_CONSTANTS:
        frozen = baseline_auth.get(name)
        live = current["auth"].get(name)
        if frozen is not None and live != frozen:
            findings.append(Finding(
                path=rel, line=1, rule=rule,
                message=(f"{name} changed {frozen!r} -> {live!r}; the auth "
                         f"header/scheme is frozen unconditionally — every "
                         f"deployed store client would start answering "
                         f"401s.  Introduce a new header alongside the old "
                         f"one instead of editing it")))
    return findings


@register_checker
class StoreSchemaChecker(Checker):
    """Diff the live store wire contract against the committed baseline."""

    name = "store-schema"
    description = ("store reply dataclasses and auth constants in "
                   "repro.store.schema evolve additively only, recorded "
                   "in the 'store' section of scripts/schema_baseline.json "
                   "next to a STORE_SCHEMA_VERSION bump; auth header/"
                   "scheme changes always fail")
    scope = "project"

    def __init__(self, baseline_path: str = DEFAULT_BASELINE):
        self.baseline_path = baseline_path

    def check_project(self, root: Path) -> list[Finding]:
        """Compare ``root``'s store-schema module to its baseline section."""
        loaded = load_store_schema(root)
        if loaded is None:
            return []                    # fixture trees without a store
        current, rel = loaded
        baseline_file = root / self.baseline_path
        if not baseline_file.is_file():
            return [Finding(
                path=self.baseline_path, line=0, rule=self.name,
                message=(f"schema baseline {self.baseline_path} is missing; "
                         f"generate it with `python -m repro lint "
                         f"--update-baseline`"))]
        try:
            document = json.loads(baseline_file.read_text())
        except ValueError as error:
            return [Finding(
                path=self.baseline_path, line=0, rule=self.name,
                message=f"baseline is not valid JSON ({error}); regenerate "
                        f"it with `python -m repro lint --update-baseline`")]
        section = document.get(BASELINE_KEY)
        if not isinstance(section, dict):
            return [Finding(
                path=self.baseline_path, line=0, rule=self.name,
                message=(f"baseline has no {BASELINE_KEY!r} section for the "
                         f"store wire contract; regenerate it with `python "
                         f"-m repro lint --update-baseline`"))]
        return diff_store_schema(current, section, rel, self.name)
