"""The ``lock-discipline`` checker: guarded attributes stay under the lock.

The threaded classes (:class:`repro.api.session.Session`/``Job``,
:class:`repro.api.fleet.FleetBroker`/``FleetExecutor``) declare which of
their attributes the instance lock protects::

    class Session:
        _GUARDED_BY_LOCK = ("_jobs_by_id", "_inflight", "_closed", ...)

Within such a class, every ``self.<attr>`` read or write of a guarded
attribute must happen either

* lexically inside a ``with self._lock:`` block, or
* inside a private method whose name ends in ``_locked`` (the repo's
  convention for "caller holds the lock"), or
* inside ``__init__`` (the instance is not yet shared).

Code inside a nested function or lambda is treated as *outside* any
enclosing ``with self._lock:`` — a closure can run long after the lock was
released — so guarded accesses there are flagged too.

Example-based tests can only cover races someone imagined; this checker
covers the whole class of "read a shared field without the lock" bugs at
the 40+ ``_lock`` sites in the session and fleet layers.
"""

from __future__ import annotations

import ast

from repro.lint.base import (
    Checker,
    FileContext,
    Finding,
    register_checker,
    string_tuple,
)

#: The class-level annotation naming the guarded attributes.
GUARD_ANNOTATION = "_GUARDED_BY_LOCK"

#: The lock attribute the ``with`` blocks must hold.
LOCK_ATTR = "_lock"


def guarded_attributes(class_node: ast.ClassDef) -> tuple[str, ...] | None:
    """The class's ``_GUARDED_BY_LOCK`` tuple, or None when absent."""
    for stmt in class_node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == GUARD_ANNOTATION:
                    return string_tuple(stmt.value) or ()
        elif (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
              and isinstance(stmt.target, ast.Name)
              and stmt.target.id == GUARD_ANNOTATION):
            return string_tuple(stmt.value) or ()
    return None


def _holds_lock(with_node: ast.With) -> bool:
    """Whether one ``with`` statement acquires ``self._lock``."""
    for item in with_node.items:
        expr = item.context_expr
        if (isinstance(expr, ast.Attribute) and expr.attr == LOCK_ATTR
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return True
    return False


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method body tracking whether ``self._lock`` is held."""

    def __init__(self, ctx: FileContext, class_name: str, method_name: str,
                 guarded: frozenset[str], findings: list[Finding]):
        self._ctx = ctx
        self._class_name = class_name
        self._method_name = method_name
        self._guarded = guarded
        self._findings = findings
        self._lock_depth = 0

    def visit_With(self, node: ast.With) -> None:
        """Enter a ``with`` block, noting whether it takes the lock."""
        held = _holds_lock(node)
        for item in node.items:
            self.visit(item.context_expr)    # the lock expr itself is exempt
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if held:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if held:
            self._lock_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """A nested def may outlive the lock: scan its body as unlocked."""
        self._visit_unlocked_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async nested defs get the same escape treatment."""
        self._visit_unlocked_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        """Lambdas may outlive the lock too."""
        self._visit_unlocked_scope(node)

    def _visit_unlocked_scope(self, node: ast.AST) -> None:
        depth, self._lock_depth = self._lock_depth, 0
        self.generic_visit(node)
        self._lock_depth = depth

    def visit_Attribute(self, node: ast.Attribute) -> None:
        """Flag a guarded ``self.<attr>`` access outside the lock."""
        if (isinstance(node.value, ast.Name) and node.value.id == "self"
                and node.attr in self._guarded and self._lock_depth == 0):
            access = ("write" if isinstance(node.ctx, (ast.Store, ast.Del))
                      else "read")
            self._findings.append(self._ctx.finding(
                node,
                f"{self._class_name}.{node.attr} is declared in "
                f"{GUARD_ANNOTATION} but {self._method_name}() {access}s it "
                f"outside `with self.{LOCK_ATTR}:`; hold the lock, or move "
                f"the access into a *_locked method",
                LockDisciplineChecker.name))
        self.generic_visit(node)


@register_checker
class LockDisciplineChecker(Checker):
    """Enforce ``_GUARDED_BY_LOCK`` access discipline per class."""

    name = "lock-discipline"
    description = ("attributes listed in _GUARDED_BY_LOCK may only be "
                   "touched under `with self._lock:` or in *_locked methods")
    scope = "file"

    def check_file(self, ctx: FileContext) -> list[Finding]:
        """Check every annotated class in one file."""
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                guarded = guarded_attributes(node)
                if guarded:
                    self._check_class(ctx, node, frozenset(guarded), findings)
        return findings

    @staticmethod
    def _check_class(ctx: FileContext, class_node: ast.ClassDef,
                     guarded: frozenset[str],
                     findings: list[Finding]) -> None:
        for stmt in class_node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__" or stmt.name.endswith("_locked"):
                continue                 # unshared instance / lock-held helper
            visitor = _MethodVisitor(ctx, class_node.name, stmt.name,
                                     guarded, findings)
            for inner in stmt.body:
                visitor.visit(inner)
