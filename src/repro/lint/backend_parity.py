"""The ``backend-parity`` checker: the compiled kernel's ABI tracks the window.

The compiled cycle-loop backend marshals
:class:`repro.uarch.inflight.InFlightWindow` into flat C arrays whose
layout is declared by ``WINDOW_FIELDS`` in
:mod:`repro.uarch.compiled.emit`.  A new field added to the class and
forgotten in the table would silently bypass the compiled backend: the
kernel would run without that state and marshal-out would restore a stale
value — no crash, just divergence the equivalence tests may or may not
catch depending on the workload.

This checker closes that gap structurally, with the same
reviewed-exemption pattern as ``snapshot-coverage``:

* every ``self.<attr>`` assigned in ``InFlightWindow.__init__`` must
  appear in ``WINDOW_FIELDS`` (fields the marshaller deliberately skips
  are still listed there and named in ``WINDOW_EXEMPT``, each with a
  justification comment — an exemption is a reviewed decision, not a
  default);
* every ``WINDOW_FIELDS`` entry must be assigned in ``__init__`` (stale
  or typo'd entries would emit a C struct slot nothing populates);
* ``WINDOW_FIELDS`` must match the class's ``__slots__`` order exactly —
  the tuple's position *is* the generated struct layout;
* ``WINDOW_EXEMPT`` may only name ``WINDOW_FIELDS`` entries.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.base import Checker, Finding, register_checker, string_tuple
from repro.lint.snapshot import _init_assigned_attrs

#: Repo-relative module defining the window class.
WINDOW_MODULE = "src/repro/uarch/inflight.py"

#: Repo-relative module defining the kernel ABI tables.
EMIT_MODULE = "src/repro/uarch/compiled/emit.py"

#: The structure-of-arrays class the compiled backend marshals.
WINDOW_CLASS = "InFlightWindow"

#: The emitter's ordered field table (drives the generated struct layout).
FIELDS_CONSTANT = "WINDOW_FIELDS"

#: The reviewed not-marshalled exemption set.
EXEMPT_CONSTANT = "WINDOW_EXEMPT"


def _module_assign(tree: ast.Module, name: str) -> ast.Assign | None:
    """The module-level ``NAME = ...`` statement, or None when absent."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
        elif (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == name and stmt.value is not None):
            # Re-shape so callers see one node kind either way.
            shim = ast.Assign(targets=[stmt.target], value=stmt.value)
            shim.lineno = stmt.lineno
            return shim
    return None


def _string_collection(node: ast.expr) -> tuple[str, ...] | None:
    """String names from a tuple/list/set literal or a ``frozenset({...})``
    call, preserving source order; None for any other shape."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("frozenset", "set") and len(node.args) == 1:
        node = node.args[0]
    if isinstance(node, ast.Set):
        elements = node.elts
    elif isinstance(node, (ast.Tuple, ast.List)):
        return string_tuple(node)
    else:
        return None
    names = []
    for element in elements:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return tuple(names)


def _find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    """The top-level class definition called ``name``, or None."""
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def _class_slots(class_node: ast.ClassDef) -> tuple[str, ...] | None:
    """The class's ``__slots__`` tuple of names, or None when absent."""
    for stmt in class_node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return string_tuple(stmt.value)
    return None


@register_checker
class BackendParityChecker(Checker):
    """Cross-check ``InFlightWindow`` against the emitter's field table."""

    name = "backend-parity"
    description = ("emit.WINDOW_FIELDS/WINDOW_EXEMPT must exactly track "
                   "InFlightWindow.__init__ and __slots__, so a new window "
                   "field cannot silently bypass the compiled backend")
    scope = "project"

    def check_project(self, root: Path) -> list[Finding]:
        """Diff the window class under ``root`` against the ABI tables."""
        window_path = root / WINDOW_MODULE
        emit_path = root / EMIT_MODULE
        if not window_path.is_file() or not emit_path.is_file():
            return []                   # fixture trees without the backend

        findings: list[Finding] = []

        def flag(path: str, line: int, message: str) -> None:
            findings.append(Finding(path=path, line=line, rule=self.name,
                                    message=message))

        window_tree = ast.parse(window_path.read_text())
        emit_tree = ast.parse(emit_path.read_text())

        class_node = _find_class(window_tree, WINDOW_CLASS)
        if class_node is None:
            flag(WINDOW_MODULE, 1,
                 f"class {WINDOW_CLASS} not found; the compiled backend's "
                 f"ABI tables in {EMIT_MODULE} track it and must move with "
                 f"it")
            return findings

        fields_stmt = _module_assign(emit_tree, FIELDS_CONSTANT)
        fields = _string_collection(fields_stmt.value) \
            if fields_stmt is not None else None
        if fields is None:
            flag(EMIT_MODULE, getattr(fields_stmt, "lineno", 1),
                 f"{FIELDS_CONSTANT} must be a literal tuple of field-name "
                 f"strings; the backend-parity checker cannot verify the "
                 f"kernel ABI without it")
            return findings

        exempt_stmt = _module_assign(emit_tree, EXEMPT_CONSTANT)
        exempt = _string_collection(exempt_stmt.value) \
            if exempt_stmt is not None else None
        if exempt is None:
            flag(EMIT_MODULE, getattr(exempt_stmt, "lineno", 1),
                 f"{EXEMPT_CONSTANT} must be a literal frozenset of "
                 f"field-name strings (empty is fine); each entry is a "
                 f"reviewed not-marshalled decision")
            exempt = ()

        assigned = _init_assigned_attrs(class_node)
        fields_line = fields_stmt.lineno
        for attr, line in sorted(assigned.items()):
            if attr not in fields:
                flag(WINDOW_MODULE, line,
                     f"{WINDOW_CLASS}.__init__ assigns self.{attr} but "
                     f"{FIELDS_CONSTANT} in {EMIT_MODULE} does not list it; "
                     f"the compiled backend would silently run without that "
                     f"state (add it to {FIELDS_CONSTANT}, and to "
                     f"{EXEMPT_CONSTANT} only with a justification comment)")
        for attr in fields:
            if attr not in assigned:
                flag(EMIT_MODULE, fields_line,
                     f"{FIELDS_CONSTANT} lists {attr!r} but "
                     f"{WINDOW_CLASS}.__init__ never assigns it; the "
                     f"generated struct would carry a slot nothing "
                     f"populates (stale or typo'd entry)")

        slots = _class_slots(class_node)
        if slots is not None and fields != slots \
                and set(fields) == set(slots):
            flag(EMIT_MODULE, fields_line,
                 f"{FIELDS_CONSTANT} lists the same names as "
                 f"{WINDOW_CLASS}.__slots__ but in a different order; the "
                 f"tuple position is the generated struct layout, so the "
                 f"order must match exactly")

        for attr in sorted(set(exempt) - set(fields)):
            flag(EMIT_MODULE,
                 exempt_stmt.lineno if exempt_stmt is not None else 1,
                 f"{EXEMPT_CONSTANT} names {attr!r} which is not in "
                 f"{FIELDS_CONSTANT}; exemptions may only cover listed "
                 f"fields")
        return findings
