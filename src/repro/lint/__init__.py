"""``repro.lint`` — the AST-based invariant linter.

A plugin-style static-analysis framework enforcing the repo's four
correctness invariants *as a class*, before any test runs:

* ``determinism`` — no builtin ``hash()``, wall-clock or RNG reads in
  simulation code, no unordered set iteration
  (:mod:`repro.lint.determinism`);
* ``lock-discipline`` — ``_GUARDED_BY_LOCK`` attributes only touched
  under ``with self._lock:`` (:mod:`repro.lint.locks`);
* ``schema-freeze`` — additive-only wire-schema evolution against the
  committed ``scripts/schema_baseline.json``
  (:mod:`repro.lint.schema_freeze`);
* ``snapshot-coverage`` — every mutable ``__init__`` attribute is
  snapshotted or explicitly exempt (:mod:`repro.lint.snapshot`);
* ``store-schema`` — the result-store wire contract and auth constants
  are frozen against the baseline's ``"store"`` section
  (:mod:`repro.lint.store_schema`);

plus the folded-in documentation gates (``docstrings``, ``docs``).  Run
it with ``python -m repro lint [paths] [--rule R] [--json]``; see
``docs/linting.md`` for the rule catalog and suppression syntax.
"""

from repro.lint.base import (
    Checker,
    FileContext,
    Finding,
    all_checkers,
    get_checker,
    register_checker,
)
from repro.lint.runner import (
    LintUsageError,
    format_json,
    format_text,
    parse_report,
    run_lint,
    update_baseline,
)

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "LintUsageError",
    "all_checkers",
    "format_json",
    "format_text",
    "get_checker",
    "parse_report",
    "register_checker",
    "run_lint",
    "update_baseline",
]
