"""The ``docs`` checker: markdown links resolve, python fences parse.

The dependency-free stand-in for ``mkdocs build --strict`` that used to
live only in ``scripts/check_docs.py``, registered as a lint checker.  It
walks every markdown file in ``docs/`` plus the README and verifies that

* every relative markdown link/image points at an existing file
  (``http(s)``/``mailto`` targets are skipped — CI must not touch the
  network), including ``#anchor`` targets against the linked file's
  headings; and
* every fenced ``python`` code block parses (``ast.parse``), so cookbook
  examples cannot rot silently; fences tagged ``python noqa`` are skipped
  (intentional fragments).

The legacy script now delegates here, keeping its CLI stable.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.lint.base import Checker, Finding, register_checker

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: Path) -> list[Path]:
    """``docs/**/*.md`` plus the top-level README, sorted."""
    files = sorted((root / "docs").rglob("*.md")) \
        if (root / "docs").is_dir() else []
    readme = root / "README.md"
    if readme.is_file():
        files.append(readme)
    return files


def anchors_of(path: Path) -> set[str]:
    """Every heading anchor slug one markdown file defines."""
    anchors = set()
    for line in path.read_text().splitlines():
        match = HEADING_RE.match(line)
        if match:
            anchors.add(slugify(match.group(1)))
    return anchors


def _check_links(path: Path, root: Path, rule: str,
                 findings: list[Finding]) -> None:
    rel = path.relative_to(root).as_posix()
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            linked = path if not file_part else (path.parent / file_part).resolve()
            if file_part and not linked.exists():
                findings.append(Finding(path=rel, line=number, rule=rule,
                                        message=f"broken link {target!r}"))
                continue
            if anchor and linked.suffix == ".md" and linked.exists():
                if slugify(anchor) not in anchors_of(linked):
                    findings.append(Finding(
                        path=rel, line=number, rule=rule,
                        message=f"missing anchor {target!r}"))


def _check_python_fences(path: Path, root: Path, rule: str,
                         findings: list[Finding]) -> None:
    rel = path.relative_to(root).as_posix()
    in_fence = False
    fence_tag = ""
    fence_info = ""
    block: list[str] = []
    start = 0
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if not in_fence and stripped.startswith("```"):
            in_fence = True
            parts = stripped[3:].split(None, 1)
            fence_tag = parts[0].lower() if parts else ""
            fence_info = parts[1] if len(parts) > 1 else ""
            block = []
            start = number
        elif in_fence and stripped == "```":
            in_fence = False
            if fence_tag == "python" and "noqa" not in fence_info:
                try:
                    ast.parse("\n".join(block))
                except SyntaxError as error:
                    findings.append(Finding(
                        path=rel, line=start, rule=rule,
                        message=(f"python example does not parse "
                                 f"({error.msg}, line {error.lineno})")))
        elif in_fence:
            block.append(line)


def check_docs_tree(root: Path, rule: str = "docs") -> list[Finding]:
    """Every docs finding for one repo root (shared with the legacy CLI)."""
    findings: list[Finding] = []
    for path in markdown_files(root):
        _check_links(path, root, rule, findings)
        _check_python_fences(path, root, rule, findings)
    return findings


@register_checker
class DocsChecker(Checker):
    """Relative links resolve and python fences parse, docs/ + README."""

    name = "docs"
    description = ("markdown links in docs/ and README resolve (anchors "
                   "included) and fenced python examples parse")
    scope = "project"

    def check_project(self, root: Path) -> list[Finding]:
        """Check the whole docs tree under ``root``."""
        return check_docs_tree(root, self.name)
