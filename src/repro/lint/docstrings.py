"""The ``docstrings`` checker: coverage gate over the hot-path packages.

The interrogate-style gate that used to live only in
``scripts/check_docstrings.py``, registered as a lint checker so one
``python -m repro lint`` invocation runs every static gate.  Modules,
classes and public functions/methods (names not starting with ``_``;
``__init__`` exempt — its contract belongs to the class docstring) count
toward coverage; when a package set drops below the threshold, every
undocumented definition becomes a finding so the gate is actionable.

The legacy script now delegates here, keeping its CLI stable.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.base import Checker, Finding, register_checker

#: Packages the coverage gate walks (repo-relative).
DEFAULT_PACKAGES = ("src/repro/uarch", "src/repro/harness", "src/repro/api",
                    "src/repro/lint", "src/repro/store")

#: Minimum documented fraction (percent) before findings fire.
DEFAULT_THRESHOLD = 90.0


def iter_definitions(tree: ast.Module, module_name: str):
    """Yield ``(qualified name, node)`` for the module, classes, public defs."""
    yield module_name, tree
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield f"{module_name}.{node.name}", node
            for child in node.body:
                if (isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and not child.name.startswith("_")):
                    yield f"{module_name}.{node.name}.{child.name}", child
    for node in tree.body:
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not node.name.startswith("_")):
            yield f"{module_name}.{node.name}", node


def docstring_coverage(root: Path, packages=DEFAULT_PACKAGES):
    """Walk ``packages`` under ``root``.

    Returns ``(documented, missing)`` where ``documented`` is a list of
    qualified names and ``missing`` is a list of
    ``(qualified name, repo-relative path, line)`` tuples.
    """
    documented: list[str] = []
    missing: list[tuple[str, str, int]] = []
    for package in packages:
        package_path = root / package
        if not package_path.is_dir():
            continue
        base = root / "src" if (root / "src") in package_path.parents \
            or package_path == root / "src" else root
        for path in sorted(package_path.rglob("*.py")):
            module_name = str(path.relative_to(base)) \
                .removesuffix(".py").replace("/", ".")
            tree = ast.parse(path.read_text())
            rel = path.relative_to(root).as_posix()
            for name, node in iter_definitions(tree, module_name):
                if ast.get_docstring(node):
                    documented.append(name)
                else:
                    missing.append((name, rel, getattr(node, "lineno", 1)))
    return documented, missing


@register_checker
class DocstringChecker(Checker):
    """Fail when documented-definition coverage drops below the threshold."""

    name = "docstrings"
    description = (f"docstring coverage over {', '.join(DEFAULT_PACKAGES)} "
                   f"stays >= {DEFAULT_THRESHOLD:.0f}%")
    scope = "project"

    def __init__(self, packages=DEFAULT_PACKAGES,
                 threshold: float = DEFAULT_THRESHOLD):
        self.packages = tuple(packages)
        self.threshold = threshold

    def check_project(self, root: Path) -> list[Finding]:
        """One finding per undocumented definition when below threshold."""
        documented, missing = docstring_coverage(root, self.packages)
        total = len(documented) + len(missing)
        coverage = 100.0 * len(documented) / total if total else 100.0
        if coverage >= self.threshold:
            return []
        return [
            Finding(path=rel, line=line, rule=self.name,
                    message=(f"{name} has no docstring (package coverage "
                             f"{coverage:.1f}% is below the "
                             f"{self.threshold:.1f}% gate)"))
            for name, rel, line in missing
        ]
