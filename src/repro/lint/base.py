"""Core types of the invariant linter: findings, contexts, the registry.

The linter is a plugin framework over Python's ``ast``: each *checker*
enforces one repository invariant (rule) and yields structured
:class:`Finding` records.  Two checker scopes exist:

* **file** checkers receive one parsed :class:`FileContext` per Python
  file and inspect its AST (determinism, lock discipline, snapshot
  coverage);
* **project** checkers run once per lint invocation against the repo root
  (schema freeze against the committed baseline, docstring coverage,
  markdown docs).

Checkers are registered by :func:`register_checker` (usually as a class
decorator) and discovered through :func:`all_checkers`; the runner
(:mod:`repro.lint.runner`) drives them and applies suppressions.

Suppression syntax (per line, or per file with ``disable-file``)::

    risky_line()  # repro-lint: disable=determinism -- seeded RNG, stable
    # repro-lint: disable-file=lock-discipline -- single-threaded tool

A reason (the ``-- text`` tail) is **mandatory**: a bare suppression is
itself reported under the ``suppression`` rule, so silencing the linter
always leaves a grep-able justification behind.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Version stamp of the ``--json`` report shape.
LINT_SCHEMA_VERSION = 1

#: Rule id under which malformed suppressions are reported.
SUPPRESSION_RULE = "suppression"

#: The wildcard rule name: suppresses every rule on the line/file.
ALL_RULES = "all"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[\w,\- ]+?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One structured lint finding (sortable by location, then rule)."""

    path: str          #: Repo-relative posix path of the offending file.
    line: int          #: 1-based line number (0 for file-level findings).
    rule: str          #: The checker's rule id.
    message: str       #: Human-readable description of the violation.

    def __str__(self) -> str:
        """The one-line text-report form: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-safe form (one entry of the ``--json`` report)."""
        return {"path": self.path, "line": self.line,
                "rule": self.rule, "message": self.message}

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(path=payload["path"], line=int(payload["line"]),
                   rule=payload["rule"], message=payload["message"])


@dataclass
class Suppressions:
    """Parsed ``# repro-lint:`` directives of one source file."""

    #: line number -> set of rule names disabled on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule names disabled for the whole file.
    file_wide: set[str] = field(default_factory=set)
    #: (line, directive text) of suppressions missing the required reason.
    bare: list[tuple[int, str]] = field(default_factory=list)

    def allows(self, finding: Finding) -> bool:
        """Whether ``finding`` survives this file's suppressions.

        ``suppression`` findings themselves are never suppressible —
        otherwise a bare directive could silence its own rejection.
        """
        if finding.rule == SUPPRESSION_RULE:
            return True
        for rules in (self.file_wide, self.by_line.get(finding.line, ())):
            if finding.rule in rules or ALL_RULES in rules:
                return False
        return True


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``# repro-lint:`` directive from ``source``.

    The scan is line-based (directives live in comments, which the AST
    drops); a directive anywhere on a physical line covers that line.
    """
    result = Suppressions()
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {name.strip() for name in match.group("rules").split(",")
                 if name.strip()}
        if not match.group("reason"):
            result.bare.append((number, match.group(0).strip()))
            continue
        if match.group("kind") == "disable-file":
            result.file_wide |= rules
        else:
            result.by_line.setdefault(number, set()).update(rules)
    return result


@dataclass
class FileContext:
    """One parsed Python file handed to every file-scope checker."""

    path: Path                 #: Absolute path on disk.
    rel: str                   #: Repo-relative posix path (finding key).
    source: str                #: Raw file contents.
    tree: ast.Module           #: The parsed module.
    suppressions: Suppressions #: This file's ``# repro-lint:`` directives.

    @classmethod
    def load(cls, path: Path, root: Path) -> "FileContext":
        """Read and parse ``path`` (raises ``SyntaxError`` on bad source)."""
        source = path.read_text()
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path=path, rel=rel, source=source,
                   tree=ast.parse(source, filename=str(path)),
                   suppressions=parse_suppressions(source))

    def finding(self, node_or_line, message: str, rule: str) -> Finding:
        """Build a :class:`Finding` for an AST node (or raw line number)."""
        line = (node_or_line if isinstance(node_or_line, int)
                else getattr(node_or_line, "lineno", 0))
        return Finding(path=self.rel, line=line, rule=rule, message=message)


def string_tuple(node: ast.expr) -> tuple[str, ...] | None:
    """The value of a tuple/list-of-string-constants expression, else None.

    Shared by checkers that read class-level annotation tuples
    (``_GUARDED_BY_LOCK``, ``_SNAPSHOT_STATE``, ``_SNAPSHOT_EXEMPT``).
    """
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    names = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return tuple(names)


class Checker:
    """Base class every checker plugs in through.

    Subclasses set :attr:`name` (the rule id), :attr:`description` and
    :attr:`scope`, then override :meth:`check_file` (``scope="file"``) or
    :meth:`check_project` (``scope="project"``).
    """

    #: Rule id (used in findings, ``--rule`` filters and suppressions).
    name: str = ""
    #: One-line summary shown by ``repro lint --list-rules``.
    description: str = ""
    #: ``"file"`` (per parsed Python file) or ``"project"`` (once per run).
    scope: str = "file"

    def check_file(self, ctx: FileContext) -> list[Finding]:
        """Yield findings for one parsed file (file-scope checkers)."""
        return []

    def check_project(self, root: Path) -> list[Finding]:
        """Yield findings for the whole tree (project-scope checkers)."""
        return []


_REGISTRY: dict[str, Checker] = {}


def register_checker(cls):
    """Class decorator: instantiate and register a :class:`Checker`.

    Re-registering a name replaces the previous instance (tests register
    throwaway checkers); the instance itself is returned unchanged when a
    pre-built object is passed instead of a class.
    """
    checker = cls() if isinstance(cls, type) else cls
    if not checker.name:
        raise ValueError(f"checker {cls!r} has no rule name")
    _REGISTRY[checker.name] = checker
    return cls


def all_checkers() -> list[Checker]:
    """Every registered checker, sorted by rule name (deterministic)."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_checker(name: str) -> Checker:
    """Look one checker up by rule name (raises ``KeyError`` with hints)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise KeyError(f"unknown lint rule {name!r}; known rules: {known}")
