"""The ``schema-freeze`` checker: additive-only wire-schema evolution.

The versioned wire schema (:mod:`repro.api.schema`) is the compatibility
contract between servers, clients and fleet workers of different package
versions.  This checker extracts every ``@dataclass`` envelope — field
names, annotations, defaults, order — plus ``WIRE_SCHEMA_VERSION`` from
the schema module's AST and diffs it against the committed baseline
(``scripts/schema_baseline.json``):

* a **removed** class or field, a **type change**, a **default change**
  or a **reorder** always fails — deployed peers would misread payloads;
* an **addition** (new class or field) is legal only together with a
  ``WIRE_SCHEMA_VERSION`` bump, recorded by regenerating the baseline
  (``python -m repro lint --update-baseline``);
* a baseline whose recorded version differs from the module's fails until
  the baseline is regenerated.

The baseline file is committed, so the diff CI sees is exactly the diff a
reviewer sees.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.lint.base import Checker, Finding, register_checker

#: Repo-relative location of the schema module this checker freezes.
SCHEMA_MODULE = "src/repro/api/schema.py"

#: Repo-relative location of the committed baseline.
DEFAULT_BASELINE = "scripts/schema_baseline.json"

#: Version stamp of the baseline file format itself.
BASELINE_FORMAT_VERSION = 1

#: The module-level constant naming the wire version.
VERSION_CONSTANT = "WIRE_SCHEMA_VERSION"


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    """Whether a class carries a ``@dataclass`` decorator (any form)."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else ""
        if name == "dataclass":
            return True
    return False


def dataclass_fields(node: ast.ClassDef) -> list[dict]:
    """The annotated fields of one dataclass, in declaration order."""
    fields = []
    for stmt in node.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            fields.append({
                "name": stmt.target.id,
                "type": ast.unparse(stmt.annotation),
                "default": (ast.unparse(stmt.value)
                            if stmt.value is not None else None),
                "line": stmt.lineno,
            })
    return fields


def module_constants(tree: ast.Module, names: frozenset[str]) -> dict:
    """Module-level ``NAME = <constant>`` assignments among ``names``."""
    found: dict[str, object] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in names:
                    found[target.id] = node.value.value
    return found


def extract_schema(tree: ast.Module) -> dict:
    """The frozen view of one schema module: version + dataclass shapes.

    Returns ``{"wire_schema_version": int | None, "classes": {name:
    {"line": int, "fields": [{"name", "type", "default", "line"}, ...]}}}``
    — exactly the structure stored in the baseline (minus the line
    numbers, which are stripped before writing).
    """
    constants = module_constants(tree, frozenset({VERSION_CONSTANT}))
    version = constants.get(VERSION_CONSTANT)
    classes: dict[str, dict] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node):
            classes[node.name] = {"line": node.lineno,
                                  "fields": dataclass_fields(node)}
    return {"wire_schema_version": version if isinstance(version, int) else None,
            "classes": classes}


def schema_to_baseline(schema: dict) -> dict:
    """Strip volatile line numbers; the committed baseline document."""
    return {
        "baseline_format": BASELINE_FORMAT_VERSION,
        "wire_schema_version": schema["wire_schema_version"],
        "classes": {
            name: {"fields": [{key: field[key]
                               for key in ("name", "type", "default")}
                              for field in record["fields"]]}
            for name, record in schema["classes"].items()
        },
    }


def load_schema(root: Path) -> tuple[dict, str] | None:
    """Parse the repo's schema module under ``root`` (None when absent)."""
    path = root / SCHEMA_MODULE
    if not path.is_file():
        return None
    return extract_schema(ast.parse(path.read_text())), SCHEMA_MODULE


def diff_schema(current: dict, baseline: dict, rel: str,
                rule: str, *,
                version_key: str = "wire_schema_version",
                version_constant: str = VERSION_CONSTANT) -> list[Finding]:
    """Every finding produced by comparing ``current`` to ``baseline``.

    The class/field diff is contract-agnostic; ``version_key`` /
    ``version_constant`` let other frozen contracts (the store schema)
    reuse it with their own version stamp.
    """
    findings: list[Finding] = []

    def flag(line: int, message: str) -> None:
        findings.append(Finding(path=rel, line=line, rule=rule,
                                message=message))

    current_version = current[version_key]
    baseline_version = baseline.get(version_key)
    baseline_classes: dict = baseline.get("classes", {})
    additions: list[str] = []

    for name, record in baseline_classes.items():
        live = current["classes"].get(name)
        if live is None:
            flag(1, f"wire dataclass {name} was removed but the committed "
                    f"baseline still carries it; deployed peers would send "
                    f"payloads this package can no longer read")
            continue
        live_fields = {field["name"]: field for field in live["fields"]}
        for field in record["fields"]:
            live_field = live_fields.get(field["name"])
            if live_field is None:
                flag(live["line"],
                     f"{name}.{field['name']} was removed from the wire "
                     f"schema; removals break deployed peers — deprecate in "
                     f"place instead")
                continue
            if live_field["type"] != field["type"]:
                flag(live_field["line"],
                     f"{name}.{field['name']} changed type "
                     f"{field['type']!r} -> {live_field['type']!r}; wire "
                     f"field types are frozen")
            if live_field["default"] != field["default"]:
                flag(live_field["line"],
                     f"{name}.{field['name']} changed default "
                     f"{field['default']!r} -> {live_field['default']!r}; "
                     f"defaults are part of the wire contract (absent "
                     f"fields decode through them)")
        baseline_order = [field["name"] for field in record["fields"]
                          if field["name"] in live_fields]
        live_order = [field["name"] for field in live["fields"]
                      if any(field["name"] == b["name"]
                             for b in record["fields"])]
        if baseline_order != live_order:
            flag(live["line"],
                 f"{name} reordered its wire fields "
                 f"({baseline_order} -> {live_order}); positional "
                 f"construction and docs depend on the frozen order")
        for field in live["fields"]:
            if field["name"] not in {b["name"] for b in record["fields"]}:
                additions.append(f"{name}.{field['name']}")

    for name, live in current["classes"].items():
        if name not in baseline_classes:
            additions.append(name)

    if current_version != baseline_version:
        flag(1, f"{version_constant} is {current_version} but the committed "
                f"baseline records {baseline_version}; regenerate it with "
                f"`python -m repro lint --update-baseline`")
    elif additions:
        flag(1, f"additive schema change ({', '.join(sorted(additions))}) "
                f"without a {version_constant} bump; bump the version and "
                f"regenerate the baseline with `python -m repro lint "
                f"--update-baseline`")
    return findings


@register_checker
class SchemaFreezeChecker(Checker):
    """Diff the live wire schema against the committed baseline."""

    name = "schema-freeze"
    description = ("wire dataclasses in repro.api.schema evolve "
                   "additively only, with every addition recorded in "
                   "scripts/schema_baseline.json next to a version bump")
    scope = "project"

    def __init__(self, baseline_path: str = DEFAULT_BASELINE):
        self.baseline_path = baseline_path

    def check_project(self, root: Path) -> list[Finding]:
        """Compare ``root``'s schema module to its committed baseline."""
        loaded = load_schema(root)
        if loaded is None:
            return []                    # fixture trees without a schema
        current, rel = loaded
        baseline_file = root / self.baseline_path
        if not baseline_file.is_file():
            return [Finding(
                path=self.baseline_path, line=0, rule=self.name,
                message=(f"wire-schema baseline {self.baseline_path} is "
                         f"missing; generate it with `python -m repro lint "
                         f"--update-baseline`"))]
        try:
            baseline = json.loads(baseline_file.read_text())
        except ValueError as error:
            return [Finding(
                path=self.baseline_path, line=0, rule=self.name,
                message=f"baseline is not valid JSON ({error}); regenerate "
                        f"it with `python -m repro lint --update-baseline`")]
        return diff_schema(current, baseline, rel, self.name)
