"""The ``snapshot-coverage`` checker: no mutable state escapes snapshots.

Incremental simulation (``snapshot()/restore()``, disk checkpoints, fleet
checkpoint migration) is only byte-identical if ``_SNAPSHOT_STATE`` lists
*every* piece of state the cycle loop mutates.  A new ``self.<attr>``
added to ``Pipeline.__init__`` and forgotten in the tuple silently
produces snapshots that restore stale state — the worst kind of
determinism bug, because nothing crashes.

This checker closes that gap structurally.  For every class that declares
``_SNAPSHOT_STATE``, each ``self.<attr>`` assigned in ``__init__`` must
appear either in ``_SNAPSHOT_STATE`` or in an explicit
``_SNAPSHOT_EXEMPT`` tuple (immutable run inputs and config-derived
scalars, exempted *by name* so each exemption is a reviewed decision).
Two consistency checks ride along: names listed but never assigned in
``__init__`` (stale/typo entries would crash ``snapshot()`` at runtime),
and names listed in both tuples.
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, FileContext, Finding, register_checker
from repro.lint.base import string_tuple

#: The tuple of attributes :meth:`snapshot` deep-copies.
STATE_ANNOTATION = "_SNAPSHOT_STATE"

#: The tuple of ``__init__`` attributes deliberately outside the snapshot.
EXEMPT_ANNOTATION = "_SNAPSHOT_EXEMPT"


def _class_string_tuple(class_node: ast.ClassDef,
                        name: str) -> tuple[str, ...] | None:
    """A class-level ``NAME = ("...", ...)`` tuple, or None when absent."""
    for stmt in class_node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return string_tuple(stmt.value)
    return None


def _init_assigned_attrs(class_node: ast.ClassDef) -> dict[str, int]:
    """``self.<attr>`` names assigned in ``__init__`` -> first line number."""
    attrs: dict[str, int] = {}
    for stmt in class_node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        attrs.setdefault(target.attr, target.lineno)
    return attrs


@register_checker
class SnapshotCoverageChecker(Checker):
    """Every ``__init__`` attribute is snapshotted or explicitly exempt."""

    name = "snapshot-coverage"
    description = ("each self.<attr> assigned in __init__ of a class with "
                   "_SNAPSHOT_STATE must be listed there or in "
                   "_SNAPSHOT_EXEMPT")
    scope = "file"

    def check_file(self, ctx: FileContext) -> list[Finding]:
        """Check every ``_SNAPSHOT_STATE``-annotated class in one file."""
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            state = _class_string_tuple(node, STATE_ANNOTATION)
            if state is None:
                continue
            exempt = _class_string_tuple(node, EXEMPT_ANNOTATION) or ()
            assigned = _init_assigned_attrs(node)
            covered = set(state) | set(exempt)
            for attr, line in sorted(assigned.items()):
                if attr not in covered:
                    findings.append(ctx.finding(
                        line,
                        f"{node.name}.__init__ assigns self.{attr} but it "
                        f"is in neither {STATE_ANNOTATION} nor "
                        f"{EXEMPT_ANNOTATION}; snapshot()/restore() would "
                        f"silently carry stale state across a resume",
                        self.name))
            for attr in state:
                if attr not in assigned:
                    findings.append(ctx.finding(
                        node,
                        f"{node.name}.{STATE_ANNOTATION} lists {attr!r} "
                        f"but __init__ never assigns it; snapshot() would "
                        f"raise AttributeError (stale or typo'd entry)",
                        self.name))
            for attr in sorted(set(state) & set(exempt)):
                findings.append(ctx.finding(
                    node,
                    f"{node.name}: {attr!r} appears in both "
                    f"{STATE_ANNOTATION} and {EXEMPT_ANNOTATION}; pick one",
                    self.name))
        return findings
