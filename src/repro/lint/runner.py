"""The lint runner: discovery, orchestration, suppressions, reports.

:func:`run_lint` is the one entry point behind ``python -m repro lint``
and the legacy gate scripts: it discovers Python files under the given
paths, parses each one once, drives every selected file-scope checker
over the shared ASTs, runs the project-scope checkers against the repo
root, applies ``# repro-lint:`` suppressions (rejecting bare ones), and
returns deterministically sorted findings.

Reports come in two shapes: :func:`format_text` (one finding per line,
grep/editor friendly) and :func:`format_json` (schema-stamped, exact
round-trip through :meth:`repro.lint.base.Finding.from_dict` — the CI
artifact format).
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

# Importing the checker modules registers them; keep the imports explicit
# so a partial import cannot silently drop a gate.
import repro.lint.backend_parity  # noqa: F401  (registration import)
import repro.lint.determinism   # noqa: F401  (registration import)
import repro.lint.docs          # noqa: F401  (registration import)
import repro.lint.docstrings    # noqa: F401  (registration import)
import repro.lint.locks         # noqa: F401  (registration import)
import repro.lint.schema_freeze # noqa: F401  (registration import)
import repro.lint.snapshot      # noqa: F401  (registration import)
import repro.lint.store_schema  # noqa: F401  (registration import)
from repro.lint.base import (
    LINT_SCHEMA_VERSION,
    SUPPRESSION_RULE,
    Checker,
    FileContext,
    Finding,
    all_checkers,
    get_checker,
)
from repro.lint.schema_freeze import (
    DEFAULT_BASELINE,
    SCHEMA_MODULE,
    SchemaFreezeChecker,
    load_schema,
    schema_to_baseline,
)
from repro.lint.store_schema import (
    BASELINE_KEY,
    STORE_MODULE,
    StoreSchemaChecker,
    load_store_schema,
    store_schema_to_baseline,
)

#: The repo root this package was loaded from (``src/repro/lint`` -> repo).
REPO_ROOT = Path(__file__).resolve().parents[3]


class LintUsageError(ValueError):
    """A lint invocation is unusable (unknown rule, missing path, ...)."""


def discover_files(paths: list[Path]) -> list[Path]:
    """Every Python file under ``paths`` (files kept, dirs walked), sorted."""
    files: list[Path] = []
    for path in paths:
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    seen: dict[Path, None] = {}
    for path in files:
        seen.setdefault(path.resolve(), None)
    return list(seen)


def select_checkers(rules: list[str] | None) -> list[Checker]:
    """The checkers to run: all of them, or the ``--rule`` subset."""
    if not rules:
        return all_checkers()
    try:
        return [get_checker(name) for name in dict.fromkeys(rules)]
    except KeyError as error:
        raise LintUsageError(error.args[0]) from None


def run_lint(
    paths: list[Path | str] | None = None,
    *,
    rules: list[str] | None = None,
    root: Path | str | None = None,
    baseline: str | None = None,
) -> list[Finding]:
    """Run the selected checkers and return sorted, suppression-filtered
    findings.

    Args:
        paths: Files/directories to scan with the file-scope checkers
            (default: ``src/`` under ``root``).  Project-scope checkers
            always run against ``root`` regardless of ``paths``.
        rules: Rule-name subset (None = every registered checker).
        root: Repo root for relative paths, the schema module and the
            docs tree (default: this package's repo).
        baseline: Repo-relative schema-baseline path override.
    """
    root = Path(root).resolve() if root is not None else REPO_ROOT
    scan_paths = [Path(p) if Path(p).is_absolute() else root / p
                  for p in (paths or ["src"])]
    checkers = select_checkers(rules)
    if baseline is not None:
        checkers = [type(c)(baseline)
                    if isinstance(c, (SchemaFreezeChecker, StoreSchemaChecker))
                    else c
                    for c in checkers]
    file_checkers = [c for c in checkers if c.scope == "file"]
    project_checkers = [c for c in checkers if c.scope == "project"]

    findings: list[Finding] = []
    contexts: dict[str, FileContext] = {}
    for path in discover_files(scan_paths):
        try:
            ctx = FileContext.load(path, root)
        except SyntaxError as error:
            findings.append(Finding(
                path=_rel(path, root), line=error.lineno or 0, rule="parse",
                message=f"file does not parse: {error.msg}"))
            continue
        contexts[ctx.rel] = ctx
        for checker in file_checkers:
            findings.extend(checker.check_file(ctx))
    for checker in project_checkers:
        findings.extend(checker.check_project(root))

    kept = []
    for finding in findings:
        ctx = contexts.get(finding.path)
        if ctx is None or ctx.suppressions.allows(finding):
            kept.append(finding)
    selected = {c.name for c in checkers}
    if not rules or SUPPRESSION_RULE in selected:
        for ctx in contexts.values():
            for line, text in ctx.suppressions.bare:
                kept.append(Finding(
                    path=ctx.rel, line=line, rule=SUPPRESSION_RULE,
                    message=(f"suppression without a reason ({text!r}); "
                             f"append `-- <why this is a false positive>`")))
    return sorted(set(kept))


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


def format_text(findings: list[Finding]) -> str:
    """The human-readable report (one ``path:line: [rule] message`` line)."""
    if not findings:
        return "lint clean: no findings"
    lines = [str(finding) for finding in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def format_json(findings: list[Finding]) -> str:
    """The machine-readable report (CI artifact; exact round-trip)."""
    return json.dumps({
        "schema_version": LINT_SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }, indent=2, sort_keys=True)


def parse_report(text: str) -> list[Finding]:
    """Inverse of :func:`format_json` (tests and tooling)."""
    payload = json.loads(text)
    return [Finding.from_dict(entry) for entry in payload["findings"]]


# ---------------------------------------------------------------------------
# Baseline regeneration (``--update-baseline``)
# ---------------------------------------------------------------------------


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def schema_is_dirty(root: Path) -> bool | None:
    """Whether either frozen schema module has uncommitted edits
    (None = no git)."""
    try:
        result = subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain", "--",
             SCHEMA_MODULE, STORE_MODULE],
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    return bool(result.stdout.strip())


def update_baseline(root: Path | str | None = None, *,
                    baseline: str = DEFAULT_BASELINE,
                    force: bool = False) -> Path:
    """Regenerate the committed schema baseline from the live modules.

    One document, two sections: the wire schema
    (:data:`~repro.lint.schema_freeze.SCHEMA_MODULE`) at the top level
    and the store contract (:data:`~repro.lint.store_schema.STORE_MODULE`)
    under ``"store"``.  Refuses to snapshot a schema with uncommitted
    edits (a dirty module would freeze unreviewed changes as "the
    contract") unless ``force``; also refuses an *additive* change that
    arrives without the matching version bump (``WIRE_SCHEMA_VERSION`` /
    ``STORE_SCHEMA_VERSION``) and any edit to the frozen store auth
    constants — exactly the drift the checkers exist to catch.  Returns
    the baseline path written.
    """
    root = Path(root).resolve() if root is not None else REPO_ROOT
    loaded = load_schema(root)
    if loaded is None:
        raise LintUsageError(f"no schema module at {root / SCHEMA_MODULE}")
    current, _ = loaded
    store_loaded = load_store_schema(root)
    if not force and schema_is_dirty(root):
        raise LintUsageError(
            f"{SCHEMA_MODULE} or {STORE_MODULE} has uncommitted edits; "
            f"refusing to freeze an unreviewed schema as the baseline "
            f"(commit first, or pass --force)")
    baseline_file = root / baseline
    old = None
    if baseline_file.is_file():
        try:
            old = json.loads(baseline_file.read_text())
        except ValueError:
            old = None
    if old is not None and not force:
        _check_unbumped_additions(
            old, current,
            version_key="wire_schema_version",
            version_constant="WIRE_SCHEMA_VERSION", module=SCHEMA_MODULE)
        if store_loaded is not None:
            old_store = old.get(BASELINE_KEY)
            if isinstance(old_store, dict):
                store_current, _ = store_loaded
                _check_unbumped_additions(
                    old_store, store_current,
                    version_key="store_schema_version",
                    version_constant="STORE_SCHEMA_VERSION",
                    module=STORE_MODULE)
                for name, frozen in old_store.get("auth", {}).items():
                    live = store_current["auth"].get(name)
                    if frozen is not None and live != frozen:
                        raise LintUsageError(
                            f"{name} changed {frozen!r} -> {live!r}; the "
                            f"store auth header/scheme is frozen "
                            f"unconditionally — add a new header alongside "
                            f"the old one instead (or pass --force)")
    document = schema_to_baseline(current)
    if store_loaded is not None:
        document[BASELINE_KEY] = store_schema_to_baseline(store_loaded[0])
    elif old is not None and isinstance(old.get(BASELINE_KEY), dict):
        document[BASELINE_KEY] = old[BASELINE_KEY]
    baseline_file.parent.mkdir(parents=True, exist_ok=True)
    baseline_file.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n")
    return baseline_file


def _check_unbumped_additions(old: dict, current: dict, *, version_key: str,
                              version_constant: str, module: str) -> None:
    """Refuse additive schema changes arriving without a version bump."""
    if old.get(version_key) != current[version_key]:
        return
    old_fields = {
        (name, field["name"])
        for name, record in old.get("classes", {}).items()
        for field in record["fields"]}
    new_fields = {
        (name, field["name"])
        for name, record in current["classes"].items()
        for field in record["fields"]}
    added = new_fields - old_fields
    if added:
        names = ", ".join(sorted(f"{c}.{f}" for c, f in added))
        raise LintUsageError(
            f"schema additions ({names}) without a {version_constant} bump; "
            f"bump the version in {module} first (or pass --force)")
