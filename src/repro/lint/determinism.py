"""The ``determinism`` checker: sources of run-to-run nondeterminism.

The repo's headline guarantee is byte-identical reports across processes,
executors and hosts.  Three bug classes have historically threatened it
(PR 1 shipped a fix for a randomised-``hash()`` cache key), and this
checker catches all three statically:

* **builtin ``hash()``** — salted per process for ``str``/``bytes`` since
  PEP 456, so any hash that reaches a cache key, digest or result is
  nondeterministic across processes.  Flagged everywhere; use ``hashlib``
  or an explicit stable digest instead.
* **wall-clock / RNG in simulation code** — ``time.time``/``time_ns``,
  ``datetime.now`` and the ``random`` module have no place in the
  simulation packages (``core``, ``uarch``, ``isa``, ``harness``): any
  value they produce can leak into results.  ``time.monotonic`` and
  ``time.perf_counter`` stay legal (duration measurement never escapes
  into simulated numbers), as does a *seeded* ``random.Random(seed)``
  instance (workload generators build deterministic pseudo-random data).
* **unordered ``set`` iteration** — iterating a set (or materialising one
  with ``list()``/``tuple()``) without ``sorted()`` produces
  hash-order-dependent sequences.  Flagged for set literals,
  ``set()``/``frozenset()`` calls and local variables bound to them.

False positives are suppressed in place with a reasoned directive, e.g.::

    order = list(pending)  # repro-lint: disable=determinism -- ints only
"""

from __future__ import annotations

import ast

from repro.lint.base import Checker, FileContext, Finding, register_checker

#: Top-level ``src/repro`` packages in which wall-clock/RNG use is banned.
SIMULATION_DIRS = frozenset({"core", "uarch", "isa", "harness"})

#: ``time`` attributes that read the wall clock (monotonic sources are fine).
_WALL_CLOCK_ATTRS = frozenset({"time", "time_ns"})

#: ``datetime.datetime`` constructors that read the wall clock.
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})

#: Iteration-ordering sinks: calls that materialise their argument's order.
_ORDER_SINKS = frozenset({"list", "tuple"})


def _is_set_expr(node: ast.expr, local_sets: set[str]) -> bool:
    """Whether ``node`` statically evaluates to a ``set``/``frozenset``."""
    if isinstance(node, ast.Set):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    return isinstance(node, ast.Name) and node.id in local_sets


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    """Whether a ``x: set[...]`` style annotation names a set type."""
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    return isinstance(target, ast.Name) and target.id in ("set", "frozenset")


@register_checker
class DeterminismChecker(Checker):
    """Flag builtin ``hash()``, wall-clock/RNG use, and raw set iteration."""

    name = "determinism"
    description = ("byte-identical results: no builtin hash(), no "
                   "wall-clock/RNG in simulation packages, no unordered "
                   "set iteration")
    scope = "file"

    def check_file(self, ctx: FileContext) -> list[Finding]:
        """Run all three determinism sub-checks over one file."""
        findings: list[Finding] = []
        in_sim = any(part in SIMULATION_DIRS
                     for part in ctx.rel.split("/")[:-1])
        local_sets = self._local_set_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            self._check_hash(ctx, node, findings)
            if in_sim:
                self._check_clock_and_rng(ctx, node, findings)
            self._check_set_iteration(ctx, node, local_sets, findings)
        return findings

    # ------------------------------------------------------------------
    # Sub-checks (one AST node each)
    # ------------------------------------------------------------------

    @staticmethod
    def _check_hash(ctx: FileContext, node: ast.AST,
                    findings: list[Finding]) -> None:
        """Builtin ``hash(...)`` call (salted per process for strings)."""
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "hash"):
            findings.append(ctx.finding(
                node,
                "builtin hash() is salted per process for str/bytes "
                "(PYTHONHASHSEED); use hashlib or a stable digest for "
                "anything that escapes into cache keys or results",
                DeterminismChecker.name))

    @staticmethod
    def _check_clock_and_rng(ctx: FileContext, node: ast.AST,
                             findings: list[Finding]) -> None:
        """Wall-clock reads and ``random`` use inside simulation packages."""
        rule = DeterminismChecker.name
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            module, attr = node.value.id, node.attr
            if module == "time" and attr in _WALL_CLOCK_ATTRS:
                findings.append(ctx.finding(
                    node,
                    f"time.{attr}() reads the wall clock inside a "
                    f"simulation package; results must not depend on when "
                    f"they ran (time.monotonic is fine for durations)",
                    rule))
            elif module == "datetime" and attr in _DATETIME_NOW:
                findings.append(ctx.finding(
                    node,
                    f"datetime.{attr}() reads the wall clock inside a "
                    f"simulation package; results must not depend on when "
                    f"they ran",
                    rule))
            elif module == "random" and attr != "Random":
                findings.append(ctx.finding(
                    node,
                    f"random.{attr} uses the process-global RNG inside a "
                    f"simulation package; use a seeded random.Random(seed) "
                    f"instance so results are reproducible",
                    rule))
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr == "Random" and not node.args
                and not node.keywords):
            findings.append(ctx.finding(
                node,
                "random.Random() without a seed is entropy-seeded; pass an "
                "explicit seed so simulation inputs are reproducible",
                rule))
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            findings.append(ctx.finding(
                node,
                "importing names from `random` hides the process-global RNG "
                "behind bare calls inside a simulation package; import the "
                "module and use a seeded random.Random(seed) instance",
                rule))

    @staticmethod
    def _check_set_iteration(ctx: FileContext, node: ast.AST,
                             local_sets: set[str],
                             findings: list[Finding]) -> None:
        """Set iteration (or list/tuple materialisation) without sorted()."""
        rule = DeterminismChecker.name
        iterables: list[ast.expr] = []
        if isinstance(node, ast.For):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
              and node.func.id in _ORDER_SINKS and len(node.args) == 1):
            iterables.append(node.args[0])
        for iterable in iterables:
            if _is_set_expr(iterable, local_sets):
                findings.append(ctx.finding(
                    iterable,
                    "iterating a set exposes hash order, which is "
                    "per-process for strings; wrap the set in sorted() "
                    "before its order can escape into results or digests",
                    rule))

    # ------------------------------------------------------------------
    # Local type inference (function-scope set bindings)
    # ------------------------------------------------------------------

    @staticmethod
    def _local_set_names(tree: ast.Module) -> set[str]:
        """Names bound to a set expression and never rebound otherwise.

        The inference is deliberately shallow (whole-module name granularity,
        simple assignments and ``x: set[...]`` annotations only): a name
        assigned a set *anywhere* but also assigned a non-set elsewhere is
        dropped, so shadowing cannot produce false positives.
        """
        set_names: set[str] = set()
        other_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                bucket = (set_names if _is_set_expr(node.value, set())
                          else other_names)
                bucket.add(node.targets[0].id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                bucket = (set_names if _annotation_is_set(node.annotation)
                          else other_names)
                bucket.add(node.target.id)
        return set_names - other_names
