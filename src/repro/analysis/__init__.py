"""Analysis utilities: critical-path breakdown (Figure 9) and report tables."""

from repro.analysis.critpath import CriticalPathBreakdown, analyze_critical_path
from repro.analysis.report import (
    decode_data_key,
    encode_data_key,
    format_percent,
    format_table,
)

__all__ = [
    "CriticalPathBreakdown",
    "analyze_critical_path",
    "format_table",
    "format_percent",
    "encode_data_key",
    "decode_data_key",
]
