"""Analysis utilities: critical-path breakdown (Figure 9) and report tables."""

from repro.analysis.critpath import CriticalPathBreakdown, analyze_critical_path
from repro.analysis.report import format_table, format_percent

__all__ = [
    "CriticalPathBreakdown",
    "analyze_critical_path",
    "format_table",
    "format_percent",
]
