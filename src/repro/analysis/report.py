"""Plain-text table formatting for harness reports."""

from __future__ import annotations


def format_percent(value: float, signed: bool = False) -> str:
    """Format a ratio as a percentage string."""
    if signed:
        return f"{value * 100:+.1f}%"
    return f"{value * 100:.1f}%"


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an ASCII table (used by the experiment harness and examples)."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def render_row(cells):
        return "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * width for width in widths]))
    for row in rows:
        lines.append(render_row(row))
    return "\n".join(lines)
