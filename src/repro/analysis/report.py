"""Formatting and serialization helpers for harness reports.

Tables render as plain ASCII (:func:`format_table`); the data half of an
``ExperimentReport`` — whose keys may be strings or tuples — round-trips
through JSON via :func:`encode_data_key` / :func:`decode_data_key`.
"""

from __future__ import annotations

#: Version of the serialised ``ExperimentReport`` layout (the ``--json``
#: artifact format and the ``repro serve`` wire payloads).  History:
#:
#: * **1** — headers/rows/data/experiment/spec plus this field.  Artifacts
#:   written before versioning existed deserialise as version 1.
#: * **2** — optional ``occupancy`` section: per-grid-cell occupancy /
#:   utilization summaries (see :mod:`repro.uarch.observe`), keyed
#:   ``"workload/machine/reno"``.  Absent (None) when the generating spec
#:   did not set ``record_stats``; version-1 artifacts deserialise with
#:   ``occupancy=None``.
#:
#: Bump on any incompatible change to the serialised shape; readers refuse
#: artifacts from a *newer* schema instead of misreading them.
REPORT_SCHEMA_VERSION = 2

#: JSON tag marking an encoded tuple data key (see :func:`encode_data_key`).
_TUPLE_TAG = "__tuple__"


def check_schema_version(found: int, kind: str = "report") -> int:
    """Validate a deserialised ``schema_version`` (raises on newer-than-us).

    Older versions are accepted — readers stay backwards compatible — but a
    payload from a future schema fails loudly rather than being misread.
    """
    if not isinstance(found, int) or found < 1:
        raise ValueError(f"malformed {kind} schema_version: {found!r}")
    if found > REPORT_SCHEMA_VERSION:
        raise ValueError(
            f"{kind} uses schema_version {found}, newer than the supported "
            f"{REPORT_SCHEMA_VERSION}; upgrade this package to read it"
        )
    return found


def encode_data_key(key):
    """JSON-safe form of an ``ExperimentReport.data`` key (str or tuple).

    Tuple keys (e.g. ``("gzip_like", "RENO")`` or ``("BASE", 160)``) become
    a tagged object so :func:`decode_data_key` can rebuild them exactly.
    """
    if isinstance(key, tuple):
        return {_TUPLE_TAG: list(key)}
    return key


def decode_data_key(encoded):
    """Inverse of :func:`encode_data_key`."""
    if isinstance(encoded, dict) and _TUPLE_TAG in encoded:
        return tuple(encoded[_TUPLE_TAG])
    return encoded


def format_percent(value: float, signed: bool = False) -> str:
    """Format a ratio as a percentage string."""
    if signed:
        return f"{value * 100:+.1f}%"
    return f"{value * 100:.1f}%"


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an ASCII table (used by the experiment harness and examples)."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def render_row(cells):
        return "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * width for width in widths]))
    for row in rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_occupancy_table(occupancy: dict, title: str = "Occupancy / utilization") -> str:
    """Render a report's ``occupancy`` section as an ASCII utilization table.

    ``occupancy`` maps ``"workload/machine/reno"`` cell labels to
    :meth:`repro.uarch.observe.OccupancyStats.summary` dictionaries.  One
    row per cell: mean utilization of each tracked structure, mean issue
    utilization, and the dominant fetch-stall reason.
    """
    headers = ["cell", "ROB", "IQ", "PRF", "LQ", "SQ", "issue", "top stall"]
    rows = []
    for cell, summary in occupancy.items():
        structures = summary["structures"]
        stalls = summary["fetch_stalls"]
        top_stall = max(stalls, key=stalls.get) if any(stalls.values()) else "-"
        rows.append([
            cell,
            format_percent(structures["rob"]["utilization"]),
            format_percent(structures["iq"]["utilization"]),
            format_percent(structures["prf"]["utilization"]),
            format_percent(structures["lq"]["utilization"]),
            format_percent(structures["sq"]["utilization"]),
            format_percent(summary["issue"]["utilization"]),
            top_stall,
        ])
    return format_table(headers, rows, title=title)
