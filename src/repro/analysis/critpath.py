"""Critical-path analysis (a simplified Fields-style model, §4.3 / Figure 9).

The timing pipeline can record one :class:`~repro.uarch.inflight.TimingRecord`
per retired instruction.  This module walks the dependence structure backwards
from the last retired instruction, at each step following the constraint that
actually determined the instruction's completion time:

* a *data* edge to the producer whose result arrived last, or
* a *fetch/dispatch* edge to the previous instruction in program order when
  the instruction was ready before it could even dispatch (front-end
  bandwidth, mispredictions, window fills).

Every edge's latency contribution is charged to one of the paper's five
buckets: ``fetch``, ``alu_exec``, ``load_exec`` (cache-hit dataflow),
``load_mem`` (miss dataflow) and ``commit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.inflight import TimingRecord

#: Loads whose cache latency exceeds this are charged to the memory bucket.
_MEMORY_LATENCY_THRESHOLD = 10


@dataclass
class CriticalPathBreakdown:
    """Critical-path cycles charged to each bucket."""

    fetch: int = 0
    alu_exec: int = 0
    load_exec: int = 0
    load_mem: int = 0
    commit: int = 0
    path_length: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.fetch + self.alu_exec + self.load_exec + self.load_mem + self.commit

    def fractions(self) -> dict[str, float]:
        """Bucket shares, in the order the paper's Figure 9 stacks them."""
        total = self.total or 1
        return {
            "fetch": self.fetch / total,
            "alu_exec": self.alu_exec / total,
            "load_exec": self.load_exec / total,
            "load_mem": self.load_mem / total,
            "commit": self.commit / total,
        }


def _bucket_for(record: TimingRecord, via_data_edge: bool) -> str:
    if not via_data_edge:
        return "fetch"
    if record.is_load:
        if record.eliminated:
            return "alu_exec"
        if record.dcache_latency > _MEMORY_LATENCY_THRESHOLD:
            return "load_mem"
        return "load_exec"
    return "alu_exec"


def analyze_critical_path(records: list[TimingRecord]) -> CriticalPathBreakdown:
    """Compute the critical-path bucket breakdown for one simulation.

    Args:
        records: Timing records from a pipeline run with ``collect_timing``.

    Returns:
        A :class:`CriticalPathBreakdown`.
    """
    if not records:
        return CriticalPathBreakdown()
    by_seq = {record.seq: record for record in records}
    ordered = sorted(records, key=lambda record: record.seq)
    breakdown = CriticalPathBreakdown()

    last = ordered[-1]
    # Commit bucket: the tail between the last completion and retirement.
    breakdown.commit += max(0, last.retire_cycle - last.complete_cycle)

    current = last
    steps = 0
    while steps < len(records) + 8:
        steps += 1
        producers = [
            by_seq[producer]
            for producer in current.source_producers
            if producer >= 0 and producer in by_seq
        ]
        data_pred = max(producers, key=lambda record: record.complete_cycle, default=None)
        data_bound = (
            data_pred is not None
            and data_pred.complete_cycle >= current.dispatch_cycle
        )
        if data_bound:
            predecessor = data_pred
        else:
            predecessor = by_seq.get(current.seq - 1)
        if predecessor is None or predecessor.seq >= current.seq:
            # Reached the beginning of the window; charge the remaining depth
            # to fetch and stop.
            breakdown.fetch += max(0, current.complete_cycle)
            breakdown.path_length += 1
            break
        edge_cost = max(0, current.complete_cycle - predecessor.complete_cycle)
        bucket = _bucket_for(current, via_data_edge=data_bound)
        setattr(breakdown, bucket, getattr(breakdown, bucket) + edge_cost)
        breakdown.path_length += 1
        current = predecessor
    return breakdown
