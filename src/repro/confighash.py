"""Shared configuration-hashing helper for the experiment cache.

Both :class:`repro.uarch.config.MachineConfig` and
:class:`repro.core.config.RenoConfig` derive their cache digests here so the
key material can never silently diverge between the two config types.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

#: Fields that are report labels with no effect on simulation results.
LABEL_FIELDS = ("name",)


def dataclass_digest(config, exclude: tuple[str, ...] = LABEL_FIELDS) -> str:
    """Stable SHA-256 over a config dataclass's behavioural fields.

    ``exclude`` names fields (labels) to leave out of the key material, so
    two configurations differing only in label share a digest — and thus a
    cache entry.
    """
    fields = asdict(config)
    for field_name in exclude:
        fields.pop(field_name, None)
    payload = json.dumps(fields, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()
