"""repro: a from-scratch reproduction of RENO, the rename-based instruction optimizer.

The package is organised as:

* :mod:`repro.isa` — the AXP-lite instruction set and assembler DSL,
* :mod:`repro.functional` — architectural simulation and dynamic traces,
* :mod:`repro.workloads` — synthetic SPECint-like and MediaBench-like kernels,
* :mod:`repro.uarch` — the cycle-level dynamically scheduled superscalar core,
* :mod:`repro.core` — RENO itself (reference counting, extended map table,
  move elimination, constant folding, integration/CSE+RA),
* :mod:`repro.analysis` — critical-path analysis and reporting,
* :mod:`repro.harness` — experiment definitions that regenerate the paper's
  figures (declarative sweep specs, a registry, pluggable executors),
* :mod:`repro.api` — the stable public surface: the ``Session``/``Job``
  facade, the versioned wire schema, the ``repro serve`` HTTP service and
  checkpointable incremental simulation,
* :mod:`repro.cli` — the unified ``python -m repro`` command line
  (``run`` / ``list`` / ``cache`` / ``serve`` / ``submit`` / ``status``).
"""

__version__ = "1.2.0"
