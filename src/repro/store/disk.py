"""The local-disk result-store tier (the historical outcome cache).

A :class:`DiskStore` is a directory of pickled slim simulation outcomes,
addressed by key with a two-level fan-out (``root/ab/abcd....pkl``, like
git).  It is the tier behind ``$REPRO_CACHE_DIR`` and the compatibility
home of :class:`repro.harness.cache.SimulationCache`, which is now an
alias of this class.

The cooperative facilities map onto files:

* **claims** are ``root/inflight/<token>.json`` markers created with
  ``O_CREAT | O_EXCL`` (atomic on every filesystem that matters) holding
  the owner id and a wall-clock deadline; expired markers are replaced
  under a :func:`file_lock` so two waiters never both "take over";
* **meta documents** are ``root/<name>.json`` files merged under the same
  lock — the cost model's ``costs.json`` is meta document ``costs``.

Every failure path degrades instead of raising: an unreadable entry is a
miss (and is deleted — a corrupt payload must cost one recomputation, not
every future run), an unwritable directory warns once and drops
persistence, an unavailable ``fcntl`` skips locking.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile
import time
import warnings
from pathlib import Path

from repro.core.simulator import SimulationOutcome
from repro.store.base import StoreStats, decode_payload, encode_payload
from repro.store.schema import STORE_SCHEMA_VERSION

logger = logging.getLogger("repro.store")

#: Environment variable overriding the default store root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback store root when the environment variable is unset.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro-reno"

#: Subdirectory of the store root holding claim marker files.
INFLIGHT_DIR = "inflight"


def default_cache_root() -> Path:
    """The active store root: ``$REPRO_CACHE_DIR`` or the home-dir default."""
    override = os.environ.get(CACHE_DIR_ENV)
    return Path(override) if override else DEFAULT_CACHE_DIR


try:
    import fcntl as _fcntl
except ImportError:                   # pragma: no cover - non-POSIX platform
    _fcntl = None


@contextlib.contextmanager
def file_lock(path: str | Path, timeout: float = 10.0):
    """Cross-process mutual exclusion for updates of ``path``.

    Guards read-modify-write updates of shared files (meta documents,
    expired claim markers) against concurrent processes sharing one store
    root.  The lock is an ``fcntl.flock`` on a sibling ``<path>.lock``
    file: kernel advisory locks are released automatically when the
    holder exits (cleanly or not), so there is no stale-lock state to
    detect or break — the classic ``O_EXCL``-file failure mode (two
    waiters racing to break a dead holder's file and both "acquiring") is
    structurally impossible.  The empty ``.lock`` file itself is left in
    place; it carries no state.

    If the lock cannot be acquired within ``timeout`` seconds — or the
    platform has no ``fcntl`` — the caller proceeds *unlocked*, consistent
    with the store's best-effort degradation: a lost meta entry can cost
    wall-clock time, never correctness.

    Yields True when the lock was actually held, False on the degraded
    path.
    """
    lock_path = Path(str(path) + ".lock")
    if _fcntl is None:                # pragma: no cover - non-POSIX platform
        yield False
        return
    try:
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(str(lock_path), os.O_CREAT | os.O_WRONLY)
    except OSError:
        # Unwritable directory: same degradation as a store failure.
        yield False
        return
    deadline = time.monotonic() + timeout
    locked = False
    try:
        while True:
            try:
                _fcntl.flock(descriptor, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
                locked = True
                break
            except OSError:
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.01)
        yield locked
    finally:
        if locked:
            try:
                _fcntl.flock(descriptor, _fcntl.LOCK_UN)
            except OSError:
                pass
        os.close(descriptor)


class DiskStore:
    """A directory of pickled slim simulation outcomes, addressed by key."""

    def __init__(self, root: str | Path | None = None):
        """Create a store rooted at ``root`` (default: the env-driven root)."""
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = StoreStats()
        self._store_failure_warned = False

    @property
    def locator(self) -> str:
        """The locator that re-opens this store (its root path)."""
        return str(self.root)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out, like git)."""
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Content-addressed payloads
    # ------------------------------------------------------------------

    def get(self, key: str) -> SimulationOutcome | None:
        """Load a stored outcome, or None on a miss (or an unreadable entry).

        A corrupt or truncated payload file counts as a miss *and is
        deleted* (with a log line): leaving it in place would re-pay the
        failed decode on every future run, and a torn entry can never
        become readable again.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        outcome = decode_payload(blob)
        if outcome is None:
            self.stats.misses += 1
            try:
                path.unlink()
                logger.warning(
                    "store entry %s at %s is corrupt or from another cache "
                    "format; deleted (will be recomputed)", key[:12], path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return outcome

    def put(self, key: str, outcome: SimulationOutcome) -> bool:
        """Store a slim copy of ``outcome`` under ``key`` (atomic write).

        Conditional: when an entry already exists the put is acknowledged
        but changes nothing (first writer wins — the exactly-once
        contract); a fresh entry lands via temp-file + rename so
        concurrent workers computing the same point never see a torn
        payload.  Store failures (unwritable or uncreatable directory)
        degrade to a one-time warning rather than an exception: the
        outcome was already computed, and losing persistence must not
        lose the experiment.
        """
        path = self.path_for(key)
        if path.exists():
            self.stats.duplicate_puts += 1
            return False
        temp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(dir=path.parent,
                                                     suffix=".tmp")
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(encode_payload(outcome))
            os.replace(temp_name, path)
        except OSError as error:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            if not self._store_failure_warned:
                self._store_failure_warned = True
                warnings.warn(
                    f"simulation cache at {self.root} is not writable "
                    f"({error}); results will not be cached",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return False
        self.stats.stores += 1
        return True

    def contains(self, key: str) -> bool:
        """Whether an entry file for ``key`` exists (no decode)."""
        return self.path_for(key).exists()

    # ------------------------------------------------------------------
    # Claims (cross-process in-flight markers)
    # ------------------------------------------------------------------

    def _marker_path(self, token: str) -> Path:
        safe = token.replace("/", "_").replace(os.sep, "_")
        return self.root / INFLIGHT_DIR / f"{safe}.json"

    def claim(self, token: str, owner: str, ttl_s: float) -> bool:
        """Try to acquire marker ``token`` for ``owner`` (see protocol).

        The marker file is created ``O_CREAT | O_EXCL`` — atomic, so two
        claimants cannot both win.  An existing marker grants only to its
        own owner (TTL renewal) or, past its wall-clock deadline, to the
        first claimant that replaces it under the file lock.
        """
        path = self._marker_path(token)
        record = {"token": token, "owner": owner,
                  "deadline": time.time() + ttl_s}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor = os.open(str(path),
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self._contend_claim(path, record)
        except OSError:
            # Unwritable store: behave as if claims are unsupported — the
            # caller simply runs without cross-process coalescing.
            return True
        with os.fdopen(descriptor, "w") as handle:
            json.dump(record, handle)
        self.stats.claims += 1
        return True

    def _contend_claim(self, path: Path, record: dict) -> bool:
        """Resolve a claim against an existing marker file."""
        try:
            holder = json.loads(path.read_text())
        except (OSError, ValueError):
            holder = None
        if holder is not None and holder.get("owner") == record["owner"]:
            with file_lock(path):
                try:
                    path.write_text(json.dumps(record))
                except OSError:
                    pass
            self.stats.claims += 1
            return True
        expired = (holder is None
                   or float(holder.get("deadline", 0.0)) <= time.time())
        if not expired:
            self.stats.claim_conflicts += 1
            return False
        with file_lock(path):
            # Re-read under the lock: another waiter may have taken over
            # between our check and the lock acquisition.
            try:
                holder = json.loads(path.read_text())
            except (OSError, ValueError):
                holder = None
            if (holder is not None
                    and holder.get("owner") != record["owner"]
                    and float(holder.get("deadline", 0.0)) > time.time()):
                self.stats.claim_conflicts += 1
                return False
            try:
                path.write_text(json.dumps(record))
            except OSError:
                return True           # degraded: proceed unclaimed
        self.stats.claims += 1
        return True

    def release(self, token: str, owner: str) -> None:
        """Drop marker ``token`` if ``owner`` still holds it."""
        path = self._marker_path(token)
        try:
            holder = json.loads(path.read_text())
        except (OSError, ValueError):
            return
        if holder.get("owner") != owner:
            return
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Meta documents (shared JSON maps; the cost model lives here)
    # ------------------------------------------------------------------

    def _meta_path(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def get_meta(self, name: str) -> dict:
        """Read document ``name`` (empty on a missing or unreadable file)."""
        try:
            payload = json.loads(self._meta_path(name).read_text())
        except (OSError, ValueError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def merge_meta(self, name: str, entries: dict) -> dict:
        """Merge ``entries`` into document ``name`` (atomic, best-effort).

        The read-modify-write cycle runs under :func:`file_lock` so
        parallel processes sharing one store root never lose each other's
        entries; the write itself is a temp-file + rename so readers
        never see a torn file.
        """
        path = self._meta_path(name)
        with file_lock(path):
            merged = self.get_meta(name)
            merged.update(entries)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                descriptor, temp_name = tempfile.mkstemp(
                    dir=path.parent, suffix=".tmp")
                with os.fdopen(descriptor, "w") as handle:
                    json.dump(merged, handle, indent=0, sort_keys=True)
                os.replace(temp_name, path)
            except OSError:
                pass
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def entries(self) -> list[Path]:
        """All entry files currently in the store."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.pkl"))

    def __len__(self) -> int:
        return len(self.entries())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats_payload(self) -> dict:
        """The ``/store/stats``-shaped dict for this store."""
        counters = self.stats()
        return {"schema_version": STORE_SCHEMA_VERSION, **counters,
                "entries": len(self), "bytes": self.size_bytes()}
