"""``repro.store`` — the shared content-addressed result store.

One protocol (:class:`~repro.store.base.ResultStore`), three tiers:

* :class:`~repro.store.disk.DiskStore` — the local-disk outcome cache
  (``$REPRO_CACHE_DIR``; what :class:`repro.harness.cache.SimulationCache`
  has always been);
* :class:`~repro.store.sqlite.SqliteStore` — a single shared file with
  LRU eviction, TTL and a size cap;
* :class:`~repro.store.http.HTTPStore` — the client for ``python -m
  repro store-serve``, with bearer-token auth and exactly-once
  conditional puts, so fleet workers need no shared filesystem.

Stores travel through the engine as *locator* strings
(:func:`~repro.store.base.open_store` /
:func:`~repro.store.base.store_locator`): a path, ``sqlite://<path>``,
or ``http(s)://host:port``.  See ``docs/store.md``.
"""

from repro.store.base import (
    CACHE_FORMAT_VERSION,
    STORE_ENV,
    ResultStore,
    StoreStats,
    decode_payload,
    encode_payload,
    open_store,
    store_locator,
)
from repro.store.disk import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    DiskStore,
    default_cache_root,
    file_lock,
)
from repro.store.http import HTTPStore, StoreAuthError, StoreError, StoreServer, make_store_server
from repro.store.schema import (
    AUTH_HEADER,
    AUTH_SCHEME,
    STORE_SCHEMA_VERSION,
    TOKEN_ENV,
)
from repro.store.sqlite import SqliteStore

__all__ = [
    "AUTH_HEADER",
    "AUTH_SCHEME",
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "DiskStore",
    "HTTPStore",
    "ResultStore",
    "STORE_ENV",
    "STORE_SCHEMA_VERSION",
    "SqliteStore",
    "StoreAuthError",
    "StoreError",
    "StoreServer",
    "StoreStats",
    "TOKEN_ENV",
    "decode_payload",
    "default_cache_root",
    "encode_payload",
    "file_lock",
    "make_store_server",
    "open_store",
    "store_locator",
]
