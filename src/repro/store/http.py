"""The HTTP result-store tier: ``python -m repro store-serve`` + client.

The server side fronts any local store (a :class:`~repro.store.sqlite.
SqliteStore` by default, so it inherits LRU/TTL/size-cap eviction) with a
dependency-free JSON/octet-stream API; the client side
(:class:`HTTPStore`) implements the full
:class:`~repro.store.base.ResultStore` protocol over it, which is what
lets ``python -m repro worker --store http://host:port`` commit outcomes
with **no shared filesystem**.

========  =========================  =====================================
method    path                       behaviour
========  =========================  =====================================
GET       ``/healthz``               liveness probe (never authenticated)
GET       ``/store/blob/<key>``      payload bytes, 404 on a miss
HEAD      ``/store/blob/<key>``      existence probe (``contains``)
PUT       ``/store/blob/<key>``      conditional put → ``BlobPutReply``
                                     (first writer wins, exactly-once)
GET       ``/store/stats``           ``StoreStatsReply`` counters + sizes
POST      ``/store/claim``           acquire an in-flight marker
POST      ``/store/release``         drop an in-flight marker
GET       ``/store/meta/<name>``     one shared JSON document
POST      ``/store/meta/<name>``     server-side merge into the document
========  =========================  =====================================

Every route except ``/healthz`` requires the bearer token when the server
was given one (``--token`` / ``$REPRO_STORE_TOKEN``): a missing or wrong
``Authorization: Bearer <token>`` header answers a structured 401.  The
payload shapes and the auth header/scheme are frozen by the
``store-schema`` lint rule (see :mod:`repro.store.schema`).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote

from repro.core.simulator import SimulationOutcome
from repro.store.base import StoreStats, decode_payload, encode_payload
from repro.store.schema import (
    AUTH_HEADER,
    AUTH_SCHEME,
    STORE_SCHEMA_VERSION,
    TOKEN_ENV,
    BlobPutReply,
    ClaimReply,
    MetaReply,
    StoreStatsReply,
)

#: Default bind address of ``python -m repro store-serve``.
DEFAULT_HOST = "127.0.0.1"

#: Default TCP port of ``python -m repro store-serve``.
DEFAULT_PORT = 8878


class StoreError(RuntimeError):
    """The store server answered an error (or is unreachable)."""


class StoreAuthError(StoreError):
    """The store server refused this client's credentials (401)."""


class HTTPStore:
    """A :class:`~repro.store.base.ResultStore` client over HTTP.

    Args:
        base_url: The store server (``http://host:port``).
        token: Bearer token; None reads ``$REPRO_STORE_TOKEN``.  Sent on
            every request (the server ignores it when it runs open).
        timeout_s: Per-request network timeout.
    """

    def __init__(self, base_url: str, token: str | None = None,
                 *, timeout_s: float = 60.0):
        """Create the client (no traffic until the first operation)."""
        self.base_url = base_url.rstrip("/")
        self.token = token if token is not None else os.environ.get(TOKEN_ENV)
        self.timeout_s = timeout_s
        self.stats = StoreStats()

    @property
    def locator(self) -> str:
        """The locator that re-opens this store (its base URL)."""
        return self.base_url

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(self, method: str, path: str, body: bytes | None = None,
                 content_type: str = "application/json"):
        headers = {"Content-Type": content_type}
        if self.token:
            headers[AUTH_HEADER] = f"{AUTH_SCHEME} {self.token}"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method)
        try:
            return urllib.request.urlopen(request, timeout=self.timeout_s)
        except urllib.error.HTTPError as error:
            if error.code == 401:
                detail = error.read().decode(errors="replace")
                raise StoreAuthError(
                    f"store at {self.base_url} refused this client's "
                    f"credentials (set ${TOKEN_ENV}): {detail}") from None
            raise
        except (urllib.error.URLError, OSError) as error:
            raise StoreError(
                f"store at {self.base_url} unreachable: {error}") from None

    def _json(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode() if payload is not None else None
        with self._request(method, path, body) as response:
            return json.loads(response.read())

    # ------------------------------------------------------------------
    # The ResultStore protocol
    # ------------------------------------------------------------------

    def get(self, key: str) -> SimulationOutcome | None:
        """Fetch and decode the payload under ``key`` (None on 404)."""
        try:
            with self._request("GET", f"/store/blob/{key}") as response:
                blob = response.read()
        except urllib.error.HTTPError as error:
            if error.code == 404:
                self.stats.misses += 1
                return None
            raise
        outcome = decode_payload(blob)
        if outcome is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return outcome

    def put(self, key: str, outcome: SimulationOutcome) -> bool:
        """Conditionally upload the payload for ``key`` (first put wins)."""
        blob = encode_payload(outcome)
        with self._request("PUT", f"/store/blob/{key}", blob,
                           content_type="application/octet-stream") as response:
            reply = BlobPutReply.from_dict(json.loads(response.read()))
        if reply.stored:
            self.stats.stores += 1
        else:
            self.stats.duplicate_puts += 1
        return reply.stored

    def contains(self, key: str) -> bool:
        """HEAD-probe whether an entry for ``key`` exists."""
        try:
            with self._request("HEAD", f"/store/blob/{key}"):
                return True
        except urllib.error.HTTPError as error:
            if error.code == 404:
                return False
            raise

    def claim(self, token: str, owner: str, ttl_s: float) -> bool:
        """Acquire the in-flight marker ``token`` on the server."""
        reply = ClaimReply.from_dict(self._json("POST", "/store/claim", {
            "schema_version": STORE_SCHEMA_VERSION,
            "token": token, "owner": owner, "ttl_s": ttl_s}))
        if reply.granted:
            self.stats.claims += 1
        else:
            self.stats.claim_conflicts += 1
        return reply.granted

    def release(self, token: str, owner: str) -> None:
        """Drop the in-flight marker ``token`` on the server."""
        self._json("POST", "/store/release", {
            "schema_version": STORE_SCHEMA_VERSION,
            "token": token, "owner": owner})

    def get_meta(self, name: str) -> dict:
        """Fetch the shared JSON document ``name``."""
        reply = MetaReply.from_dict(self._json("GET", f"/store/meta/{name}"))
        return reply.entries

    def merge_meta(self, name: str, entries: dict) -> dict:
        """Merge ``entries`` into document ``name`` server-side."""
        reply = MetaReply.from_dict(self._json(
            "POST", f"/store/meta/{name}",
            {"schema_version": STORE_SCHEMA_VERSION, "entries": entries}))
        return reply.entries

    def stats_payload(self) -> dict:
        """The *server's* ``/store/stats`` payload (fleet-wide counters)."""
        return self._json("GET", "/store/stats")


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------


class StoreServer(ThreadingHTTPServer):
    """A threading HTTP server fronting one backing store."""

    daemon_threads = True

    def __init__(self, address, backing, token: str | None = None):
        """Bind to ``address`` and serve ``backing`` (token = require auth)."""
        self.backing = backing
        self.token = token
        super().__init__(address, StoreRequestHandler)

    @property
    def url(self) -> str:
        """The server's base URL."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes the endpoint table in the module docstring (one per request)."""

    server: StoreServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Suppress the default per-request stderr chatter."""

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _reply_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_bytes(self, code: int, blob: bytes, head_only: bool = False) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        if not head_only:
            self.wfile.write(blob)

    def _error(self, code: int, message: str) -> None:
        self._reply_json(code, {"schema_version": STORE_SCHEMA_VERSION,
                                "error": message})

    def _authorized(self) -> bool:
        """Check the bearer token; answer the 401 when it fails."""
        expected = self.server.token
        if not expected:
            return True
        supplied = self.headers.get(AUTH_HEADER, "")
        scheme, _, credential = supplied.partition(" ")
        if scheme == AUTH_SCHEME and credential.strip() == expected:
            return True
        self._error(401, f"missing or invalid {AUTH_SCHEME} token in the "
                         f"{AUTH_HEADER} header")
        return False

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        return self.rfile.read(length) if length > 0 else b""

    def _read_json(self) -> dict | None:
        try:
            payload = json.loads(self._read_body())
        except (ValueError, UnicodeDecodeError) as error:
            self._error(400, f"malformed JSON body: {error}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "JSON body must be an object")
            return None
        return payload

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """GET router: ``/healthz``, ``/store/blob``, ``/store/stats``,
        ``/store/meta``."""
        path = self.path.partition("?")[0]
        if path == "/healthz":
            self._reply_json(200, {"schema_version": STORE_SCHEMA_VERSION,
                                   "ok": True})
            return
        if not self._authorized():
            return
        if path.startswith("/store/blob/"):
            key = unquote(path[len("/store/blob/"):])
            blob = self._raw_blob(key)
            if blob is None:
                self._error(404, f"no entry for key {key!r}")
                return
            self._reply_bytes(200, blob)
            return
        if path == "/store/stats":
            self._reply_json(200, StoreStatsReply(
                **self.server.backing.stats_payload()).to_dict())
            return
        if path.startswith("/store/meta/"):
            name = unquote(path[len("/store/meta/"):])
            self._reply_json(200, MetaReply(
                name=name,
                entries=self.server.backing.get_meta(name)).to_dict())
            return
        self._error(404, f"unknown path {path!r}")

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib naming
        """HEAD router: ``/store/blob/<key>`` existence probes."""
        path = self.path.partition("?")[0]
        if not self._authorized():
            return
        if path.startswith("/store/blob/"):
            key = unquote(path[len("/store/blob/"):])
            if self.server.backing.contains(key):
                self._reply_bytes(200, b"", head_only=True)
            else:
                self._reply_bytes(404, b"", head_only=True)
            return
        self._reply_bytes(404, b"", head_only=True)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        """PUT router: ``/store/blob/<key>`` conditional payload uploads."""
        path = self.path.partition("?")[0]
        if not self._authorized():
            return
        if not path.startswith("/store/blob/"):
            self._error(404, f"unknown path {path!r}")
            return
        key = unquote(path[len("/store/blob/"):])
        blob = self._read_body()
        outcome = decode_payload(blob)
        if outcome is None:
            self._error(400, f"payload for {key!r} is not a valid "
                             f"cache-format entry")
            return
        stored = self.server.backing.put(key, outcome)
        self._reply_json(200, BlobPutReply(
            key=key, stored=stored, duplicate=not stored).to_dict())

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """POST router: ``/store/claim``, ``/store/release``,
        ``/store/meta/<name>`` merges."""
        path = self.path.partition("?")[0]
        if not self._authorized():
            return
        if path == "/store/claim":
            payload = self._read_json()
            if payload is None:
                return
            token = str(payload.get("token", ""))
            owner = str(payload.get("owner", ""))
            try:
                ttl_s = float(payload.get("ttl_s", 60.0))
            except (TypeError, ValueError):
                self._error(400, "ttl_s must be a number")
                return
            granted = self.server.backing.claim(token, owner, ttl_s)
            holder = owner if granted else self._holder(token)
            self._reply_json(200, ClaimReply(
                token=token, granted=granted, holder=holder).to_dict())
            return
        if path == "/store/release":
            payload = self._read_json()
            if payload is None:
                return
            token = str(payload.get("token", ""))
            owner = str(payload.get("owner", ""))
            self.server.backing.release(token, owner)
            self._reply_json(200, ClaimReply(
                token=token, granted=False,
                holder=self._holder(token)).to_dict())
            return
        if path.startswith("/store/meta/"):
            payload = self._read_json()
            if payload is None:
                return
            entries = payload.get("entries")
            if not isinstance(entries, dict):
                self._error(400, "entries must be an object")
                return
            name = unquote(path[len("/store/meta/"):])
            merged = self.server.backing.merge_meta(name, entries)
            self._reply_json(200, MetaReply(name=name,
                                            entries=merged).to_dict())
            return
        self._error(404, f"unknown path {path!r}")

    # ------------------------------------------------------------------
    # Backing-store helpers
    # ------------------------------------------------------------------

    def _raw_blob(self, key: str) -> bytes | None:
        """The raw payload bytes for ``key`` via the backing store.

        Round-trips through the backing store's ``get`` so hit/miss/TTL
        accounting happens exactly once, then re-encodes — the payload
        codec is deterministic, so the bytes a client receives equal the
        bytes any other tier would serve.
        """
        outcome = self.server.backing.get(key)
        if outcome is None:
            return None
        return encode_payload(outcome)

    def _holder(self, token: str) -> str | None:
        """Current marker owner when the backing store can say (else None)."""
        probe = getattr(self.server.backing, "holder", None)
        return probe(token) if probe is not None else None


def make_store_server(host: str = DEFAULT_HOST, port: int = 0,
                      backing=None, token: str | None = None) -> StoreServer:
    """Create (but do not start) a :class:`StoreServer`.

    ``port=0`` binds an ephemeral free port (the chosen URL is
    ``server.url``); ``backing=None`` serves an in-memory
    :class:`~repro.store.sqlite.SqliteStore`.  Tests drive the returned
    server from a thread via ``serve_forever()``/``shutdown()``.
    """
    if backing is None:
        from repro.store.sqlite import SqliteStore

        backing = SqliteStore(":memory:")
    return StoreServer((host, port), backing, token=token)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro store-serve``."""
    import argparse

    from repro.store.sqlite import SqliteStore

    parser = argparse.ArgumentParser(
        prog="repro store-serve",
        description="Serve a shared content-addressed result store over HTTP.")
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"bind address (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port (default {DEFAULT_PORT}; 0 = any "
                             f"free port)")
    parser.add_argument("--db", default=None, metavar="PATH",
                        help="sqlite database file backing the store "
                             "(default: store.sqlite3 under the outcome-"
                             "cache root)")
    parser.add_argument("--token", default=None,
                        help=f"bearer token clients must present (default: "
                             f"${TOKEN_ENV}; empty = no authentication)")
    parser.add_argument("--max-bytes", type=int, default=None, metavar="N",
                        help="LRU size cap on stored payload bytes "
                             "(default: unbounded)")
    parser.add_argument("--ttl", type=float, default=None, metavar="S",
                        help="idle-entry time-to-live in seconds "
                             "(default: no expiry)")
    options = parser.parse_args(argv)

    if options.db is None:
        from repro.store.disk import default_cache_root

        options.db = str(default_cache_root() / "store.sqlite3")
    token = options.token if options.token is not None \
        else os.environ.get(TOKEN_ENV)
    backing = SqliteStore(options.db, max_bytes=options.max_bytes,
                          ttl_s=options.ttl)
    server = StoreServer((options.host, options.port), backing, token=token)
    print(f"repro store-serve: listening on {server.url} "
          f"(db {options.db}, auth {'on' if token else 'off'})", flush=True)

    def _request_stop(signum, frame):
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except ValueError:            # non-main thread (tests)
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        backing.close()
    print("repro store-serve: shut down cleanly", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    raise SystemExit(main())
