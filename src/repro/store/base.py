"""``repro.store`` core: the ``ResultStore`` protocol and payload codec.

A *result store* is a content-addressed map from :func:`outcome keys
<repro.harness.cache.outcome_key>` to slim
:class:`~repro.core.simulator.SimulationOutcome` payloads, speaking the
on-disk cache format (:data:`CACHE_FORMAT_VERSION`).  Three tiers
implement the protocol:

* :class:`repro.store.disk.DiskStore` — the historical local-disk
  outcome cache (``$REPRO_CACHE_DIR``), now one tier among equals;
* :class:`repro.store.sqlite.SqliteStore` — a single-file shared tier
  with LRU eviction, per-entry TTL and a size cap;
* :class:`repro.store.http.HTTPStore` — a network client for ``python -m
  repro store-serve``, so fleet workers on other hosts commit outcomes
  with no shared filesystem.

Stores are named by *locators* — plain strings that travel in
:class:`~repro.harness.executors.WorkloadTask` payloads and fleet cell
dicts exactly where a cache-root path used to: a filesystem path opens a
:class:`DiskStore`, ``sqlite:///path/to.db`` a :class:`SqliteStore`, and
``http(s)://host:port`` an :class:`HTTPStore`.  :func:`open_store` maps a
locator to a store and :func:`store_locator` is its inverse.

Beyond ``get``/``put``, stores carry two small cooperative facilities the
rest of the stack builds on:

* **claims** (:meth:`ResultStore.claim` / :meth:`ResultStore.release`) —
  named, TTL-guarded in-flight markers.  Sessions claim
  ``request/<digest>`` before executing a grid, which extends request
  coalescing across processes and hosts: the second session waits for the
  first holder instead of simulating, then reads pure store hits.
* **meta documents** (:meth:`ResultStore.get_meta` /
  :meth:`ResultStore.merge_meta`) — small shared JSON maps merged
  server-side (last write per key wins), which is how the
  :class:`~repro.harness.executors.CostModel` shares probe timings
  between fleet workers.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.core.simulator import SimulationOutcome

#: Bump whenever the pickled payload layout or the key material changes.
#: v2: ``SimResult`` gained the ``finished`` field (incremental runs).
#: v3: ``SimStats`` gained ``occupancy`` and ``SimResult`` gained
#:     ``timeline`` (observability); the key material gained the
#:     ``record_stats`` mode.
CACHE_FORMAT_VERSION = 3

#: Environment variable naming the default result store as a locator
#: (path, ``sqlite://...`` or ``http(s)://...``); takes precedence over
#: ``$REPRO_CACHE_DIR`` when both are set.
STORE_ENV = "REPRO_STORE"


@dataclass
class StoreStats:
    """Hit/miss/store/eviction counters for one store instance.

    The first three fields keep the historical
    :class:`repro.harness.cache.CacheStats` shape (executors merge them
    across worker processes); the rest are store-tier additions.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    duplicate_puts: int = 0
    claims: int = 0
    claim_conflicts: int = 0

    def __call__(self) -> dict:
        """The counters as a plain dict (``store.stats()`` protocol form)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "duplicate_puts": self.duplicate_puts,
            "claims": self.claims,
            "claim_conflicts": self.claim_conflicts,
        }


def encode_payload(outcome: SimulationOutcome) -> bytes:
    """Serialise a *slim* outcome to the cache-format payload bytes.

    The program and the functional trace are dropped — they are cheap to
    rebuild relative to the cycle-level simulation and would dominate the
    payload size; everything the experiment reports read (``stats``,
    ``cycles``, ``timing.timing_records``) is preserved byte-for-byte.
    """
    return pickle.dumps({
        "version": CACHE_FORMAT_VERSION,
        "timing": outcome.timing,
        "reno_config": outcome.reno_config,
    }, protocol=pickle.HIGHEST_PROTOCOL)


def decode_payload(blob: bytes) -> SimulationOutcome | None:
    """Deserialise payload bytes back into a slim outcome.

    Any failure to unpickle or interpret the payload answers None —
    entries written by other versions of the codebase can fail in ways
    well beyond ``UnpicklingError`` (e.g. ``ModuleNotFoundError`` for a
    renamed class), and a corrupt entry must cost a recomputation, never
    an experiment.
    """
    try:
        payload = pickle.loads(blob)
        if payload.get("version") != CACHE_FORMAT_VERSION:
            raise ValueError("cache format version mismatch")
        return SimulationOutcome(
            program=None,
            functional=None,
            timing=payload["timing"],
            reno_config=payload["reno_config"],
            cached=True,
        )
    except Exception:                 # noqa: BLE001 - corrupt entry == miss
        return None


@runtime_checkable
class ResultStore(Protocol):
    """The content-addressed result-store protocol (see module docstring).

    Implementations also expose a ``stats`` attribute — a
    :class:`StoreStats` instance counting this handle's traffic — and a
    ``locator`` string that round-trips through :func:`open_store`.
    """

    def get(self, key: str) -> SimulationOutcome | None:
        """Load the outcome stored under ``key`` (None on a miss)."""
        ...  # pragma: no cover - protocol definition

    def put(self, key: str, outcome: SimulationOutcome) -> bool:
        """Store a slim copy of ``outcome`` under ``key``.

        Conditional: the first put of a key wins and returns True; later
        puts are acknowledged-but-ignored (False) so concurrent workers
        computing the same point commit exactly once.
        """
        ...  # pragma: no cover - protocol definition

    def contains(self, key: str) -> bool:
        """Whether an entry for ``key`` exists (no payload decode)."""
        ...  # pragma: no cover - protocol definition

    def claim(self, token: str, owner: str, ttl_s: float) -> bool:
        """Try to acquire the in-flight marker ``token`` for ``owner``.

        True when acquired (or already held by the same owner, renewing
        the TTL); False while another live owner holds it.  A marker
        whose TTL lapsed is taken over — a crashed holder must not block
        coalesced waiters forever.
        """
        ...  # pragma: no cover - protocol definition

    def release(self, token: str, owner: str) -> None:
        """Drop the marker ``token`` if ``owner`` still holds it."""
        ...  # pragma: no cover - protocol definition

    def get_meta(self, name: str) -> dict:
        """The shared JSON document ``name`` (empty when absent/corrupt)."""
        ...  # pragma: no cover - protocol definition

    def merge_meta(self, name: str, entries: dict) -> dict:
        """Merge ``entries`` into document ``name``; return the result."""
        ...  # pragma: no cover - protocol definition

    def stats_payload(self) -> dict:
        """The ``/store/stats``-shaped counters + size figures dict."""
        ...  # pragma: no cover - protocol definition


def open_store(locator, token: str | None = None):
    """Open the result store a locator names (None stays None).

    * ``http://`` / ``https://`` — an :class:`~repro.store.http.HTTPStore`
      client (``token`` or ``$REPRO_STORE_TOKEN`` authenticates it);
    * ``sqlite://<path>`` — a :class:`~repro.store.sqlite.SqliteStore`;
    * any other string or :class:`~pathlib.Path` — a
      :class:`~repro.store.disk.DiskStore` rooted there;
    * an object already implementing the protocol passes through.
    """
    if locator is None:
        return None
    if not isinstance(locator, (str, Path)):
        if isinstance(locator, ResultStore) or (
                hasattr(locator, "get") and hasattr(locator, "put")):
            return locator
        raise TypeError(f"not a store locator or ResultStore: {locator!r}")
    text = str(locator)
    if text.startswith(("http://", "https://")):
        from repro.store.http import HTTPStore

        return HTTPStore(text, token=token)
    if text.startswith("sqlite://"):
        from repro.store.sqlite import SqliteStore

        return SqliteStore(text[len("sqlite://"):])
    from repro.store.disk import DiskStore

    return DiskStore(text)


def store_locator(store) -> str | None:
    """The locator string that re-opens ``store`` (inverse of
    :func:`open_store`); None for no store."""
    if store is None:
        return None
    locator = getattr(store, "locator", None)
    if locator is not None:
        return str(locator)
    root = getattr(store, "root", None)
    if root is not None:
        return str(root)
    raise TypeError(f"store {store!r} exposes neither a locator nor a root")
