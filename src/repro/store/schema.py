"""The store wire schema: frozen payload shapes of the HTTP result store.

Like :mod:`repro.api.schema` for the fleet, this module is the
compatibility contract between store servers (``python -m repro
store-serve``), store clients (:class:`repro.store.http.HTTPStore`) and
the ``/store/stats`` route ``repro serve`` exposes.  Every dataclass
here — field names, annotations, defaults, order — plus the
:data:`STORE_SCHEMA_VERSION` constant and the authentication constants
are frozen by the ``store-schema`` lint rule against the committed
baseline (``scripts/schema_baseline.json``); additions require a version
bump recorded with ``python -m repro lint --update-baseline``.

Authentication is a bearer token: clients send ``Authorization: Bearer
<token>`` and servers answer a structured 401 on a missing or wrong
token.  The token itself is configuration (``$REPRO_STORE_TOKEN`` or
``--token``), never part of any payload.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: Version of the store wire payloads.  Bump on any additive change; the
#: ``store-schema`` lint rule fails removals and unbumped additions.
STORE_SCHEMA_VERSION = 1

#: HTTP header carrying the worker/client credential.
AUTH_HEADER = "Authorization"

#: Credential scheme inside :data:`AUTH_HEADER` (``Bearer <token>``).
AUTH_SCHEME = "Bearer"

#: Environment variable supplying the bearer token to clients and servers.
TOKEN_ENV = "REPRO_STORE_TOKEN"


class StoreSchemaError(ValueError):
    """A store payload does not match the frozen schema."""


def check_store_version(payload: dict, context: str) -> None:
    """Reject payloads stamped with a different store schema version."""
    version = payload.get("schema_version")
    if version != STORE_SCHEMA_VERSION:
        raise StoreSchemaError(
            f"{context}: store schema version {version!r} does not match "
            f"this package's {STORE_SCHEMA_VERSION}")


@dataclass
class StoreStatsReply:
    """The ``GET /store/stats`` payload: counters plus size figures."""

    schema_version: int = STORE_SCHEMA_VERSION
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    duplicate_puts: int = 0
    claims: int = 0
    claim_conflicts: int = 0
    entries: int = 0
    bytes: int = 0

    def to_dict(self) -> dict:
        """The JSON-ready dict form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "StoreStatsReply":
        """Decode (and version-check) one stats payload."""
        check_store_version(payload, "store stats")
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class BlobPutReply:
    """The ``PUT /store/blob/<key>`` payload: conditional-put outcome.

    ``stored`` is True only for the first successful put of a key — the
    exactly-once contract: later puts of the same key are acknowledged
    (``duplicate`` True) but never overwrite the committed payload.
    """

    schema_version: int = STORE_SCHEMA_VERSION
    key: str = ""
    stored: bool = False
    duplicate: bool = False

    def to_dict(self) -> dict:
        """The JSON-ready dict form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "BlobPutReply":
        """Decode (and version-check) one put reply."""
        check_store_version(payload, "blob put")
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class ClaimReply:
    """The ``POST /store/claim`` / ``/store/release`` payload.

    ``granted`` says whether the caller now holds the marker; ``holder``
    names the current owner either way (coalescing clients poll until the
    holder releases or its TTL lapses).
    """

    schema_version: int = STORE_SCHEMA_VERSION
    token: str = ""
    granted: bool = False
    holder: str | None = None

    def to_dict(self) -> dict:
        """The JSON-ready dict form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ClaimReply":
        """Decode (and version-check) one claim reply."""
        check_store_version(payload, "claim")
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class MetaReply:
    """The ``GET``/``POST /store/meta/<name>`` payload: one shared JSON doc.

    Carries the full merged document after a read or a server-side merge
    (the cost model's shared probe data travels this way).
    """

    schema_version: int = STORE_SCHEMA_VERSION
    name: str = ""
    entries: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON-ready dict form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "MetaReply":
        """Decode (and version-check) one meta payload."""
        check_store_version(payload, "meta")
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})
