"""The sqlite result-store tier: one shared file, LRU/TTL/size-capped.

A :class:`SqliteStore` keeps payloads, claim markers and meta documents
in a single sqlite database, giving many processes on one machine (or a
``python -m repro store-serve`` front-end serving many hosts) a shared
tier with real eviction policy:

* **LRU size cap** — ``max_bytes`` bounds the total payload size; every
  put evicts least-recently-*accessed* entries until the new entry fits.
* **TTL** — ``ttl_s`` expires entries that have not been touched for that
  long; expired entries read as misses and are deleted on sight.
* **exactly-once puts** — ``INSERT OR IGNORE`` makes the first writer
  win; later puts of the same key are counted as duplicates and change
  nothing.

All statements run under one connection guarded by a lock (the store is
shared across the server's handler threads), with sqlite's own file
locking covering multi-process access to the same database file.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.core.simulator import SimulationOutcome
from repro.store.base import StoreStats, decode_payload, encode_payload
from repro.store.schema import STORE_SCHEMA_VERSION

_SCHEMA = """
CREATE TABLE IF NOT EXISTS blobs (
    key TEXT PRIMARY KEY,
    payload BLOB NOT NULL,
    nbytes INTEGER NOT NULL,
    created REAL NOT NULL,
    last_access REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS markers (
    token TEXT PRIMARY KEY,
    owner TEXT NOT NULL,
    deadline REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    name TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
"""


class SqliteStore:
    """A single-file shared result store with LRU eviction and TTL.

    Args:
        path: Database file (created on first use; parent directories
            too).  ``":memory:"`` keeps everything in-process (tests).
        max_bytes: Total payload-size cap; None disables the size cap.
        ttl_s: Idle-entry time-to-live in seconds; None disables expiry.
        clock: Wall-clock source (tests inject a fake to exercise TTL
            and LRU order without sleeping).
    """

    def __init__(self, path: str | Path, *,
                 max_bytes: int | None = None,
                 ttl_s: float | None = None,
                 clock=time.time):
        """Open (creating if needed) the database at ``path``."""
        self.path = Path(path) if str(path) != ":memory:" else path
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self.stats = StoreStats()
        self._clock = clock
        self._lock = threading.Lock()
        if isinstance(self.path, Path):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(str(self.path), check_same_thread=False,
                                   timeout=30.0)
        with self._lock:
            self._db.executescript(_SCHEMA)
            self._db.commit()

    @property
    def locator(self) -> str:
        """The ``sqlite://<path>`` locator that re-opens this store."""
        return f"sqlite://{self.path}"

    def close(self) -> None:
        """Close the underlying database connection."""
        with self._lock:
            self._db.close()

    # ------------------------------------------------------------------
    # Content-addressed payloads
    # ------------------------------------------------------------------

    def _expired(self, last_access: float) -> bool:
        return (self.ttl_s is not None
                and self._clock() - last_access > self.ttl_s)

    def get(self, key: str) -> SimulationOutcome | None:
        """Load a stored outcome (None on a miss, an expired entry, or a
        corrupt payload — corrupt and expired entries are deleted)."""
        with self._lock:
            row = self._db.execute(
                "SELECT payload, last_access FROM blobs WHERE key = ?",
                (key,)).fetchone()
            if row is None:
                self.stats.misses += 1
                return None
            blob, last_access = row
            if self._expired(last_access):
                self._db.execute("DELETE FROM blobs WHERE key = ?", (key,))
                self._db.commit()
                self.stats.evictions += 1
                self.stats.misses += 1
                return None
            outcome = decode_payload(blob)
            if outcome is None:
                self._db.execute("DELETE FROM blobs WHERE key = ?", (key,))
                self._db.commit()
                self.stats.misses += 1
                return None
            self._db.execute(
                "UPDATE blobs SET last_access = ? WHERE key = ?",
                (self._clock(), key))
            self._db.commit()
            self.stats.hits += 1
            return outcome

    def put(self, key: str, outcome: SimulationOutcome) -> bool:
        """Store a slim copy of ``outcome`` (first writer wins).

        Evicts least-recently-accessed entries as needed to respect
        ``max_bytes``; an entry larger than the whole cap is refused.
        """
        blob = encode_payload(outcome)
        now = self._clock()
        with self._lock:
            if self.max_bytes is not None:
                if len(blob) > self.max_bytes:
                    return False
                self._evict_locked(need=len(blob))
            cursor = self._db.execute(
                "INSERT OR IGNORE INTO blobs "
                "(key, payload, nbytes, created, last_access) "
                "VALUES (?, ?, ?, ?, ?)",
                (key, blob, len(blob), now, now))
            self._db.commit()
            if cursor.rowcount == 0:
                self.stats.duplicate_puts += 1
                return False
            self.stats.stores += 1
            return True

    def _evict_locked(self, need: int) -> None:
        """Delete expired + LRU entries until ``need`` more bytes fit."""
        if self.ttl_s is not None:
            cutoff = self._clock() - self.ttl_s
            cursor = self._db.execute(
                "DELETE FROM blobs WHERE last_access < ?", (cutoff,))
            self.stats.evictions += cursor.rowcount
        while True:
            total = self._db.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM blobs").fetchone()[0]
            if total + need <= self.max_bytes:
                break
            victim = self._db.execute(
                "SELECT key FROM blobs ORDER BY last_access ASC, key ASC "
                "LIMIT 1").fetchone()
            if victim is None:
                break
            self._db.execute("DELETE FROM blobs WHERE key = ?", victim)
            self.stats.evictions += 1
        self._db.commit()

    def contains(self, key: str) -> bool:
        """Whether a live (non-expired) entry for ``key`` exists."""
        with self._lock:
            row = self._db.execute(
                "SELECT last_access FROM blobs WHERE key = ?",
                (key,)).fetchone()
            return row is not None and not self._expired(row[0])

    # ------------------------------------------------------------------
    # Claims
    # ------------------------------------------------------------------

    def claim(self, token: str, owner: str, ttl_s: float) -> bool:
        """Try to acquire marker ``token`` for ``owner`` (see protocol)."""
        now = self._clock()
        with self._lock:
            self._db.execute("DELETE FROM markers WHERE deadline <= ?",
                             (now,))
            cursor = self._db.execute(
                "INSERT OR IGNORE INTO markers (token, owner, deadline) "
                "VALUES (?, ?, ?)", (token, owner, now + ttl_s))
            if cursor.rowcount:
                self._db.commit()
                self.stats.claims += 1
                return True
            row = self._db.execute(
                "SELECT owner FROM markers WHERE token = ?",
                (token,)).fetchone()
            if row is not None and row[0] == owner:
                self._db.execute(
                    "UPDATE markers SET deadline = ? WHERE token = ?",
                    (now + ttl_s, token))
                self._db.commit()
                self.stats.claims += 1
                return True
            self._db.commit()
            self.stats.claim_conflicts += 1
            return False

    def release(self, token: str, owner: str) -> None:
        """Drop marker ``token`` if ``owner`` still holds it."""
        with self._lock:
            self._db.execute(
                "DELETE FROM markers WHERE token = ? AND owner = ?",
                (token, owner))
            self._db.commit()

    def holder(self, token: str) -> str | None:
        """The live owner of marker ``token`` (None when unclaimed)."""
        with self._lock:
            row = self._db.execute(
                "SELECT owner, deadline FROM markers WHERE token = ?",
                (token,)).fetchone()
            if row is None or row[1] <= self._clock():
                return None
            return row[0]

    # ------------------------------------------------------------------
    # Meta documents
    # ------------------------------------------------------------------

    def get_meta(self, name: str) -> dict:
        """Read document ``name`` (empty when absent or unreadable)."""
        with self._lock:
            row = self._db.execute(
                "SELECT payload FROM meta WHERE name = ?", (name,)).fetchone()
        if row is None:
            return {}
        try:
            payload = json.loads(row[0])
        except ValueError:
            return {}
        return payload if isinstance(payload, dict) else {}

    def merge_meta(self, name: str, entries: dict) -> dict:
        """Merge ``entries`` into document ``name`` inside one transaction."""
        with self._lock:
            row = self._db.execute(
                "SELECT payload FROM meta WHERE name = ?", (name,)).fetchone()
            merged: dict = {}
            if row is not None:
                try:
                    loaded = json.loads(row[0])
                    if isinstance(loaded, dict):
                        merged = loaded
                except ValueError:
                    pass
            merged.update(entries)
            self._db.execute(
                "INSERT OR REPLACE INTO meta (name, payload) VALUES (?, ?)",
                (name, json.dumps(merged, sort_keys=True)))
            self._db.commit()
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return self._db.execute(
                "SELECT COUNT(*) FROM blobs").fetchone()[0]

    def size_bytes(self) -> int:
        """Total payload bytes currently stored."""
        with self._lock:
            return self._db.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM blobs").fetchone()[0]

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        with self._lock:
            cursor = self._db.execute("DELETE FROM blobs")
            self._db.commit()
            return cursor.rowcount

    def stats_payload(self) -> dict:
        """The ``/store/stats``-shaped dict for this store."""
        counters = self.stats()
        return {"schema_version": STORE_SCHEMA_VERSION, **counters,
                "entries": len(self), "bytes": self.size_bytes()}
