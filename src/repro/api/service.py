"""``python -m repro serve``: JSON-over-HTTP front-end for a Session.

A deliberately dependency-free service (stdlib ``http.server`` only) that
maps the :class:`~repro.api.session.Session` facade onto five endpoints:

========  =======================  ==========================================
method    path                     behaviour
========  =======================  ==========================================
GET       ``/healthz``             liveness probe (``{"ok": true}``)
GET       ``/experiments``         the experiment registry (names + titles)
POST      ``/experiments``         submit an ``ExperimentRequest`` body →
                                   202 with ``job_id`` (identical concurrent
                                   requests coalesce onto one job)
GET       ``/jobs/<id>``           job status incl. per-cell progress and,
                                   when finished, the serialised report;
                                   ``?wait=<seconds>`` long-polls
POST      ``/jobs/<id>/cancel``    cooperative cancellation
GET       ``/fleet``               broker stats when the session executes
                                   on a worker fleet (404 otherwise)
GET       ``/store/stats``         result-store counters (hits, misses,
                                   evictions, bytes — see ``docs/store.md``)
                                   when the session has a store (404
                                   otherwise)
========  =======================  ==========================================

When the session runs on a :class:`~repro.api.fleet.FleetExecutor`, a
submission that would overflow the broker queue is refused with a
structured **429** (``retry_after_s`` plus the live queue numbers) instead
of growing memory without bound — the fleet's backpressure surfaced at the
HTTP edge.

Requests are handled on one thread each (``ThreadingHTTPServer``), the
CPU-heavy work lives on the session's workers, and identical concurrent
submissions execute once: in-flight requests via the session's
content-addressed coalescing, repeats via the result store.  Two *separate*
``repro serve`` processes sharing a store (``--store sqlite://…`` or an
HTTP store URL) coalesce across processes too — the store carries the
in-flight claim markers (see ``docs/store.md``).
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote

from repro.api.schema import WIRE_SCHEMA_VERSION, ExperimentRequest, SchemaError
from repro.api.session import Session

#: Default bind address of ``python -m repro serve``.
DEFAULT_HOST = "127.0.0.1"

#: Default TCP port of ``python -m repro serve``.
DEFAULT_PORT = 8765

#: Upper bound on ``?wait=`` long-poll durations (seconds).
MAX_WAIT_S = 60.0


class ReproServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`Session`."""

    daemon_threads = True

    def __init__(self, address, session: Session):
        """Bind to ``address`` and serve ``session``."""
        self.session = session
        super().__init__(address, ReproRequestHandler)


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes the endpoint table in the module docstring (one per request)."""

    server: ReproServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Suppress the default per-request stderr chatter."""

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._reply(code, {"schema_version": WIRE_SCHEMA_VERSION,
                           "error": message})

    def _read_json(self) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            self._error(400, "request body required")
            return None
        try:
            return json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError) as error:
            self._error(400, f"malformed JSON body: {error}")
            return None

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """GET router: ``/healthz``, ``/experiments``, ``/jobs/<id>``,
        ``/fleet``, ``/store/stats``."""
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._reply(200, {"schema_version": WIRE_SCHEMA_VERSION, "ok": True})
            return
        if path == "/experiments":
            from repro.harness.spec import list_experiments

            self._reply(200, {
                "schema_version": WIRE_SCHEMA_VERSION,
                "experiments": [
                    {"name": entry.name, "title": entry.title,
                     "description": entry.description,
                     "default_suite": entry.default_suite}
                    for entry in list_experiments()
                ],
            })
            return
        if path == "/fleet":
            broker = getattr(self.server.session.executor, "broker", None)
            if broker is None:
                self._error(404, "this session does not run on a worker "
                                 "fleet; start one with `repro serve "
                                 "--workers N`")
                return
            self._reply(200, broker.stats())
            return
        if path == "/store/stats":
            store = self.server.session.cache
            if store is None:
                self._error(404, "this session has no result store; start "
                                 "one with `repro serve --cache-dir DIR` or "
                                 "`--store URL`")
                return
            self._reply(200, store.stats_payload())
            return
        if path.startswith("/jobs/"):
            job_id = unquote(path[len("/jobs/"):])
            job = self.server.session.job(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id!r}")
                return
            wait = _parse_wait(query)
            if wait is None:
                self._error(400, f"malformed wait= parameter in {query!r}; "
                                 f"expected a number of seconds")
                return
            if wait:
                job.wait(wait)
            self._reply(200, job.status().to_dict())
            return
        self._error(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """POST router: ``/experiments`` (submit), ``/jobs/<id>/cancel``."""
        path = self.path.partition("?")[0]
        if path == "/experiments":
            payload = self._read_json()
            if payload is None:
                return
            from repro.api.fleet import FleetSaturated

            try:
                request = ExperimentRequest.from_dict(payload)
                job = self.server.session.submit(request)
            except SchemaError as error:
                self._error(400, str(error))
            except FleetSaturated as error:
                # Backpressure, not failure: the fleet queue is full.  The
                # structured body carries the live numbers so clients can
                # back off intelligently instead of hammering the edge.
                self._reply(429, {
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "error": str(error),
                    "queue_depth": error.queue_depth,
                    "max_queue_depth": error.max_queue_depth,
                    "retry_after_s": 5.0,
                })
            except KeyError as error:
                # A bare ``KeyError()`` has no args; fall back to the
                # exception itself rather than crashing the handler.
                detail = error.args[0] if error.args else error
                self._error(404, str(detail))
            else:
                self._reply(202, {
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "job_id": job.job_id,
                    "state": job.state,
                    "coalesced": job.submissions > 1,
                })
            return
        if path.startswith("/jobs/") and path.endswith("/cancel"):
            job_id = unquote(path[len("/jobs/"):-len("/cancel")])
            job = self.server.session.job(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id!r}")
                return
            accepted = job.cancel()
            self._reply(200, {
                "schema_version": WIRE_SCHEMA_VERSION,
                "job_id": job.job_id,
                "cancelled": accepted,
                "state": job.state,
            })
            return
        self._error(404, f"unknown path {path!r}")


def _parse_wait(query: str) -> float | None:
    """Extract the ``wait=<seconds>`` long-poll duration from a query string.

    Returns 0.0 when no ``wait=`` is present, the clamped duration
    otherwise — negatives clamp to 0 and oversized values to
    :data:`MAX_WAIT_S` — and **None** when the value is malformed
    (non-numeric, empty, or NaN), so the handler can answer 400 instead of
    silently ignoring a request it did not understand.
    """
    for part in query.split("&"):
        key, _, value = part.partition("=")
        if key == "wait":
            try:
                wait = float(unquote(value))
            except ValueError:
                return None
            if wait != wait:          # NaN: no meaningful duration
                return None
            return max(0.0, min(MAX_WAIT_S, wait))
    return 0.0


def make_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    session: Session | None = None,
) -> ReproServer:
    """Create (but do not start) a :class:`ReproServer`.

    ``port=0`` binds an ephemeral free port — the chosen one is in
    ``server.server_address``.  Tests drive the returned server from a
    thread via ``serve_forever()``/``shutdown()``.
    """
    return ReproServer((host, port), session or Session())


def serve(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
          session: Session | None = None) -> int:
    """Run the service until SIGINT/SIGTERM (the ``repro serve`` body).

    Prints one ``listening on http://host:port`` line (flushed, so process
    supervisors and CI scripts can wait for readiness), then serves
    forever; both signals trigger a clean shutdown that drains in-flight
    HTTP handlers and closes the session.
    """
    server = make_server(host, port, session)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port}",
          flush=True)

    def _request_stop(signum, frame):
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except ValueError:            # non-main thread (tests)
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        server.session.close(wait=False)
    print("repro serve: shut down cleanly", flush=True)
    return 0
