"""The fleet worker: a ``python -m repro worker`` lease puller.

One worker process serves one broker (:mod:`repro.api.fleet`): it says
hello (wire-schema negotiation), long-polls ``/fleet/lease`` for cells,
simulates each cell and posts a :class:`~repro.api.schema.TaskResult`.
Everything result-shaped travels through the shared content-addressed
result store (:mod:`repro.store`) — the wire carries only the
``outcome_key`` — so the broker side reads outcomes exactly as a warm
cache hit and late/duplicate results cost nothing.  Each cell quotes its
store locator; ``--store http://host:port`` (with ``--store-token`` /
``$REPRO_STORE_TOKEN``) overrides it so cross-host workers need no
shared filesystem.

Failure-tolerance mechanics (what the chaos harness exercises):

* a **heartbeat thread** renews the worker's lease every
  ``heartbeat_every_s``; a SIGSTOPped or dead worker stops heartbeating,
  its lease expires, and the broker requeues the cell;
* each slice boundary parks a :class:`~repro.uarch.snapshot.PipelineSnapshot`
  at the cell's ``checkpoint_path`` (inside the shared cache directory),
  so the *next* owner of a requeued cell resumes mid-simulation with
  byte-identical results instead of restarting;
* when a heartbeat answer says ``abandon`` (the lease expired and was
  reassigned, or the job was cancelled) the worker stops at the next slice
  boundary, leaving the checkpoint for the new owner;
* cells of one workload share a functional trace via a small worker-local
  memo (the broker queues a grid's cells adjacently, so the memo behaves
  like the per-workload trace sharing of the in-process executors).

The worker is deliberately dependency-free (stdlib ``urllib``) and exits
with distinct codes: 0 on a clean drain/shutdown, 2 on registration
rejection (schema mismatch), 3 when the broker becomes unreachable.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.api.schema import (
    WIRE_SCHEMA_VERSION,
    SchemaError,
    TaskLease,
    TaskResult,
    WorkerHello,
)
from repro.core.config import RenoConfig
from repro.core.renamer import RenoRenamer
from repro.core.simulator import SimulationOutcome
from repro.functional.simulator import FunctionalSimulator
from repro.api.checkpoint import run_sliced
from repro.store.base import open_store
from repro.uarch.config import MachineConfig
from repro.uarch.core import Pipeline
from repro.uarch.snapshot import PipelineSnapshot, SnapshotError
from repro.workloads.base import get_workload

#: Consecutive transport failures after which the worker gives up on the
#: broker and exits (exit code 3).
MAX_TRANSPORT_FAILURES = 5

#: Functional-trace memo size (workload builds kept per worker).
TRACE_MEMO_SLOTS = 4


class _Abandoned(Exception):
    """Internal: the broker told this worker to stop working on a cell."""


class _BrokerUnreachable(Exception):
    """Internal: the broker did not answer within the retry budget."""


class FleetWorker:
    """One lease-pulling worker bound to a fleet broker URL.

    Args:
        server_url: Base URL of the fleet server (``http://host:port``).
        worker_id: Stable identity advertised in the hello (defaults to
            ``worker-<pid>``).
        poll_wait_s: Long-poll window per lease request.
        max_cells: Optional bound on cells to execute before exiting
            cleanly (tests and batch-style deployments).
        backend: Cycle-loop backend override for every cell this worker
            runs (see :mod:`repro.uarch.backend`).  None uses the backend
            the lease's cell payload asked for (which is what the
            submitting session requested); either way an unavailable
            backend degrades silently to ``python``, and results are
            identical regardless.
        store: Result-store locator override for every cell
            (``--store``).  None opens whatever locator each cell
            payload carries; a cross-host worker whose broker quoted a
            path on a filesystem it cannot see points this at the
            fleet's ``repro store-serve`` URL instead.
        store_token: Bearer token for HTTP store tiers (defaults to
            ``$REPRO_STORE_TOKEN``).
    """

    def __init__(
        self,
        server_url: str,
        worker_id: str | None = None,
        *,
        poll_wait_s: float = 5.0,
        max_cells: int | None = None,
        backend: str | None = None,
        store: str | None = None,
        store_token: str | None = None,
    ):
        """Create the worker (no network traffic until :meth:`run`)."""
        self.server_url = server_url.rstrip("/")
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.poll_wait_s = poll_wait_s
        self.max_cells = max_cells
        self.backend = backend
        self.store = store
        self.store_token = store_token
        self.heartbeat_every_s = 2.0
        self.cells_done = 0
        self._failures = 0
        self._traces: dict[tuple, object] = {}
        self._stores: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _post(self, path: str, payload: dict, timeout: float | None = None) -> dict:
        """POST JSON to the broker; raise :class:`_BrokerUnreachable` after
        :data:`MAX_TRANSPORT_FAILURES` consecutive connection failures."""
        body = json.dumps(payload).encode()
        request = urllib.request.Request(
            self.server_url + path, data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or (self.poll_wait_s + 30)) as response:
                self._failures = 0
                return json.loads(response.read())
        except urllib.error.HTTPError:
            self._failures = 0
            raise
        except (urllib.error.URLError, http.client.HTTPException,
                OSError, TimeoutError) as error:
            self._failures += 1
            if self._failures >= MAX_TRANSPORT_FAILURES:
                raise _BrokerUnreachable(
                    f"broker at {self.server_url} unreachable "
                    f"({self._failures} consecutive failures): {error}")
            time.sleep(min(0.2 * self._failures, 1.0))
            return {"_retry": True}

    def _hello(self) -> bool:
        """Register with the broker; False means rejected (schema mismatch)."""
        hello = WorkerHello(worker_id=self.worker_id, pid=os.getpid(),
                            host="localhost")
        try:
            answer = self._post("/fleet/hello", hello.to_dict())
        except urllib.error.HTTPError as error:
            detail = error.read().decode(errors="replace")
            print(f"worker {self.worker_id}: registration rejected "
                  f"({error.code}): {detail}", file=sys.stderr)
            return False
        if answer.get("_retry"):
            return self._hello()
        self.heartbeat_every_s = float(
            answer.get("heartbeat_every_s", self.heartbeat_every_s))
        return True

    # ------------------------------------------------------------------
    # The pull loop
    # ------------------------------------------------------------------

    def run(self) -> int:
        """Pull and execute leases until shutdown; return the exit code."""
        try:
            if not self._hello():
                return 2
            while True:
                if (self.max_cells is not None
                        and self.cells_done >= self.max_cells):
                    return 0
                try:
                    answer = self._post("/fleet/lease", {
                        "worker_id": self.worker_id,
                        "wait": self.poll_wait_s,
                    })
                except urllib.error.HTTPError as error:
                    if error.code == 409:
                        # Broker restarted (or never met us): re-register.
                        if not self._hello():
                            return 2
                        continue
                    raise
                if answer.get("_retry"):
                    continue
                if answer.get("shutdown"):
                    return 0
                lease_payload = answer.get("lease")
                if lease_payload is None:
                    continue
                lease = TaskLease.from_dict(lease_payload)
                self._execute_lease(lease)
        except _BrokerUnreachable as error:
            print(f"worker {self.worker_id}: {error}", file=sys.stderr)
            return 3
        except KeyboardInterrupt:
            return 0

    # ------------------------------------------------------------------
    # Cell execution
    # ------------------------------------------------------------------

    def _execute_lease(self, lease: TaskLease) -> None:
        """Run one leased cell and post its result (or failure)."""
        abandon = threading.Event()
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease, abandon, stop_heartbeat),
            name=f"heartbeat-{lease.lease_id}", daemon=True)
        heartbeat.start()
        try:
            result = self._run_cell(lease, abandon)
        except _Abandoned:
            # The broker reassigned the cell (or cancelled the job); the
            # checkpoint stays on disk for the next owner.  Nothing to post:
            # the lease is no longer ours.
            return
        except Exception as error:  # noqa: BLE001 - report, don't die
            result = TaskResult(
                lease_id=lease.lease_id, worker_id=self.worker_id, ok=False,
                error=f"{type(error).__name__}: {error}")
        finally:
            stop_heartbeat.set()
        try:
            self._post("/fleet/result", result.to_dict())
        except urllib.error.HTTPError:
            pass  # a refused result is by definition late; the retry owns it
        self.cells_done += 1

    def _heartbeat_loop(self, lease: TaskLease, abandon: threading.Event,
                        stop: threading.Event) -> None:
        """Renew one lease until told to stop; set ``abandon`` on directive."""
        interval = max(0.05, float(lease.heartbeat_every_s
                                   or self.heartbeat_every_s))
        while not stop.wait(interval):
            try:
                answer = self._post("/fleet/heartbeat", {
                    "worker_id": self.worker_id,
                    "leases": [lease.lease_id],
                }, timeout=10)
            except (urllib.error.HTTPError, _BrokerUnreachable):
                return
            if answer.get("_retry"):
                continue
            directives = answer.get("directives") or {}
            if directives.get(lease.lease_id) == "abandon":
                abandon.set()
                return

    def _trace_for(self, name: str, scale: int, max_instructions: int):
        """Build (or recall) a workload's program + functional run."""
        memo_key = (name, scale, max_instructions)
        hit = self._traces.get(memo_key)
        if hit is not None:
            return hit
        program = get_workload(name).build(scale)
        functional = FunctionalSimulator(program, max_instructions).run()
        if len(self._traces) >= TRACE_MEMO_SLOTS:
            self._traces.pop(next(iter(self._traces)))
        self._traces[memo_key] = (program, functional)
        return program, functional

    def _store_for(self, locator: str):
        """Open (and memoise) the result store a cell's outcomes go to.

        A ``--store`` override wins over the locator quoted in the cell
        payload — that is how a worker on another host replaces a broker
        path it cannot see with the fleet's ``repro store-serve`` URL.
        """
        locator = self.store or locator
        store = self._stores.get(locator)
        if store is None:
            store = open_store(locator, token=self.store_token)
            self._stores[locator] = store
        return store

    def _checkpoint_for(self, cell: dict) -> Path:
        """Where this cell parks its mid-simulation snapshot.

        Cells carry a path inside the shared cache directory when the
        fleet runs on one filesystem.  Shared-tier runs (sqlite/HTTP
        store) quote no path, so the worker parks snapshots in a private
        temp directory — resume then only helps when *this* worker
        reclaims the cell, which is a pure optimisation; restarting is
        always correct.
        """
        quoted = cell.get("checkpoint_path") or ""
        if quoted:
            return Path(quoted)
        local_dir = Path(tempfile.gettempdir()) / f"repro-ckpt-{self.worker_id}"
        local_dir.mkdir(parents=True, exist_ok=True)
        return local_dir / f"{cell['outcome_key']}.ckpt"

    def _run_cell(self, lease: TaskLease, abandon: threading.Event) -> TaskResult:
        """Simulate one cell; outcomes go to the shared store, not the wire."""
        cell = lease.cell
        cache = self._store_for(cell["cache_root"])
        key = cell["outcome_key"]
        if cache.get(key) is not None:
            # Someone (an earlier attempt, a sibling worker) already stored
            # this outcome; committing the hit is all that is left to do.
            return TaskResult(lease_id=lease.lease_id,
                              worker_id=self.worker_id, ok=True,
                              outcome_key=key, cached=True)

        program, functional = self._trace_for(
            cell["workload"], int(cell["scale"]), int(cell["max_instructions"]))
        machine = MachineConfig.from_dict(cell["machine"])
        reno = (RenoConfig.from_dict(cell["reno"])
                if cell.get("reno") is not None else None)
        renamer = (RenoRenamer(machine.num_physical_regs, reno)
                   if reno is not None else None)
        pipeline = Pipeline(
            program, functional.trace, machine, renamer=renamer,
            collect_timing=bool(cell["collect_timing"]),
            record_stats=bool(cell.get("record_stats", False)),
            backend=self.backend or cell.get("backend"),
        )

        checkpoint = self._checkpoint_for(cell)
        if checkpoint.exists():
            # A previous owner of this cell died mid-simulation; resume its
            # parked state.  Junk or mismatched checkpoints are discarded —
            # restarting is always correct, resuming is just faster.
            try:
                pipeline.restore(PipelineSnapshot.load(checkpoint))
            except (SnapshotError, OSError, ValueError):
                checkpoint.unlink(missing_ok=True)

        def on_slice(pipeline, partial):
            """Abort at the next slice boundary once told to abandon."""
            if abandon.is_set():
                raise _Abandoned(lease.lease_id)

        timing = run_sliced(
            pipeline, int(cell.get("slice_cycles") or 50_000),
            checkpoint_path=checkpoint, on_slice=on_slice)

        expected = list(functional.state.snapshot())
        if timing.final_registers != expected:
            return TaskResult(
                lease_id=lease.lease_id, worker_id=self.worker_id, ok=False,
                error=(f"architectural state diverged for {program.name} "
                       f"(reno={'on' if reno else 'off'})"))

        outcome = SimulationOutcome(program=program, functional=functional,
                                    timing=timing, reno_config=reno)
        cache.put(key, outcome)
        return TaskResult(lease_id=lease.lease_id, worker_id=self.worker_id,
                          ok=True, outcome_key=key, cached=False)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro worker``."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Pull and execute fleet cell leases from a repro broker.")
    parser.add_argument("--server", required=True,
                        help="fleet server base URL (http://host:port)")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker identity (default: worker-<pid>)")
    parser.add_argument("--poll-wait", type=float, default=5.0,
                        help="long-poll window per lease request (seconds)")
    parser.add_argument("--max-cells", type=int, default=None,
                        help="exit cleanly after this many cells")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="cycle-loop backend for every cell (python|"
                             "compiled; default: what each lease asks for)")
    parser.add_argument("--store", default=None, metavar="LOCATOR",
                        help="result-store override for every cell (path, "
                             "sqlite://PATH or http://host:port of a repro "
                             "store-serve; default: what each cell quotes)")
    parser.add_argument("--store-token", default=None, metavar="TOKEN",
                        help="bearer token for an HTTP store "
                             "(default: $REPRO_STORE_TOKEN)")
    options = parser.parse_args(argv)
    worker = FleetWorker(options.server, options.worker_id,
                         poll_wait_s=options.poll_wait,
                         max_cells=options.max_cells,
                         backend=options.backend,
                         store=options.store,
                         store_token=options.store_token)
    return worker.run()


if __name__ == "__main__":  # pragma: no cover - module execution guard
    raise SystemExit(main())
