"""The ``Session``/``Job`` facade: the supported programmatic API surface.

A :class:`Session` owns the three pieces of engine state every caller used
to wire up by hand — an execution backend, an outcome cache, and the
cross-run cost model — and exposes one submission surface in front of the
experiment registry:

* :meth:`Session.submit` returns a :class:`Job` immediately; the experiment
  runs on a background worker with per-cell progress streaming
  (:meth:`Job.status`) and cooperative cancellation (:meth:`Job.cancel`).
* :meth:`Session.run` is the synchronous form: same plumbing, same
  deterministic results, executed in the calling thread.
* Identical concurrent submissions are **coalesced**: requests are
  content-addressed (:meth:`~repro.api.schema.ExperimentRequest.digest`),
  an in-flight digest match returns the existing job, and *completed*
  repeats recompute through the content-addressed outcome cache — so an
  experiment grid executes once no matter how many clients ask for it.

The legacy entry points (``run_experiment``, the ``figure*`` wrappers, the
``python -m repro run`` CLI) are thin clients of this facade; ``python -m
repro serve`` (:mod:`repro.api.service`) maps it onto HTTP.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api.schema import ExperimentRequest, JobState, JobStatus
from repro.harness.cache import SimulationCache, resolve_cache
from repro.harness.executors import (
    CostModel,
    ExecutionCancelled,
    Executor,
    resolve_executor,
)
from repro.harness.spec import Experiment, get_experiment

#: How long a session's cross-session request claim stays live without
#: renewal.  A holder that crashes without releasing blocks identical
#: requests elsewhere only until this expires; a takeover after expiry
#: merely recomputes — conditional puts keep the store consistent.
REQUEST_CLAIM_TTL_S = 60.0

#: Poll interval while waiting on another session's identical request.
REQUEST_CLAIM_POLL_S = 0.05

#: Sentinel distinguishing "cache not resolved yet" from a resolved None.
_UNRESOLVED = object()


class JobCancelled(RuntimeError):
    """Raised by :meth:`Job.result` when the job was cancelled."""


class JobFailed(RuntimeError):
    """Raised by :meth:`Job.result` when the job's experiment raised.

    The original exception is chained as ``__cause__``.
    """


class Job:
    """A submitted experiment: status, progress, result, cancellation.

    Jobs are created by :meth:`Session.submit`; the session runs them on a
    worker thread and streams per-cell completion into the job's counters.
    All methods are thread-safe.
    """

    #: Mutable state shared between the session's worker thread and any
    #: number of status-polling clients; only touch under ``self._lock``
    #: (enforced by the ``lock-discipline`` lint rule).
    _GUARDED_BY_LOCK = (
        "_state",
        "_report",
        "_report_dict",
        "_error",
        "_cells_done",
        "_cells_cached",
        "_cell_occupancy",
        "_progress_watchers",
        "_submissions",
        "_finished_at",
    )

    def __init__(self, job_id: str, request: ExperimentRequest,
                 cells_total: int | None, clock=time.monotonic):
        """Create a pending job (called by the session only)."""
        self.job_id = job_id
        self.request = request
        self.cells_total = cells_total
        self._clock = clock
        self._submissions = 1
        self._lock = threading.Lock()
        self._state = JobState.PENDING
        self._cancel_event = threading.Event()
        self._done_event = threading.Event()
        self._report = None
        self._report_dict: dict | None = None
        self._error: BaseException | None = None
        self._cells_done = 0
        self._cells_cached = 0
        self._cell_occupancy: dict[str, dict] = {}
        self._progress_watchers: list = []
        self._finished_at: float | None = None

    # ------------------------------------------------------------------
    # Engine-facing hooks (driven by the session's worker thread)
    # ------------------------------------------------------------------

    def _on_cell(self, grid_key, cached: bool, outcome=None) -> None:
        """Per-cell progress callback threaded into the executors.

        The third argument is the cell's
        :class:`~repro.core.simulator.SimulationOutcome` (the executors
        pass it to outcome-aware callbacks); when it carries occupancy
        statistics, their summary is folded into the live per-cell view
        that :meth:`status` reports.
        """
        occupancy = (outcome.stats.occupancy
                     if outcome is not None and outcome.stats.occupancy is not None
                     else None)
        with self._lock:
            self._cells_done += 1
            if cached:
                self._cells_cached += 1
            if occupancy is not None:
                label = ("/".join(str(part) for part in grid_key)
                         if isinstance(grid_key, tuple) else str(grid_key))
                self._cell_occupancy[label] = occupancy.summary()
            watchers = list(self._progress_watchers)
        for watcher in watchers:
            # Watchers are isolated: one client's broken callback must not
            # abort the grid and fail the job for every coalesced
            # subscriber.
            try:
                watcher(self, grid_key, cached)
            except Exception:         # noqa: BLE001 - observer boundary
                pass

    def _note_coalesced(self) -> None:
        """Count one more submit() coalesced onto this job."""
        with self._lock:
            self._submissions += 1

    def _mark_running(self) -> None:
        with self._lock:
            if self._state == JobState.PENDING:
                self._state = JobState.RUNNING

    def _finish(self, report) -> None:
        # Serialise once, outside the lock: the report is immutable from
        # here on and status() may be polled by many watchers.
        report_dict = report.to_dict()
        with self._lock:
            self._report = report
            self._report_dict = report_dict
            self._state = JobState.SUCCEEDED
            self._finished_at = self._clock()
        self._done_event.set()

    def _finish_cancelled(self) -> None:
        with self._lock:
            self._state = JobState.CANCELLED
            self._finished_at = self._clock()
        self._done_event.set()

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            self._error = error
            self._state = JobState.FAILED
            self._finished_at = self._clock()
        self._done_event.set()

    # ------------------------------------------------------------------
    # Client-facing surface
    # ------------------------------------------------------------------

    def add_progress_watcher(self, watcher) -> None:
        """Register ``watcher(job, grid_key, cached)``, fired per cell."""
        with self._lock:
            self._progress_watchers.append(watcher)

    @property
    def state(self) -> str:
        """Current :class:`~repro.api.schema.JobState` constant."""
        with self._lock:
            return self._state

    @property
    def submissions(self) -> int:
        """How many submit() calls this job satisfied (> 1 ⇒ later
        identical requests were coalesced onto it)."""
        with self._lock:
            return self._submissions

    @property
    def finished_at(self) -> float | None:
        """Monotonic timestamp of the transition into a terminal state
        (None while pending/running); drives the session's TTL eviction."""
        with self._lock:
            return self._finished_at

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._done_event.is_set()

    def cancelled(self) -> bool:
        """Whether the job ended (or will end) cancelled."""
        return self._cancel_event.is_set() or self.state == JobState.CANCELLED

    def status(self) -> JobStatus:
        """A consistent point-in-time :class:`~repro.api.schema.JobStatus`."""
        with self._lock:
            return JobStatus(
                job_id=self.job_id,
                state=self._state,
                experiment=self.request.experiment,
                request=self.request.to_dict(),
                cells_done=self._cells_done,
                cells_total=self.cells_total,
                cells_cached=self._cells_cached,
                error=(f"{type(self._error).__name__}: {self._error}"
                       if self._error is not None else None),
                report=self._report_dict,
                occupancy=(dict(self._cell_occupancy)
                           if self._cell_occupancy else None),
            )

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; returns False on timeout."""
        return self._done_event.wait(timeout)

    def result(self, timeout: float | None = None):
        """The finished :class:`~repro.harness.experiments.ExperimentReport`.

        Blocks until the job is terminal.  Raises :class:`TimeoutError` if
        ``timeout`` elapses first, :class:`JobCancelled` for a cancelled
        job, and :class:`JobFailed` (chaining the original exception) for a
        failed one.
        """
        if not self._done_event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} still {self.state} after {timeout}s")
        with self._lock:
            if self._state == JobState.CANCELLED:
                raise JobCancelled(f"job {self.job_id} was cancelled")
            if self._state == JobState.FAILED:
                raise JobFailed(
                    f"job {self.job_id} failed: {self._error}") from self._error
            return self._report

    def cancel(self) -> bool:
        """Request cooperative cancellation.

        Returns True when the request may still take effect (the job was
        not already terminal).  A running grid stops at the next cell
        boundary; cells already computed stay in the outcome cache.
        """
        if self._done_event.is_set():
            return False
        self._cancel_event.set()
        return True


class Session:
    """The stable facade over the experiment engine (see module docstring).

    Args:
        jobs: Default execution backend selector for this session's runs —
            an int, ``"auto"``, or None (read ``$REPRO_JOBS``; unset means
            auto), exactly as :func:`repro.harness.runner.run_matrix` takes.
        cache: Default result store, in any form
            :func:`repro.harness.cache.resolve_cache` accepts — a store
            instance, a locator (path, ``sqlite://<path>``,
            ``http://host:port``), or a bool.  The session resolves it
            lazily per run, so ``None`` keeps tracking the
            ``$REPRO_STORE`` / ``$REPRO_CACHE_DIR`` environment like the
            library defaults do.  A claim-capable store also coalesces
            identical requests *across* sessions and hosts (see
            :meth:`Session._claim_request`).
        executor: Explicit default :class:`~repro.harness.executors.Executor`
            (overrides ``jobs``).
        backend: Default cycle-loop backend name for this session's runs
            (``"python"``, ``"compiled"``; see :mod:`repro.uarch.backend`),
            or None to defer to ``$REPRO_BACKEND``/``python`` per
            simulation.  Results are backend-independent, so this is pure
            provenance + speed — it never changes request digests,
            coalescing, or outcome-cache keys.
        workers: Worker threads for asynchronously submitted jobs.  Grids
            are CPU-bound, so a small number only orders queued jobs; the
            process-pool executors below provide the real parallelism.
        max_retained_jobs: How many jobs the session keeps queryable by id.
            When a new submission would exceed the cap, the *oldest
            terminal* jobs are evicted (in-flight jobs are never evicted,
            and may temporarily push the table past the cap).  Long-lived
            sessions — ``repro serve`` in particular — would otherwise
            grow the job table without bound.
        job_ttl_s: How long a terminal job stays queryable after it
            finishes; expired jobs are swept on each submission *and* on
            the status paths (:meth:`job` / :meth:`jobs`), so an
            idle-but-polled session still evicts.  None disables the TTL
            (the cap still applies).
        clock: Monotonic time source for job timestamps and TTL sweeps
            (tests inject a fake to exercise eviction without sleeping).
    """

    #: Submission-path state shared with worker threads; only touch under
    #: ``self._lock`` (enforced by the ``lock-discipline`` lint rule).
    _GUARDED_BY_LOCK = (
        "_pool",
        "_jobs_by_id",
        "_inflight",
        "_next_job_number",
        "_closed",
    )

    def __init__(
        self,
        *,
        jobs: int | str | None = None,
        cache: SimulationCache | bool | str | None = None,
        executor: Executor | None = None,
        backend: str | None = None,
        workers: int = 2,
        max_retained_jobs: int = 256,
        job_ttl_s: float | None = 3600.0,
        clock=time.monotonic,
    ):
        if max_retained_jobs < 1:
            raise ValueError(
                f"max_retained_jobs must be >= 1, got {max_retained_jobs}")
        if job_ttl_s is not None and job_ttl_s <= 0:
            raise ValueError(f"job_ttl_s must be positive or None, got {job_ttl_s}")
        self._jobs_arg = jobs
        self._cache_arg = cache
        self._cache_resolved: SimulationCache | None | object = _UNRESOLVED
        self._executor_arg = executor
        self._backend_arg = backend
        self._workers = max(1, workers)
        self._max_retained_jobs = max_retained_jobs
        self._job_ttl_s = job_ttl_s
        self._clock = clock
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._jobs_by_id: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._next_job_number = 1
        self._closed = False

    # ------------------------------------------------------------------
    # Owned engine state
    # ------------------------------------------------------------------

    @property
    def cache(self) -> SimulationCache | None:
        """The session's result store (resolved from the constructor arg).

        Any :class:`repro.store.base.ResultStore` tier, not just the
        disk one — locators like ``sqlite://…`` and ``http://…`` open
        the shared tiers.  The resolution is memoized: a locator opens
        exactly one store instance per session, so its hit/store
        counters (``/store/stats`` on a serving session) accumulate
        instead of resetting on every access.
        """
        if self._cache_resolved is _UNRESOLVED:
            with self._lock:
                if self._cache_resolved is _UNRESOLVED:
                    self._cache_resolved = resolve_cache(self._cache_arg)
        return self._cache_resolved

    @property
    def executor(self) -> Executor:
        """The session's execution backend (resolved per access)."""
        return resolve_executor(self._jobs_arg, self._executor_arg)

    @property
    def cost_model(self) -> CostModel | None:
        """The cross-run cost model in the cache's store (None without one)."""
        cache = self.cache
        return CostModel(cache) if cache is not None else None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: ExperimentRequest | dict,
               on_progress=None) -> Job:
        """Queue an experiment run and return its :class:`Job` immediately.

        Args:
            request: An :class:`~repro.api.schema.ExperimentRequest` (or its
                dict form).  The experiment name is validated against the
                registry before the job is created.
            on_progress: Optional ``watcher(job, grid_key, cached)`` fired
                per completed cell.

        Returns:
            The job — possibly a *pre-existing* one: an identical request
            already in flight is coalesced onto the running job
            (``job.submissions`` counts the merged submissions) instead of
            executing the grid twice.

        Raises:
            repro.api.fleet.FleetSaturated: When the session's executor has
                an ``admit`` hook (the fleet's backpressure check) and the
                request's estimated cells would overflow its queue;
                coalesced submissions are never refused (they add no
                cells).  ``repro serve`` maps this onto a structured 429.
        """
        request = self._coerce(request)
        entry = get_experiment(request.experiment)   # raises on unknown names
        digest = request.digest()
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            existing = self._inflight.get(digest)
            if existing is not None and not existing.done():
                existing._note_coalesced()
                if on_progress is not None:
                    existing.add_progress_watcher(on_progress)
                return existing
            cells = self._estimate_cells(entry, request)
            admit = getattr(self.executor, "admit", None)
            if admit is not None:
                admit(cells)             # may raise FleetSaturated
            job_id = f"job-{self._next_job_number:04d}"
            self._next_job_number += 1
            job = Job(job_id, request, cells, clock=self._clock)
            self._sweep_jobs_locked(incoming=1)
            self._jobs_by_id[job_id] = job
            self._inflight[digest] = job
            pool = self._ensure_pool_locked()
        if on_progress is not None:
            job.add_progress_watcher(on_progress)
        pool.submit(self._run_job, job, digest)
        return job

    def run(self, request: ExperimentRequest | dict):
        """Run a request synchronously in the calling thread.

        Same validation, defaults, cache and determinism as
        :meth:`submit`; returns the finished report directly.  If an
        identical request is already in flight on a worker, its result is
        reused instead of recomputing — but another client cancelling (or
        crashing) that job never poisons this caller: on a cancelled or
        failed coalesced job the request simply executes here.
        """
        request = self._coerce(request)
        digest = request.digest()
        with self._lock:
            existing = self._inflight.get(digest)
        if existing is not None:
            try:
                return existing.result()
            except (JobCancelled, JobFailed):
                pass                  # fall through to a direct run
        return self._execute(request)

    def job(self, job_id: str) -> Job | None:
        """Look up a job by id (None when unknown).

        Status lookups also run the TTL sweep, so an idle-but-polled
        session (a dashboard refreshing ``GET /jobs/<id>``) still evicts
        expired terminal jobs instead of retaining them until the next
        submission.  The job being asked for is itself evictable: an
        expired id answers None exactly as it would after a submit-time
        sweep.
        """
        with self._lock:
            self._sweep_jobs_locked()
            return self._jobs_by_id.get(job_id)

    def jobs(self) -> list[Job]:
        """Every retained job, in submission order (TTL sweep applied)."""
        with self._lock:
            self._sweep_jobs_locked()
            return list(self._jobs_by_id.values())

    # ------------------------------------------------------------------
    # Thin-client passthrough (run_experiment / figure* / CLI)
    # ------------------------------------------------------------------

    def run_experiment(
        self,
        name: str,
        *,
        suite: str | None = None,
        workloads: list | None = None,
        scale: int = 1,
        jobs: int | str | None = None,
        cache: SimulationCache | bool | str | None = None,
        executor: Executor | None = None,
        backend: str | None = None,
        progress=None,
        cancel=None,
        **params,
    ):
        """Run a registered experiment with the session's defaults applied.

        This is the compatibility surface behind
        :func:`repro.harness.spec.run_experiment` and the ``figure*``
        wrappers: every argument keeps its historical meaning, the session
        only supplies its own ``jobs``/``cache``/``executor`` defaults when
        the caller left them unset.  Unlike :meth:`run` it accepts ad-hoc
        :class:`~repro.workloads.base.Workload` *objects* and arbitrary
        Python params, which cannot cross the wire.
        """
        if jobs is None and executor is None:
            jobs, executor = self._jobs_arg, self._executor_arg
        if cache is None:
            # Forward the memoized store *instance*, not the constructor
            # arg: a locator would re-open a fresh store (new connection,
            # zeroed counters) on every run.  False (caching explicitly
            # off) resolves to None and must stay False downstream.
            cache = self.cache
            if cache is None:
                cache = self._cache_arg
        if backend is None:
            backend = self._backend_arg
        return get_experiment(name).run(
            suite=suite, workloads=workloads, scale=scale, jobs=jobs,
            cache=cache, executor=executor, progress=progress, cancel=cancel,
            backend=backend, **params,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Cancel nothing, stop accepting work, and join the worker pool.

        An explicitly supplied executor with a ``close`` method (the fleet)
        is closed too: the session was its lifecycle owner, and leaving a
        broker thread plus worker subprocesses behind would leak.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
        shutdown = getattr(self._executor_arg, "close", None)
        if shutdown is not None:
            shutdown()

    def __enter__(self) -> "Session":
        """Context-manager entry (returns the session)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close` the session."""
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(request) -> ExperimentRequest:
        if isinstance(request, dict):
            return ExperimentRequest.from_dict(request)
        if isinstance(request, ExperimentRequest):
            request.validate()
            return request
        raise TypeError(
            f"submit() takes an ExperimentRequest or its dict form, "
            f"got {type(request).__name__}")

    @staticmethod
    def _estimate_cells(entry: Experiment, request: ExperimentRequest) -> int | None:
        """Grid size for progress totals (None for custom-runner shapes)."""
        if entry.build_spec is None:
            return None
        try:
            spec = entry.build_spec(
                request.suite or entry.default_suite,
                list(request.workloads) if request.workloads is not None else None,
                request.scale,
                **request.params,
            )
            return spec.grid_size
        except Exception:
            return None               # progress simply reports no total

    def _sweep_jobs_locked(self, incoming: int = 0) -> None:
        """Drop expired/excess *terminal* jobs (caller holds the lock).

        Two passes over the table in insertion (= submission) order: first
        every terminal job older than the TTL, then — if the table would
        still exceed ``max_retained_jobs`` with ``incoming`` new jobs
        counted — the oldest terminal jobs until it fits.  Jobs still
        pending or running are never evicted, so coalescing onto in-flight
        work is unaffected regardless of the cap.  Runs on submission
        (``incoming=1``) and on the status paths (``incoming=0``).
        """
        if self._job_ttl_s is not None:
            deadline = self._clock() - self._job_ttl_s
            for job_id, job in list(self._jobs_by_id.items()):
                if (job.done() and job.finished_at is not None
                        and job.finished_at < deadline):
                    del self._jobs_by_id[job_id]
        excess = len(self._jobs_by_id) + incoming - self._max_retained_jobs
        if excess <= 0:
            return
        for job_id, job in list(self._jobs_by_id.items()):
            if excess <= 0:
                break
            if job.done():
                del self._jobs_by_id[job_id]
                excess -= 1

    def _ensure_pool_locked(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-session")
        return self._pool

    @property
    def _claim_owner(self) -> str:
        """This session's store-wide identity for request claims."""
        return f"session-{os.getpid()}-{id(self):x}"

    def _claim_request(self, store, token: str, cancel) -> bool:
        """Acquire the cross-session coalescing marker for one request.

        In-process coalescing (the ``_inflight`` table) cannot see an
        identical request running in *another* session or host, so the
        store carries an in-flight marker too: whoever claims
        ``request/<digest>`` runs; everyone else waits, then finds the
        outcomes already stored and replays them as pure cache hits.

        Returns whether a claim was taken (and must be released).  A
        session without a claim-capable store — or whose store errors —
        runs uncoalesced: the marker is an optimisation, never a
        correctness gate.
        """
        if store is None or not hasattr(store, "claim"):
            return False
        owner = self._claim_owner
        while True:
            try:
                granted = store.claim(token, owner, REQUEST_CLAIM_TTL_S)
            except Exception:     # noqa: BLE001 - degrade to uncoalesced
                return False
            if granted:
                return True
            if cancel is not None and cancel():
                raise ExecutionCancelled(
                    "cancelled while waiting on an identical in-flight "
                    "request in another session")
            time.sleep(REQUEST_CLAIM_POLL_S)

    def _execute(self, request: ExperimentRequest,
                 progress=None, cancel=None):
        """Run one coerced request through the engine with session defaults."""
        store = self.cache
        token = f"request/{request.digest()}"
        claimed = self._claim_request(store, token, cancel)
        try:
            return self.run_experiment(
                request.experiment,
                suite=request.suite,
                workloads=list(request.workloads) if request.workloads is not None else None,
                scale=request.scale,
                progress=progress,
                cancel=cancel,
                **request.params,
            )
        finally:
            if claimed:
                try:
                    store.release(token, self._claim_owner)
                except Exception:   # noqa: BLE001 - advisory marker only
                    pass

    def _run_job(self, job: Job, digest: str) -> None:
        """Worker-thread body for one submitted job."""
        try:
            if job._cancel_event.is_set():
                job._finish_cancelled()
                return
            job._mark_running()
            try:
                report = self._execute(
                    job.request,
                    progress=job._on_cell,
                    cancel=job._cancel_event.is_set,
                )
            except ExecutionCancelled:
                job._finish_cancelled()
            except BaseException as error:      # noqa: BLE001 - job boundary
                job._fail(error)
            else:
                job._finish(report)
        finally:
            with self._lock:
                if self._inflight.get(digest) is job:
                    del self._inflight[digest]


# ---------------------------------------------------------------------------
# The process-default session
# ---------------------------------------------------------------------------

_default_session: Session | None = None
_default_session_lock = threading.Lock()


def default_session() -> Session:
    """The lazily created process-wide session the thin clients use.

    Constructed with all-default arguments, so ``run_experiment`` and the
    ``figure*`` wrappers behave exactly as they did before the facade
    existed: backend from ``jobs=``/``$REPRO_JOBS``, cache from
    ``$REPRO_CACHE_DIR``.
    """
    global _default_session
    with _default_session_lock:
        if _default_session is None or _default_session._closed:
            _default_session = Session()
        return _default_session
