"""``repro.api`` — the stable public API of the reproduction.

This package is the supported integration surface; everything else is
library internals that may change between versions.  It has four pieces:

* :class:`~repro.api.session.Session` / :class:`~repro.api.session.Job` —
  the submission facade: ``submit(request) -> Job`` with progress
  streaming, cancellation, and content-addressed request coalescing
  (:mod:`repro.api.session`).
* The versioned wire schema — :class:`~repro.api.schema.ExperimentRequest`,
  :class:`~repro.api.schema.JobStatus`, :class:`~repro.api.schema.JobState`
  (:mod:`repro.api.schema`).
* The HTTP front-end behind ``python -m repro serve``
  (:mod:`repro.api.service`).
* Incremental simulation — time-sliced, checkpointable pipeline runs
  (:mod:`repro.api.checkpoint`, re-exporting
  :class:`~repro.uarch.snapshot.PipelineSnapshot`).
* The distributed worker fleet — a lease broker plus ``python -m repro
  worker`` pullers executing experiment grids across processes with
  byte-identical results (:mod:`repro.api.fleet`, :mod:`repro.api.worker`;
  wire messages :class:`~repro.api.schema.WorkerHello`,
  :class:`~repro.api.schema.TaskLease`,
  :class:`~repro.api.schema.TaskResult`).
* The shared result store — every ``cache=`` argument accepts a
  :class:`~repro.store.base.ResultStore` instance or a locator string
  (path, ``sqlite://…``, ``http(s)://…``); the tiers and
  :func:`~repro.store.base.open_store` are re-exported from
  :mod:`repro.store`.

Quick start::

    from repro.api import ExperimentRequest, Session

    with Session(jobs="auto") as session:
        job = session.submit(ExperimentRequest("fig8", suite="micro"))
        report = job.result()
"""

from repro.api.checkpoint import resume_sliced, run_sliced
from repro.api.fleet import (
    FleetBroker,
    FleetError,
    FleetExecutor,
    FleetSaturated,
    FleetServer,
    FleetStalled,
    FleetTaskError,
    WorkerRejected,
    make_fleet_server,
    shared_fleet,
)
from repro.api.schema import (
    WIRE_SCHEMA_VERSION,
    ExperimentRequest,
    JobState,
    JobStatus,
    SchemaError,
    TaskLease,
    TaskResult,
    WorkerHello,
)
from repro.api.service import make_server, serve
from repro.api.worker import FleetWorker
from repro.store import (
    DiskStore,
    HTTPStore,
    ResultStore,
    SqliteStore,
    open_store,
    store_locator,
)
from repro.api.session import (
    Job,
    JobCancelled,
    JobFailed,
    Session,
    default_session,
)
from repro.uarch.snapshot import PipelineSnapshot, SnapshotError

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "ExperimentRequest",
    "JobState",
    "JobStatus",
    "SchemaError",
    "Session",
    "Job",
    "JobCancelled",
    "JobFailed",
    "default_session",
    "serve",
    "make_server",
    "run_sliced",
    "resume_sliced",
    "PipelineSnapshot",
    "SnapshotError",
    "WorkerHello",
    "TaskLease",
    "TaskResult",
    "FleetBroker",
    "FleetServer",
    "FleetExecutor",
    "FleetWorker",
    "FleetError",
    "FleetSaturated",
    "FleetStalled",
    "FleetTaskError",
    "WorkerRejected",
    "make_fleet_server",
    "shared_fleet",
    "ResultStore",
    "DiskStore",
    "SqliteStore",
    "HTTPStore",
    "open_store",
    "store_locator",
]
