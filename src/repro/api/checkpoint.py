"""Time-sliced simulation: run a pipeline in bounded slices with checkpoints.

This is the service-side consumer of the incremental simulation API
(:meth:`repro.uarch.core.Pipeline.run` with ``max_cycles=``,
:meth:`~repro.uarch.core.Pipeline.snapshot` /
:meth:`~repro.uarch.core.Pipeline.restore`): a long simulation advances a
bounded number of cycles at a time — yielding the thread between slices and
optionally parking a :class:`~repro.uarch.snapshot.PipelineSnapshot` on
disk — and can be resumed later, in the same process or a new one, with
results byte-identical to an uninterrupted run.

Typical shapes::

    # Bound each scheduling quantum, checkpointing every slice.
    result = run_sliced(pipeline, slice_cycles=50_000,
                        checkpoint_path="run.ckpt")

    # Crash recovery: rebuild the pipeline from the same inputs, resume.
    pipeline = Pipeline(program, trace, config, renamer=renamer)
    result = resume_sliced(pipeline, "run.ckpt", slice_cycles=50_000)
"""

from __future__ import annotations

from pathlib import Path

from repro.uarch.core import Pipeline, SimResult
from repro.uarch.snapshot import PipelineSnapshot


def run_sliced(
    pipeline: Pipeline,
    slice_cycles: int,
    checkpoint_path: str | Path | None = None,
    on_slice=None,
    max_slices: int | None = None,
) -> SimResult:
    """Run ``pipeline`` to completion in ``slice_cycles``-cycle slices.

    Args:
        pipeline: The pipeline to drive (fresh or previously restored).
        slice_cycles: Cycle budget per slice (>= 1).
        checkpoint_path: When given, a snapshot is saved there (atomically)
            after every unfinished slice and the file is removed on
            completion.
        on_slice: Optional callback ``on_slice(pipeline, partial_result)``
            after every slice — the progress/cancellation hook (raise to
            abort; the last checkpoint stays on disk).
        max_slices: Optional bound on slices to run in this call; when the
            budget ends early the (unfinished) partial result is returned.

    Returns:
        The final :class:`~repro.uarch.core.SimResult` — byte-identical to
        ``pipeline.run()`` in one piece — or a partial result when
        ``max_slices`` expired first (``result.finished`` is False then).
    """
    if slice_cycles < 1:
        raise ValueError(f"slice_cycles must be >= 1, got {slice_cycles}")
    slices = 0
    while True:
        result = pipeline.run(max_cycles=slice_cycles)
        slices += 1
        if not result.finished and checkpoint_path is not None:
            pipeline.snapshot().save(checkpoint_path)
        if on_slice is not None:
            on_slice(pipeline, result)
        if result.finished:
            if checkpoint_path is not None:
                Path(checkpoint_path).unlink(missing_ok=True)
            return result
        if max_slices is not None and slices >= max_slices:
            return result


def resume_sliced(
    pipeline: Pipeline,
    checkpoint_path: str | Path,
    slice_cycles: int,
    **kwargs,
) -> SimResult:
    """Restore ``pipeline`` from a disk checkpoint and continue slicing.

    ``pipeline`` must be constructed from the same (program, trace, config,
    collect_timing) inputs that produced the checkpoint
    (:meth:`PipelineSnapshot.validate_for` enforces this).  Remaining
    keyword arguments are forwarded to :func:`run_sliced`.
    """
    snapshot = PipelineSnapshot.load(checkpoint_path)
    pipeline.restore(snapshot)
    return run_sliced(pipeline, slice_cycles,
                      checkpoint_path=checkpoint_path, **kwargs)
