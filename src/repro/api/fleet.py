"""The distributed worker fleet: broker, fleet HTTP server, FleetExecutor.

``repro serve`` historically ran every grid cell in threads of one process.
This module is the path from one process to a fleet: a lease-based broker
shards :class:`~repro.harness.executors.WorkloadTask` grids into *cells*
(one (workload, machine, RENO) point each) and hands them to ``python -m
repro worker`` pullers over the versioned HTTP wire schema
(:mod:`repro.api.schema`).  Three layers, separable for testing:

* :class:`FleetBroker` — the pure state machine: a fair-share task queue
  (round-robin across concurrent submissions), expiring leases with
  heartbeat renewal, bounded retry of expired/failed leases, backpressure
  (queue-depth cap), and exactly-once commit per cell.
* :class:`FleetServer` — a dependency-free ``http.server`` front-end
  mapping the broker onto ``/fleet/hello``, ``/fleet/lease``,
  ``/fleet/result``, ``/fleet/heartbeat`` and ``/fleet/stats``.
* :class:`FleetExecutor` — an :class:`~repro.harness.executors.Executor`
  implementation: it boots (or attaches to) a broker, keeps a target
  number of worker subprocesses alive, enqueues cell leases, and
  assembles the deterministic grid-ordered blocks every consumer of
  :func:`~repro.harness.executors.execute_grid` expects.

Determinism contract: results are **byte-identical** to
:class:`~repro.harness.executors.SerialExecutor` no matter how workers
die, stall or duplicate work.  Three mechanisms make that hold:

* every cell is a pure function of its content-addressed inputs, so a
  retried cell recomputes the identical outcome;
* outcomes travel through the shared content-addressed outcome cache
  (never the wire), so a late result from an expired lease is *dropped*
  by the broker without losing the work — the retry becomes a cache hit;
* long cells checkpoint via :class:`~repro.uarch.snapshot.PipelineSnapshot`
  (see :mod:`repro.api.worker`), so a dying worker's partial simulation
  resumes elsewhere with byte-identical final state.

The chaos harness in ``tests/fleet/harness.py`` SIGKILLs, SIGSTOPs and
version-desyncs workers mid-grid and asserts exactly this contract.
"""

from __future__ import annotations

import atexit
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.api.schema import (
    WIRE_SCHEMA_VERSION,
    SchemaError,
    TaskLease,
    TaskResult,
    WorkerHello,
)
from repro.harness.cache import (
    SimulationCache,
    outcome_key,
    program_digest,
)
from repro.harness.executors import (
    FLEET_ENV,
    Block,
    ExecutionCancelled,
    SerialExecutor,
    WorkloadTask,
    _delegate,
    _progress_emitter,
)
from repro.store.base import open_store, store_locator

#: Default seconds a lease stays valid without a heartbeat.
DEFAULT_LEASE_TTL_S = 10.0

#: Default bound on execution attempts per cell (grants, not heartbeats).
DEFAULT_MAX_ATTEMPTS = 3

#: Default cap on broker queue depth (queued + leased cells) — the
#: backpressure limit behind the service's structured 429.
DEFAULT_MAX_QUEUE_DEPTH = 4096

#: Default cycle budget per worker slice (the checkpoint granularity).
DEFAULT_SLICE_CYCLES = 50_000


class FleetError(RuntimeError):
    """Base class for fleet failures."""


class FleetSaturated(FleetError):
    """The broker queue is at its depth cap; the submission was refused.

    Carries ``queue_depth`` and ``max_queue_depth`` so HTTP front-ends can
    answer a structured 429 with the live numbers.
    """

    def __init__(self, message: str, queue_depth: int, max_queue_depth: int):
        """Create the error with the live depth numbers attached."""
        super().__init__(message)
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth


class FleetTaskError(FleetError):
    """A cell exhausted its retry budget; the grid cannot complete."""


class FleetStalled(FleetError):
    """No cell made progress within the stall timeout (fleet dead/hung)."""


class WorkerRejected(FleetError):
    """A worker's hello was refused (wire schema version mismatch).

    ``payload`` is the structured rejection body the HTTP layer returns.
    """

    def __init__(self, message: str, payload: dict):
        """Create the rejection with its structured wire body."""
        super().__init__(message)
        self.payload = payload


class FleetProtocolError(FleetError):
    """A worker spoke out of turn (e.g. leased without a hello)."""


# ---------------------------------------------------------------------------
# Broker state records
# ---------------------------------------------------------------------------


@dataclass
class _Cell:
    """Broker-side record of one grid cell (internal)."""

    grid_key: tuple
    payload: dict
    job_tag: str
    state: str = "queued"          # queued | leased | done | failed | cancelled
    attempts: int = 0
    commits: int = 0
    cached: bool = False
    last_error: str | None = None


@dataclass
class _Lease:
    """Broker-side record of one live lease (internal)."""

    lease_id: str
    cell: _Cell
    worker_id: str
    deadline: float


@dataclass
class _FleetJob:
    """Broker-side record of one submitted grid (internal)."""

    tag: str
    total: int
    remaining: int
    events: list = field(default_factory=list)
    error: str | None = None
    cancelled: bool = False

    @property
    def done(self) -> bool:
        """Whether the job can no longer make progress."""
        return self.remaining <= 0 or self.error is not None or self.cancelled


@dataclass
class _Worker:
    """Broker-side record of one registered worker (internal)."""

    hello: WorkerHello
    last_seen: float
    leases_granted: int = 0


# ---------------------------------------------------------------------------
# The broker
# ---------------------------------------------------------------------------


class FleetBroker:
    """Lease-based fair-share cell queue (the fleet's state machine).

    Thread-safe; every public method may be called from HTTP handler
    threads and the executor's wait loop concurrently.  Time is injectable
    (``clock``) so lease-expiry behaviour is testable without sleeping.

    Args:
        lease_ttl_s: Seconds a lease survives without a heartbeat.
        max_attempts: Execution attempts per cell before the cell (and its
            job) fail.
        max_queue_depth: Cap on queued+leased cells; submissions past it
            raise :class:`FleetSaturated` (the backpressure bound).
        slice_cycles: Cycle budget per worker slice, shipped inside each
            cell (checkpoint granularity for preemptible cells).
        clock: Monotonic time source (tests inject a fake).
    """

    #: Queue/lease/worker state mutated from HTTP handler threads and the
    #: executor's wait loop; only touch under ``self._lock`` (enforced by
    #: the ``lock-discipline`` lint rule).
    _GUARDED_BY_LOCK = (
        "_jobs",
        "_queues",
        "_rr",
        "_leases",
        "_workers",
        "_draining",
        "_next_lease",
        "counters",
    )

    def __init__(
        self,
        *,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        slice_cycles: int = DEFAULT_SLICE_CYCLES,
        clock=time.monotonic,
    ):
        """Create an empty broker with the given policy knobs."""
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive, got {lease_ttl_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_every_s = max(0.05, min(lease_ttl_s / 3.0, 2.0))
        self.max_attempts = max_attempts
        self.max_queue_depth = max_queue_depth
        self.slice_cycles = slice_cycles
        self._clock = clock
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)     # lease waiters
        self._events = threading.Condition(self._lock)   # commit waiters
        self._jobs: dict[str, _FleetJob] = {}
        self._queues: dict[str, deque[_Cell]] = {}
        self._rr: deque[str] = deque()                   # fair-share rotation
        self._leases: dict[str, _Lease] = {}
        self._workers: dict[str, _Worker] = {}
        self._draining = False
        self._next_lease = 1
        self.counters = {
            "commits": 0,           # cells committed exactly once
            "retries": 0,           # expired/failed leases sent back to queue
            "late_results": 0,      # results dropped (lease no longer live)
            "failures": 0,          # cells that exhausted the retry budget
            "leases_granted": 0,
            "cancelled_cells": 0,
        }

    # ------------------------------------------------------------------
    # Worker registration / negotiation
    # ------------------------------------------------------------------

    def register(self, hello: WorkerHello) -> dict:
        """Register a worker after wire-schema negotiation.

        A worker advertising an *older* :data:`WIRE_SCHEMA_VERSION` gets a
        structured :class:`WorkerRejected` (it cannot interpret this
        broker's leases); a *newer* one was already refused by
        :meth:`WorkerHello.from_dict` per the standard
        :class:`~repro.api.schema.SchemaError` policy.
        """
        if hello.schema_version < WIRE_SCHEMA_VERSION:
            payload = {
                "schema_version": WIRE_SCHEMA_VERSION,
                "error": (
                    f"worker {hello.worker_id!r} speaks wire schema "
                    f"{hello.schema_version}, older than the broker's "
                    f"{WIRE_SCHEMA_VERSION}; upgrade the worker"
                ),
                "supported_version": WIRE_SCHEMA_VERSION,
                "advertised_version": hello.schema_version,
            }
            raise WorkerRejected(payload["error"], payload)
        with self._lock:
            self._workers[hello.worker_id] = _Worker(
                hello=hello, last_seen=self._clock())
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "ok": True,
            "worker_id": hello.worker_id,
            "lease_ttl_s": self.lease_ttl_s,
            "heartbeat_every_s": self.heartbeat_every_s,
        }

    def worker_count(self) -> int:
        """Number of workers that have said hello."""
        with self._lock:
            return len(self._workers)

    # ------------------------------------------------------------------
    # Submission / backpressure
    # ------------------------------------------------------------------

    def depth(self) -> int:
        """Queued plus leased cells (the backpressure quantity)."""
        with self._lock:
            return self._depth_locked()

    def _depth_locked(self) -> int:
        return sum(len(q) for q in self._queues.values()) + len(self._leases)

    def admit(self, cells: int) -> None:
        """Raise :class:`FleetSaturated` if ``cells`` more would overflow.

        Advisory (the depth can change between this check and the actual
        submission); :meth:`submit_cells` re-enforces the cap.
        """
        with self._lock:
            self._check_depth_locked(cells)

    def _check_depth_locked(self, incoming: int) -> None:
        depth = self._depth_locked()
        if depth + incoming > self.max_queue_depth:
            raise FleetSaturated(
                f"fleet queue is saturated: {depth} cells in flight plus "
                f"{incoming} submitted would exceed the cap of "
                f"{self.max_queue_depth}; retry when the queue drains",
                queue_depth=depth,
                max_queue_depth=self.max_queue_depth,
            )

    def submit_cells(self, job_tag: str, cells: list[tuple[tuple, dict]]) -> None:
        """Enqueue one job's cells: ``[(grid_key, cell_payload), ...]``.

        Raises :class:`FleetSaturated` past the depth cap and ValueError on
        a reused tag (tags are one-shot submission identities).
        """
        if not cells:
            return
        with self._lock:
            if job_tag in self._jobs:
                raise ValueError(f"job tag {job_tag!r} already submitted")
            self._check_depth_locked(len(cells))
            job = _FleetJob(tag=job_tag, total=len(cells), remaining=len(cells))
            self._jobs[job_tag] = job
            queue = self._queues.setdefault(job_tag, deque())
            for grid_key, payload in cells:
                queue.append(_Cell(grid_key=grid_key, payload=payload,
                                   job_tag=job_tag))
            self._rr.append(job_tag)
            self._work.notify_all()

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------

    def lease(self, worker_id: str, wait: float = 0.0) -> TaskLease | None:
        """Grant the next cell to ``worker_id`` (fair-share round-robin).

        Blocks up to ``wait`` seconds for work.  Returns None when there is
        none (or the broker is draining); raises
        :class:`FleetProtocolError` for a worker that never said hello
        (the HTTP layer answers 409, telling the worker to re-register).
        """
        deadline = self._clock() + max(0.0, wait)
        with self._lock:
            while True:
                worker = self._workers.get(worker_id)
                if worker is None:
                    raise FleetProtocolError(
                        f"unknown worker {worker_id!r}; say hello first")
                worker.last_seen = self._clock()
                if self._draining:
                    return None
                self._sweep_expired_locked()
                cell = self._next_cell_locked()
                if cell is not None:
                    return self._grant_locked(cell, worker)
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return None
                # Short waits so expiring leases are swept while blocked.
                self._work.wait(min(remaining, self.heartbeat_every_s))

    def _next_cell_locked(self) -> _Cell | None:
        """Pop the next queued cell, rotating fairly across job tags."""
        for _ in range(len(self._rr)):
            tag = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(tag)
            if queue:
                return queue.popleft()
        return None

    def _grant_locked(self, cell: _Cell, worker: _Worker) -> TaskLease:
        lease_id = f"lease-{self._next_lease:06d}"
        self._next_lease += 1
        cell.state = "leased"
        cell.attempts += 1
        lease = _Lease(lease_id=lease_id, cell=cell,
                       worker_id=worker.hello.worker_id,
                       deadline=self._clock() + self.lease_ttl_s)
        self._leases[lease_id] = lease
        worker.leases_granted += 1
        self.counters["leases_granted"] += 1
        return TaskLease(
            lease_id=lease_id,
            job_tag=cell.job_tag,
            cell=cell.payload,
            attempt=cell.attempts,
            lease_ttl_s=self.lease_ttl_s,
            heartbeat_every_s=self.heartbeat_every_s,
        )

    def _sweep_expired_locked(self) -> None:
        """Requeue (or fail) every lease whose deadline has passed."""
        now = self._clock()
        for lease_id in [lid for lid, lease in self._leases.items()
                         if lease.deadline < now]:
            lease = self._leases.pop(lease_id)
            self._retry_or_fail_locked(
                lease.cell,
                f"lease {lease_id} of worker {lease.worker_id!r} expired "
                f"(no heartbeat within {self.lease_ttl_s}s)")

    def _retry_or_fail_locked(self, cell: _Cell, reason: str) -> None:
        cell.last_error = reason
        job = self._jobs.get(cell.job_tag)
        if job is None or job.cancelled:
            cell.state = "cancelled"
            return
        if cell.attempts >= self.max_attempts:
            cell.state = "failed"
            self.counters["failures"] += 1
            job.error = (f"cell {cell.grid_key} failed after "
                         f"{cell.attempts} attempts: {reason}")
            self._events.notify_all()
            return
        cell.state = "queued"
        self.counters["retries"] += 1
        # Front of the queue: a retried cell is usually a near-free cache
        # hit (its first worker may have finished before dying), so letting
        # it jump the line keeps job completion latency bounded.
        self._queues.setdefault(cell.job_tag, deque()).appendleft(cell)
        self._work.notify_all()

    # ------------------------------------------------------------------
    # Heartbeats / results
    # ------------------------------------------------------------------

    def heartbeat(self, worker_id: str, lease_ids: list[str]) -> dict:
        """Extend the given leases; return a per-lease directive map.

        ``"keep"`` means carry on; ``"abandon"`` means stop working on the
        cell (the lease expired and was reassigned, or its job was
        cancelled) — the worker leaves any checkpoint for the next owner.
        """
        directives: dict[str, str] = {}
        with self._lock:
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.last_seen = self._clock()
            self._sweep_expired_locked()
            for lease_id in lease_ids:
                lease = self._leases.get(lease_id)
                if (lease is None or lease.worker_id != worker_id
                        or lease.cell.state == "cancelled"):
                    directives[lease_id] = "abandon"
                    continue
                lease.deadline = self._clock() + self.lease_ttl_s
                directives[lease_id] = "keep"
        return {"schema_version": WIRE_SCHEMA_VERSION, "directives": directives}

    def complete(self, result: TaskResult) -> bool:
        """Commit (or reject) one worker result — the exactly-once gate.

        Only a *live* lease may commit its cell; late results (expired or
        reassigned leases, cancelled jobs) are counted and dropped — their
        work is not lost, because the worker already stored the outcome in
        the shared cache and the retry will hit it.  Returns True when the
        result was accepted.
        """
        with self._lock:
            lease = self._leases.pop(result.lease_id, None)
            if lease is None or lease.cell.state != "leased":
                self.counters["late_results"] += 1
                return False
            cell = lease.cell
            job = self._jobs.get(cell.job_tag)
            if job is None or job.cancelled:
                cell.state = "cancelled"
                self.counters["late_results"] += 1
                return False
            if not result.ok:
                self._retry_or_fail_locked(
                    cell, result.error or "worker reported failure")
                return True
            cell.state = "done"
            cell.commits += 1
            cell.cached = result.cached
            job.remaining -= 1
            job.events.append((cell.grid_key,
                               cell.payload.get("outcome_key"),
                               result.cached))
            self.counters["commits"] += 1
            self._events.notify_all()
            return True

    # ------------------------------------------------------------------
    # Executor-facing surface
    # ------------------------------------------------------------------

    def wait_job(self, job_tag: str, timeout: float) -> tuple[list, bool, str | None]:
        """Drain new commit events for one job (blocking up to ``timeout``).

        Returns ``(events, done, error)`` where each event is
        ``(grid_key, outcome_key, cached)``.  ``done`` covers success,
        failure and cancellation alike; the caller inspects ``error``.
        """
        with self._lock:
            job = self._jobs.get(job_tag)
            if job is None:
                raise KeyError(f"unknown fleet job {job_tag!r}")
            self._sweep_expired_locked()
            if not job.events and not job.done and timeout > 0:
                self._events.wait(timeout)
                self._sweep_expired_locked()
            events, job.events = job.events, []
            return events, job.done, job.error

    def cancel_job(self, job_tag: str) -> int:
        """Drop a job's queued cells and mark its leased cells abandoned.

        This is what makes cancellation *real* for fleet jobs: queued but
        unleased cells leave the broker queue immediately (workers stop
        receiving them), and in-flight leases are told to abandon on their
        next heartbeat.  Returns how many queued cells were dropped.
        """
        with self._lock:
            job = self._jobs.get(job_tag)
            if job is None:
                return 0
            job.cancelled = True
            queue = self._queues.get(job_tag)
            dropped = 0
            if queue:
                dropped = len(queue)
                for cell in queue:
                    cell.state = "cancelled"
                queue.clear()
            for lease in self._leases.values():
                if lease.cell.job_tag == job_tag:
                    lease.cell.state = "cancelled"
            self.counters["cancelled_cells"] += dropped
            self._events.notify_all()
            self._work.notify_all()
            return dropped

    def forget_job(self, job_tag: str) -> None:
        """Release a finished job's bookkeeping (executor cleanup)."""
        with self._lock:
            self._jobs.pop(job_tag, None)
            self._queues.pop(job_tag, None)
            if job_tag in self._rr:
                self._rr.remove(job_tag)

    def job_cells(self, job_tag: str) -> list[_Cell]:
        """Snapshot of a job's cell records (tests/observability)."""
        with self._lock:
            cells: list[_Cell] = []
            for queue in self._queues.values():
                cells.extend(c for c in queue if c.job_tag == job_tag)
            for lease in self._leases.values():
                if lease.cell.job_tag == job_tag:
                    cells.append(lease.cell)
            return cells

    def drain(self) -> None:
        """Stop granting leases; pollers are told to shut down."""
        with self._lock:
            self._draining = True
            self._work.notify_all()
            self._events.notify_all()

    @property
    def draining(self) -> bool:
        """Whether the broker has stopped granting leases."""
        with self._lock:
            return self._draining

    def stats(self) -> dict:
        """A JSON-safe snapshot of queue/lease/worker state (``/fleet/stats``)."""
        with self._lock:
            now = self._clock()
            return {
                "schema_version": WIRE_SCHEMA_VERSION,
                "queued": sum(len(q) for q in self._queues.values()),
                "leased": len(self._leases),
                "max_queue_depth": self.max_queue_depth,
                "lease_ttl_s": self.lease_ttl_s,
                "draining": self._draining,
                "workers": {
                    worker_id: {
                        "pid": record.hello.pid,
                        "host": record.hello.host,
                        "last_seen_age_s": max(0.0, now - record.last_seen),
                        "leases_granted": record.leases_granted,
                    }
                    for worker_id, record in self._workers.items()
                },
                "jobs": {
                    tag: {"total": job.total,
                          "remaining": job.remaining,
                          "cancelled": job.cancelled,
                          "error": job.error}
                    for tag, job in self._jobs.items()
                },
                "counters": dict(self.counters),
            }


# ---------------------------------------------------------------------------
# The fleet HTTP server
# ---------------------------------------------------------------------------


class FleetServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`FleetBroker`."""

    daemon_threads = True

    def __init__(self, address, broker: FleetBroker):
        """Bind to ``address`` and serve ``broker``."""
        self.broker = broker
        super().__init__(address, FleetRequestHandler)

    def handle_error(self, request, client_address) -> None:
        """Swallow disconnect noise: a SIGKILLed worker tears its socket
        down mid-long-poll, which is chaos-by-design, not a server bug."""
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return
        super().handle_error(request, client_address)

    @property
    def url(self) -> str:
        """The server's base URL (host resolved after an ephemeral bind)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class FleetRequestHandler(BaseHTTPRequestHandler):
    """Routes the fleet endpoints (one request per connection thread).

    ========  =====================  ====================================
    method    path                   behaviour
    ========  =====================  ====================================
    GET       ``/healthz``           liveness probe
    GET       ``/fleet/stats``       broker queue/lease/worker snapshot
    POST      ``/fleet/hello``       worker registration + negotiation
    POST      ``/fleet/lease``       pull one lease (long-polls ``wait``)
    POST      ``/fleet/result``      commit one result (exactly-once)
    POST      ``/fleet/heartbeat``   extend leases, receive directives
    ========  =====================  ====================================
    """

    server: FleetServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Suppress the default per-request stderr chatter."""

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._reply(code, {"schema_version": WIRE_SCHEMA_VERSION,
                           "error": message})

    def _read_json(self) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            self._error(400, "request body required")
            return None
        try:
            return json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError) as error:
            self._error(400, f"malformed JSON body: {error}")
            return None

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """GET router: ``/healthz`` and ``/fleet/stats``."""
        path = self.path.partition("?")[0]
        if path == "/healthz":
            self._reply(200, {"schema_version": WIRE_SCHEMA_VERSION,
                              "ok": True})
            return
        if path == "/fleet/stats":
            self._reply(200, self.server.broker.stats())
            return
        self._error(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """POST router: hello / lease / result / heartbeat."""
        path = self.path.partition("?")[0]
        payload = self._read_json()
        if payload is None:
            return
        broker = self.server.broker
        try:
            if path == "/fleet/hello":
                self._reply(200, broker.register(WorkerHello.from_dict(payload)))
            elif path == "/fleet/lease":
                worker_id = payload.get("worker_id", "")
                wait = float(payload.get("wait", 0.0) or 0.0)
                lease = broker.lease(worker_id, wait=min(max(wait, 0.0), 30.0))
                self._reply(200, {
                    "schema_version": WIRE_SCHEMA_VERSION,
                    "lease": lease.to_dict() if lease is not None else None,
                    "shutdown": broker.draining,
                })
            elif path == "/fleet/result":
                accepted = broker.complete(TaskResult.from_dict(payload))
                self._reply(200, {"schema_version": WIRE_SCHEMA_VERSION,
                                  "accepted": accepted})
            elif path == "/fleet/heartbeat":
                worker_id = payload.get("worker_id", "")
                lease_ids = payload.get("leases") or []
                self._reply(200, broker.heartbeat(worker_id, list(lease_ids)))
            else:
                self._error(404, f"unknown path {path!r}")
        except SchemaError as error:
            self._error(400, str(error))
        except WorkerRejected as error:
            self._reply(426, error.payload)
        except FleetProtocolError as error:
            self._error(409, str(error))


def make_fleet_server(host: str = "127.0.0.1", port: int = 0,
                      broker: FleetBroker | None = None) -> FleetServer:
    """Create (but do not start) a :class:`FleetServer`.

    ``port=0`` binds an ephemeral free port; the chosen URL is
    ``server.url``.  Callers drive it from a thread via
    ``serve_forever()``/``shutdown()``.
    """
    return FleetServer((host, port), broker or FleetBroker())


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class FleetExecutor:
    """Run experiment grids on a broker/worker fleet (Executor protocol).

    On first use it boots a :class:`FleetServer` around its broker and
    spawns ``workers`` ``python -m repro worker`` subprocesses pointed at
    it; extra workers (other processes, other hosts sharing the cache
    directory) may attach to :attr:`url` at any time.  Each ``execute``
    call shards its tasks into per-(machine × RENO) cells, satisfies cache
    hits locally, enqueues the misses under one fair-share job tag, and
    streams commits back through the shared outcome cache.

    Results are byte-identical to :class:`SerialExecutor`; only wall-clock
    time, worker placement and outcome slimness (cache-loaded outcomes
    have ``program``/``functional`` None, like every pooled backend)
    differ.  Tasks whose workloads are not in the registry (ad-hoc
    Workload objects) cannot be named on the wire and fall back to the
    serial path, mirroring :class:`ProcessExecutor`'s pickling fallback.

    Args:
        workers: Worker subprocesses to keep alive (0 = externally
            managed workers only).
        host: Bind address of the fleet server.
        port: TCP port (0 = ephemeral).
        lease_ttl_s / max_attempts / max_queue_depth / slice_cycles:
            Broker policy knobs (see :class:`FleetBroker`).
        cache: Default shared result store for runs that supply none —
            a store instance or any locator (directory path,
            ``sqlite://<path>``, ``http://host:port`` of a ``repro
            store-serve``).  The fleet *requires* a shared store for
            result transport; with an HTTP locator workers need no
            shared filesystem at all.  None creates a private temp-dir
            disk cache.
        respawn: Keep the worker pool at ``workers`` by respawning dead
            processes (the chaos harness disables this to control the
            population itself).
        stall_timeout_s: Raise :class:`FleetStalled` when no cell commits
            for this long (guards against a dead fleet hanging a job
            forever).
        broker: Attach to an existing broker instead of creating one
            (tests compose a broker, server and executor separately).
    """

    #: Lifecycle state shared between execute() callers, the maintenance
    #: path and close(); only touch under ``self._lock`` (enforced by the
    #: ``lock-discipline`` lint rule).
    _GUARDED_BY_LOCK = (
        "_server",
        "_server_thread",
        "processes",
        "_next_tag",
        "_next_worker",
        "_closed",
        "_own_cache_dir",
    )

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        slice_cycles: int = DEFAULT_SLICE_CYCLES,
        cache: SimulationCache | str | Path | None = None,
        respawn: bool = True,
        stall_timeout_s: float = 300.0,
        broker: FleetBroker | None = None,
    ):
        """Create the executor (the fleet itself boots lazily)."""
        self.workers = max(0, workers)
        self._host = host
        self._port = port
        self.broker = broker or FleetBroker(
            lease_ttl_s=lease_ttl_s,
            max_attempts=max_attempts,
            max_queue_depth=max_queue_depth,
            slice_cycles=slice_cycles,
        )
        self.respawn = respawn
        self.stall_timeout_s = stall_timeout_s
        self._cache_arg = cache
        self._own_cache_dir: str | None = None
        self._server: FleetServer | None = None
        self._server_thread: threading.Thread | None = None
        self.processes: list[subprocess.Popen] = []
        self._lock = threading.Lock()
        self._next_tag = 1
        self._next_worker = 1
        self._closed = False

    # ------------------------------------------------------------------
    # Fleet lifecycle
    # ------------------------------------------------------------------

    @property
    def url(self) -> str | None:
        """The fleet server's base URL (None before the fleet started)."""
        with self._lock:
            return self._server.url if self._server is not None else None

    def ensure_started(self) -> str:
        """Boot the fleet server and worker pool if needed; return the URL."""
        with self._lock:
            if self._closed:
                raise FleetError("fleet executor is closed")
            if self._server is None:
                self._server = FleetServer((self._host, self._port), self.broker)
                self._server_thread = threading.Thread(
                    target=self._server.serve_forever,
                    name="repro-fleet-server", daemon=True)
                self._server_thread.start()
            url = self._server.url
            while len(self._live_processes_locked()) < self.workers:
                self._spawn_worker_locked(url)
        return url

    def spawn_worker(self) -> subprocess.Popen:
        """Spawn one additional worker subprocess (harness/elastic scale-out)."""
        url = self.ensure_started()
        with self._lock:
            return self._spawn_worker_locked(url)

    def _spawn_worker_locked(self, url: str) -> subprocess.Popen:
        worker_id = f"worker-{os.getpid()}-{self._next_worker}"
        self._next_worker += 1
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--server", url, "--worker-id", worker_id],
            stdout=subprocess.DEVNULL,
            env=env,
        )
        self.processes.append(process)
        return process

    def _live_processes_locked(self) -> list[subprocess.Popen]:
        live = []
        for process in list(self.processes):
            if process.poll() is None:
                live.append(process)
            else:
                self.processes.remove(process)
        return live

    def _maintain_workers(self) -> None:
        """Reap dead workers and, when ``respawn`` is on, replace them."""
        with self._lock:
            if self._closed or self._server is None:
                return
            live = self._live_processes_locked()
            if self.respawn:
                url = self._server.url
                while len(live) < self.workers:
                    live.append(self._spawn_worker_locked(url))

    def close(self) -> None:
        """Drain the broker, stop the workers, shut the server down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            server, self._server = self._server, None
            thread, self._server_thread = self._server_thread, None
            processes, self.processes = list(self.processes), []
            own_cache_dir, self._own_cache_dir = self._own_cache_dir, None
        self.broker.drain()
        for process in processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + 5.0
        for process in processes:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=10)
        if own_cache_dir is not None:
            import shutil

            shutil.rmtree(own_cache_dir, ignore_errors=True)

    def __enter__(self) -> "FleetExecutor":
        """Context-manager entry (returns the executor)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close` the fleet."""
        self.close()

    # ------------------------------------------------------------------
    # Admission control (the service's backpressure hook)
    # ------------------------------------------------------------------

    def admit(self, cells: int | None) -> None:
        """Refuse a submission that would overflow the broker queue.

        :meth:`repro.api.session.Session.submit` calls this with the
        estimated cell count before accepting a job; ``repro serve`` maps
        the raised :class:`FleetSaturated` onto a structured 429.  A None
        estimate (custom-runner experiments) is admitted — the hard cap in
        :meth:`FleetBroker.submit_cells` still applies when cells enqueue.
        """
        if cells is not None:
            self.broker.admit(cells)

    # ------------------------------------------------------------------
    # The Executor protocol
    # ------------------------------------------------------------------

    def execute(
        self,
        tasks: list[WorkloadTask],
        cache: SimulationCache | None,
        progress=None,
        cancel=None,
    ) -> list[Block]:
        """Run every task's cells on the fleet (deterministic block order)."""
        if not tasks:
            return []
        if not self._tasks_shippable(tasks):
            return _delegate(SerialExecutor(), tasks, cache, progress, cancel)
        cache = cache if cache is not None else self._default_cache()
        self.ensure_started()
        emit = _progress_emitter(progress)
        with self._lock:
            tag = f"grid-{os.getpid()}-{self._next_tag}"
            self._next_tag += 1

        outcomes: dict[tuple, object] = {}
        keys: dict[tuple, str] = {}
        pending: list[tuple[tuple, dict]] = []
        cache_root = store_locator(cache)
        # Checkpoints resume long cells across preemption — meaningful
        # only when broker and workers share a filesystem.  Shared-tier
        # runs (sqlite/http locators) leave the path empty; the worker
        # falls back to a private temp checkpoint (resume stays local).
        disk_root = getattr(cache, "root", None)
        checkpoint_dir = str(disk_root / "fleet-ckpt") if disk_root is not None else ""
        for task in tasks:
            program = task.workload.build(task.scale)
            digest = program_digest(program)
            for machine_label, machine in task.machines:
                for reno_label, reno in task.renos:
                    grid_key = (task.workload.name, machine_label, reno_label)
                    key = outcome_key(digest, machine, reno,
                                      task.max_instructions,
                                      task.collect_timing, task.record_stats)
                    keys[grid_key] = key
                    outcome = cache.get(key)
                    if outcome is not None:
                        outcomes[grid_key] = outcome
                        if emit is not None:
                            emit(grid_key, True, outcome)
                        continue
                    pending.append((grid_key, {
                        "workload": task.workload.name,
                        "scale": task.scale,
                        "machine_label": machine_label,
                        "machine": machine.to_dict(),
                        "reno_label": reno_label,
                        "reno": reno.to_dict() if reno is not None else None,
                        "collect_timing": task.collect_timing,
                        "record_stats": task.record_stats,
                        "max_instructions": task.max_instructions,
                        "backend": task.backend,
                        "outcome_key": key,
                        "cache_root": cache_root,
                        "checkpoint_path": (
                            str(Path(checkpoint_dir) / f"{key}.ckpt")
                            if checkpoint_dir else ""),
                        "slice_cycles": self.broker.slice_cycles,
                    }))

        if pending:
            self.broker.submit_cells(tag, pending)
            try:
                self._await_job(tag, cache, outcomes, emit, cancel)
            finally:
                self.broker.forget_job(tag)

        blocks: list[Block] = []
        for task in tasks:
            block: Block = []
            for machine_label, _ in task.machines:
                for reno_label, _ in task.renos:
                    grid_key = (task.workload.name, machine_label, reno_label)
                    outcome = outcomes.get(grid_key)
                    if outcome is None:
                        # Committed by a worker but unreadable here: a
                        # shared-cache misconfiguration, not a sim failure.
                        raise FleetError(
                            f"cell {grid_key} committed but its outcome "
                            f"{keys[grid_key][:12]}… is unreadable from the "
                            f"shared cache at {cache_root}")
                    block.append((grid_key, outcome))
            blocks.append(block)
        return blocks

    def _await_job(self, tag, cache, outcomes, emit, cancel) -> None:
        """Drive one submitted job to completion (commits, chaos, cancel)."""
        last_progress = time.monotonic()
        while True:
            if cancel is not None and cancel():
                dropped = self.broker.cancel_job(tag)
                raise ExecutionCancelled(
                    f"fleet job {tag} cancelled "
                    f"({dropped} queued cells dropped)")
            events, done, error = self.broker.wait_job(tag, timeout=0.1)
            for grid_key, key, cached in events:
                outcome = cache.get(key)
                if outcome is not None:
                    outcomes[grid_key] = outcome
                    if emit is not None:
                        emit(grid_key, cached, outcome)
                last_progress = time.monotonic()
            if error is not None:
                raise FleetTaskError(error)
            if done:
                return
            self._maintain_workers()
            if time.monotonic() - last_progress > self.stall_timeout_s:
                raise FleetStalled(
                    f"fleet job {tag} made no progress for "
                    f"{self.stall_timeout_s}s; broker state: "
                    f"{json.dumps(self.broker.stats()['counters'])}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _tasks_shippable(tasks: list[WorkloadTask]) -> bool:
        """Whether every task's workload resolves by name on a worker."""
        from repro.workloads.base import get_workload

        for task in tasks:
            try:
                if get_workload(task.workload.name) is not task.workload:
                    return False
            except KeyError:
                return False
        return True

    def _default_cache(self) -> SimulationCache:
        """The executor's fallback shared store (runs that supply none).

        Accepts any result-store instance or locator — a directory path,
        ``sqlite://<path>``, or the ``http://host:port`` of a ``repro
        store-serve`` (workers then need no shared filesystem at all).
        """
        if self._cache_arg is not None:
            return open_store(self._cache_arg)
        with self._lock:
            if self._own_cache_dir is None:
                self._own_cache_dir = tempfile.mkdtemp(
                    prefix="repro-fleet-cache-")
            own_cache_dir = self._own_cache_dir
        return SimulationCache(own_cache_dir)


# ---------------------------------------------------------------------------
# The process-shared fleet (jobs="fleet" / $REPRO_FLEET)
# ---------------------------------------------------------------------------

_shared_fleet: FleetExecutor | None = None
_shared_fleet_lock = threading.Lock()


def shared_fleet() -> FleetExecutor:
    """The lazily created process-wide fleet behind ``jobs="fleet"``.

    Worker count comes from ``$REPRO_FLEET`` (an integer; unset or
    unparseable means 2).  One fleet per process: repeated grid runs reuse
    the same broker, server and worker pool instead of booting a fleet per
    call.  The fleet is closed at interpreter exit — draining the broker
    tells the workers to shut down cleanly instead of dying mid-poll when
    the daemon server thread disappears.
    """
    global _shared_fleet
    with _shared_fleet_lock:
        if _shared_fleet is None or _shared_fleet._closed:
            try:
                workers = int(os.environ.get(FLEET_ENV, "") or 2)
            except ValueError:
                workers = 2
            _shared_fleet = FleetExecutor(workers=max(1, workers))
            atexit.register(_shared_fleet.close)
        return _shared_fleet
