"""Versioned wire schema of the ``repro.api`` surface.

Everything that crosses the API boundary — a submitted experiment request,
a job status, a finished report — has a plain-dict form with an explicit
``schema_version``, so clients and servers from different versions of this
package fail loudly instead of misreading each other:

* :class:`ExperimentRequest` — what ``POST /experiments`` accepts and what
  :meth:`repro.api.session.Session.submit` consumes.  Its :meth:`digest` is
  the content address used for request coalescing.
* :class:`JobStatus` — what ``GET /jobs/<id>`` returns: lifecycle state,
  per-cell progress, and (on success) the serialised
  :class:`~repro.harness.experiments.ExperimentReport`.
* :class:`JobState` — the job lifecycle constants.
* The **fleet messages** — :class:`WorkerHello`, :class:`TaskLease`,
  :class:`TaskResult` — spoken between the broker
  (:mod:`repro.api.fleet`) and ``python -m repro worker`` pullers.

The report payload itself is versioned separately by
:data:`~repro.analysis.report.REPORT_SCHEMA_VERSION` (stamped inside
``ExperimentReport.to_dict``); :data:`WIRE_SCHEMA_VERSION` covers the
request/response envelopes defined here.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

#: Version of the request/response envelopes in this module.  History:
#:
#: * **1** — initial ``repro serve`` schema (requests, job status).
#: * **2** — distributed-fleet messages (:class:`WorkerHello`,
#:   :class:`TaskLease`, :class:`TaskResult`).  Existing envelopes are
#:   unchanged and version-1 payloads still read fine; the bump exists so
#:   brokers and workers can *negotiate*: a worker advertising an older
#:   version is refused with a structured error (it cannot interpret
#:   leases), a newer one is refused by :func:`_check_wire_version`.
#:
#: Bump on any incompatible envelope change; see
#: :func:`repro.analysis.report.check_schema_version` for the read policy.
WIRE_SCHEMA_VERSION = 2


class SchemaError(ValueError):
    """A wire payload is malformed or from an unsupported schema version."""


def _check_wire_version(payload: dict, kind: str) -> None:
    version = payload.get("schema_version", 1)
    if not isinstance(version, int) or version < 1:
        raise SchemaError(f"malformed {kind} schema_version: {version!r}")
    if version > WIRE_SCHEMA_VERSION:
        raise SchemaError(
            f"{kind} uses wire schema {version}, newer than the supported "
            f"{WIRE_SCHEMA_VERSION}; upgrade this package to read it"
        )


class JobState:
    """Lifecycle states of a submitted job (plain string constants).

    ``PENDING → RUNNING → (SUCCEEDED | FAILED | CANCELLED)``; the three
    right-hand states are terminal.
    """

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can never leave.
    TERMINAL = frozenset({SUCCEEDED, FAILED, CANCELLED})


@dataclass
class ExperimentRequest:
    """One experiment submission: which registered experiment, on what grid.

    Attributes:
        experiment: Registry name (``"fig8"``, ``"scale_sweep"``, ...).
        suite: Workload suite, or None for the experiment's default.
        workloads: Explicit workload subset, or None for the full suite.
        scale: Workload scale factor (``scale_sweep`` ignores it and reads
            ``params["scales"]`` instead).
        params: Extra experiment parameters (e.g. ``register_sizes`` for
            ``fig11_regs``); values must be JSON-serialisable on the wire.
    """

    experiment: str
    suite: str | None = None
    workloads: list[str] | None = None
    scale: int = 1
    params: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Raise :class:`SchemaError` on a structurally invalid request."""
        if not self.experiment or not isinstance(self.experiment, str):
            raise SchemaError(f"experiment must be a non-empty string, "
                              f"got {self.experiment!r}")
        if self.suite is not None and not isinstance(self.suite, str):
            raise SchemaError(f"suite must be a string or null, got {self.suite!r}")
        if self.workloads is not None:
            if (not isinstance(self.workloads, (list, tuple))
                    or not all(isinstance(name, str) for name in self.workloads)):
                raise SchemaError(f"workloads must be a list of names, "
                                  f"got {self.workloads!r}")
        if not isinstance(self.scale, int) or self.scale < 1:
            raise SchemaError(f"scale must be an integer >= 1, got {self.scale!r}")
        if not isinstance(self.params, dict):
            raise SchemaError(f"params must be an object, got {self.params!r}")

    def to_dict(self) -> dict:
        """JSON-safe form (the ``POST /experiments`` body)."""
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "experiment": self.experiment,
            "suite": self.suite,
            "workloads": list(self.workloads) if self.workloads is not None else None,
            "scale": self.scale,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentRequest":
        """Inverse of :meth:`to_dict`; validates shape and schema version."""
        if not isinstance(payload, dict):
            raise SchemaError(f"request body must be a JSON object, got "
                              f"{type(payload).__name__}")
        _check_wire_version(payload, "request")
        params = payload.get("params")
        request = cls(
            experiment=payload.get("experiment", ""),
            suite=payload.get("suite"),
            workloads=payload.get("workloads"),
            scale=payload.get("scale", 1),
            params={} if params is None else params,
        )
        request.validate()
        return request

    def digest(self) -> str:
        """Content address of this request (the coalescing key).

        Canonical JSON over every request field: two requests digest alike
        exactly when they describe the same experiment run.  Tuples are
        serialised as JSON arrays, so in-process callers passing tuples and
        wire callers sending lists coalesce together.
        """
        try:
            material = json.dumps(self.to_dict(), sort_keys=True)
        except (TypeError, ValueError) as error:
            raise SchemaError(
                f"request is not content-addressable (non-JSON params?): {error}"
            ) from error
        return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class JobStatus:
    """A point-in-time view of one job (the ``GET /jobs/<id>`` payload).

    Attributes:
        job_id: Server-assigned identifier.
        state: One of the :class:`JobState` constants.
        experiment: The requested experiment's registry name.
        request: The originating request in dict form.
        cells_done: Grid cells whose outcomes are available so far.
        cells_total: Total grid cells, or None when the experiment's shape
            is not a single grid (custom runners like ``scale_sweep``).
        cells_cached: How many completed cells were outcome-cache hits.
        error: Failure message (``state == "failed"`` only).
        report: Serialised report (``state == "succeeded"`` only).
        occupancy: Live per-cell occupancy/utilization summaries
            (``"workload/machine/reno"`` →
            :meth:`repro.uarch.observe.OccupancyStats.summary`), populated
            incrementally as cells finish when the experiment records
            occupancy statistics; None otherwise.  Additive field — the
            wire schema version is unchanged.
    """

    job_id: str
    state: str
    experiment: str
    request: dict = field(default_factory=dict)
    cells_done: int = 0
    cells_total: int | None = None
    cells_cached: int = 0
    error: str | None = None
    report: dict | None = None
    occupancy: dict | None = None

    def to_dict(self) -> dict:
        """JSON-safe form (the ``GET /jobs/<id>`` body)."""
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "experiment": self.experiment,
            "request": self.request,
            "cells_done": self.cells_done,
            "cells_total": self.cells_total,
            "cells_cached": self.cells_cached,
            "error": self.error,
            "report": self.report,
            "occupancy": self.occupancy,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobStatus":
        """Inverse of :meth:`to_dict`; validates the schema version."""
        if not isinstance(payload, dict):
            raise SchemaError(f"status body must be a JSON object, got "
                              f"{type(payload).__name__}")
        _check_wire_version(payload, "job status")
        return cls(
            job_id=payload.get("job_id", ""),
            state=payload.get("state", JobState.PENDING),
            experiment=payload.get("experiment", ""),
            request=payload.get("request") or {},
            cells_done=payload.get("cells_done", 0),
            cells_total=payload.get("cells_total"),
            cells_cached=payload.get("cells_cached", 0),
            error=payload.get("error"),
            report=payload.get("report"),
            occupancy=payload.get("occupancy"),
        )


# ---------------------------------------------------------------------------
# Fleet messages (broker ⇄ worker)
# ---------------------------------------------------------------------------


@dataclass
class WorkerHello:
    """A worker's registration message (``POST /fleet/hello``).

    Attributes:
        worker_id: Caller-chosen stable identifier (unique per worker
            process; the broker keys heartbeats and leases on it).
        schema_version: The wire schema version the worker speaks.  The
            broker refuses mismatches: an *older* worker gets a structured
            rejection (it could not interpret the broker's leases), a
            *newer* one is refused by the standard
            newer-than-us :class:`SchemaError` policy.
        pid: The worker's OS process id (observability only).
        host: The worker's host name (observability only).
    """

    worker_id: str
    schema_version: int = WIRE_SCHEMA_VERSION
    pid: int = 0
    host: str = ""

    def to_dict(self) -> dict:
        """JSON-safe form (the ``POST /fleet/hello`` body)."""
        return {
            "schema_version": self.schema_version,
            "worker_id": self.worker_id,
            "pid": self.pid,
            "host": self.host,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkerHello":
        """Inverse of :meth:`to_dict`; refuses newer-than-us versions."""
        if not isinstance(payload, dict):
            raise SchemaError(f"hello body must be a JSON object, got "
                              f"{type(payload).__name__}")
        _check_wire_version(payload, "worker hello")
        worker_id = payload.get("worker_id", "")
        if not worker_id or not isinstance(worker_id, str):
            raise SchemaError(f"worker_id must be a non-empty string, "
                              f"got {worker_id!r}")
        return cls(
            worker_id=worker_id,
            schema_version=payload.get("schema_version", 1),
            pid=payload.get("pid", 0),
            host=payload.get("host", ""),
        )


@dataclass
class TaskLease:
    """One leased grid cell (the ``POST /fleet/lease`` success payload).

    A lease is the broker's exclusive, *expiring* grant of one cell to one
    worker: results are only accepted while the lease is live, heartbeats
    extend it, and an expired lease sends the cell back to the queue for
    another worker (bounded by the broker's retry budget).

    Attributes:
        lease_id: Broker-assigned unique identifier of this grant.
        job_tag: The submission the cell belongs to (fair-share key).
        cell: The cell description: workload name/scale, machine and RENO
            config dicts, budgets, the content-addressed ``outcome_key``,
            the shared ``cache_root`` and the checkpoint path (see
            :meth:`repro.api.fleet.FleetBroker.submit_cells`).
        attempt: 1-based execution attempt this lease represents.
        lease_ttl_s: Seconds until the lease expires without a heartbeat.
        heartbeat_every_s: How often the worker should heartbeat.
    """

    lease_id: str
    job_tag: str
    cell: dict
    attempt: int = 1
    lease_ttl_s: float = 10.0
    heartbeat_every_s: float = 2.0

    def to_dict(self) -> dict:
        """JSON-safe form (shipped inside the lease response)."""
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "lease_id": self.lease_id,
            "job_tag": self.job_tag,
            "cell": dict(self.cell),
            "attempt": self.attempt,
            "lease_ttl_s": self.lease_ttl_s,
            "heartbeat_every_s": self.heartbeat_every_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TaskLease":
        """Inverse of :meth:`to_dict`; validates shape and schema version."""
        if not isinstance(payload, dict):
            raise SchemaError(f"lease body must be a JSON object, got "
                              f"{type(payload).__name__}")
        _check_wire_version(payload, "task lease")
        lease_id = payload.get("lease_id", "")
        if not lease_id or not isinstance(lease_id, str):
            raise SchemaError(f"lease_id must be a non-empty string, "
                              f"got {lease_id!r}")
        cell = payload.get("cell")
        if not isinstance(cell, dict):
            raise SchemaError(f"lease cell must be an object, got {cell!r}")
        return cls(
            lease_id=lease_id,
            job_tag=payload.get("job_tag", ""),
            cell=cell,
            attempt=payload.get("attempt", 1),
            lease_ttl_s=float(payload.get("lease_ttl_s", 10.0)),
            heartbeat_every_s=float(payload.get("heartbeat_every_s", 2.0)),
        )


@dataclass
class TaskResult:
    """A worker's completion report for one lease (``POST /fleet/result``).

    The simulation outcome itself never crosses the wire: the worker stores
    it in the shared content-addressed outcome cache and reports the
    ``outcome_key`` it stored under; the broker side loads it from the
    cache.  That keeps the wire JSON-pure and makes retries free — a
    re-leased cell whose first worker finished (but whose result arrived
    after lease expiry) is a pure cache hit for the second worker.

    Attributes:
        lease_id: The lease being completed.
        worker_id: The reporting worker.
        ok: Whether the cell executed successfully.
        outcome_key: The shared-cache key the outcome was stored under
            (``ok=True`` only).
        cached: Whether the worker satisfied the cell from the shared
            cache rather than simulating.
        error: Failure description (``ok=False`` only).
    """

    lease_id: str
    worker_id: str
    ok: bool
    outcome_key: str | None = None
    cached: bool = False
    error: str | None = None

    def to_dict(self) -> dict:
        """JSON-safe form (the ``POST /fleet/result`` body)."""
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "lease_id": self.lease_id,
            "worker_id": self.worker_id,
            "ok": self.ok,
            "outcome_key": self.outcome_key,
            "cached": self.cached,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TaskResult":
        """Inverse of :meth:`to_dict`; validates shape and schema version."""
        if not isinstance(payload, dict):
            raise SchemaError(f"result body must be a JSON object, got "
                              f"{type(payload).__name__}")
        _check_wire_version(payload, "task result")
        lease_id = payload.get("lease_id", "")
        if not lease_id or not isinstance(lease_id, str):
            raise SchemaError(f"lease_id must be a non-empty string, "
                              f"got {lease_id!r}")
        ok = payload.get("ok")
        if not isinstance(ok, bool):
            raise SchemaError(f"result ok must be a boolean, got {ok!r}")
        return cls(
            lease_id=lease_id,
            worker_id=payload.get("worker_id", ""),
            ok=ok,
            outcome_key=payload.get("outcome_key"),
            cached=bool(payload.get("cached", False)),
            error=payload.get("error"),
        )
