"""Architectural register state."""

from __future__ import annotations

from repro.isa.registers import NUM_LOGICAL_REGS, ZERO_REG, reg_name
from repro.isa.semantics import mask64


class ArchState:
    """The architectural integer register file and program counter.

    Register ``r31`` reads as zero and ignores writes, as in the Alpha ISA.
    """

    def __init__(self, pc: int = 0):
        self.regs: list[int] = [0] * NUM_LOGICAL_REGS
        self.pc = pc

    def read(self, register: int) -> int:
        """Read a logical register (the zero register always reads 0)."""
        if register == ZERO_REG:
            return 0
        return self.regs[register]

    def write(self, register: int, value: int) -> None:
        """Write a logical register (writes to the zero register are dropped)."""
        if register == ZERO_REG:
            return
        self.regs[register] = mask64(value)

    def snapshot(self) -> tuple[int, ...]:
        """An immutable copy of all registers (zero register normalised to 0)."""
        values = list(self.regs)
        values[ZERO_REG] = 0
        return tuple(values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchState):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(
            f"{reg_name(index)}={value:#x}"
            for index, value in enumerate(self.regs)
            if value
        )
        return f"ArchState(pc={self.pc:#x}, {pairs})"
