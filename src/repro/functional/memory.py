"""Sparse, page-based byte-addressable memory."""

from __future__ import annotations

#: Page size in bytes.  Pages are allocated lazily on first touch.
PAGE_SIZE = 4096
_PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """A sparse 64-bit byte-addressable memory.

    Reads of untouched memory return zero, which lets workloads use large
    zero-initialised arrays without materialising them.  All multi-byte
    accesses are little-endian and may straddle page boundaries.
    """

    def __init__(self, initial: dict[int, int] | None = None):
        self._pages: dict[int, bytearray] = {}
        if initial:
            for address, value in initial.items():
                self.write(address, 1, value)

    # -- internal page helpers -------------------------------------------

    def _page_for(self, address: int) -> bytearray:
        page_number = address >> 12
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    # -- byte-granularity primitives ---------------------------------------

    def read_byte(self, address: int) -> int:
        page = self._pages.get(address >> 12)
        if page is None:
            return 0
        return page[address & _PAGE_MASK]

    def write_byte(self, address: int, value: int) -> None:
        self._page_for(address)[address & _PAGE_MASK] = value & 0xFF

    # -- multi-byte accessors ----------------------------------------------

    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes at ``address`` as an unsigned little-endian int."""
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            # Fast path: the access stays within one page, so it is a single
            # slice instead of a Python call per byte.
            page = self._pages.get(address >> 12)
            if page is None:
                return 0
            return int.from_bytes(page[offset:offset + size], "little")
        value = 0
        for index in range(size):
            value |= self.read_byte(address + index) << (8 * index)
        return value

    def write(self, address: int, size: int, value: int) -> None:
        """Write the low ``size`` bytes of ``value`` at ``address`` (little-endian)."""
        offset = address & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page = self._page_for(address)
            page[offset:offset + size] = (
                value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            return
        for index in range(size):
            self.write_byte(address + index, (value >> (8 * index)) & 0xFF)

    # -- conveniences used by tests and workload setup ----------------------

    def read_word(self, address: int) -> int:
        """Read a 64-bit word."""
        return self.read(address, 8)

    def write_word(self, address: int, value: int) -> None:
        """Write a 64-bit word."""
        self.write(address, 8, value)

    def copy(self) -> "Memory":
        """Return an independent deep copy of this memory."""
        clone = Memory()
        clone._pages = {number: bytearray(page) for number, page in self._pages.items()}
        return clone

    def touched_pages(self) -> int:
        """Number of pages that have been materialised (for tests/statistics)."""
        return len(self._pages)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        zero = bytearray(PAGE_SIZE)
        pages = set(self._pages) | set(other._pages)
        for number in pages:
            if self._pages.get(number, zero) != other._pages.get(number, zero):
                return False
        return True
