"""Dynamic instruction trace records and trace-level statistics.

The dynamic trace is the contract between the functional simulator and the
timing simulator: each record carries the architecturally correct operand
values, result, effective address and branch outcome, so the timing model can
(a) drive its branch predictor / caches with real addresses and outcomes and
(b) cross-check the values its own execute stage produces on the physical
register file — which is how RENO transformations are validated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction


class DynamicInstruction:
    """One dynamic (executed) instruction.

    Attributes:
        seq: Dynamic sequence number (0-based, retirement order).
        index: Static instruction index within the program.
        pc: Virtual address of the instruction.
        instruction: The static instruction.
        rs1_value: Architectural value of ``rs1`` at execution (or 0).
        rs2_value: Architectural value of ``rs2`` at execution (or 0).
        result: Value written to the destination register (or None).
        eff_addr: Effective address for loads/stores (or None).
        store_value: Value written to memory for stores (or None).
        taken: Branch direction for control instructions (or None).
        next_pc: Address of the next dynamic instruction.
        target_pc: Taken-path target for control instructions (or None).
    """

    __slots__ = (
        "seq",
        "index",
        "pc",
        "instruction",
        "rs1_value",
        "rs2_value",
        "result",
        "eff_addr",
        "store_value",
        "taken",
        "next_pc",
        "target_pc",
    )

    def __init__(
        self,
        seq: int,
        index: int,
        pc: int,
        instruction: Instruction,
        rs1_value: int = 0,
        rs2_value: int = 0,
        result: int | None = None,
        eff_addr: int | None = None,
        store_value: int | None = None,
        taken: bool | None = None,
        next_pc: int = 0,
        target_pc: int | None = None,
    ):
        self.seq = seq
        self.index = index
        self.pc = pc
        self.instruction = instruction
        self.rs1_value = rs1_value
        self.rs2_value = rs2_value
        self.result = result
        self.eff_addr = eff_addr
        self.store_value = store_value
        self.taken = taken
        self.next_pc = next_pc
        self.target_pc = target_pc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<#{self.seq} pc={self.pc:#x} {self.instruction}>"


@dataclass
class InstructionMix:
    """Dynamic instruction mix of a trace, as fractions of all instructions.

    The paper highlights the move fraction (~4 %) and the register-immediate
    addition fraction (12 % SPECint / 16-17 % MediaBench) as the raw material
    for RENO_ME and RENO_CF.
    """

    total: int = 0
    moves: int = 0
    reg_imm_adds: int = 0
    other_alu: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    calls_returns: int = 0
    other: int = 0

    def fraction(self, count: int) -> float:
        return count / self.total if self.total else 0.0

    @property
    def move_fraction(self) -> float:
        return self.fraction(self.moves)

    @property
    def reg_imm_add_fraction(self) -> float:
        return self.fraction(self.reg_imm_adds)

    @property
    def load_fraction(self) -> float:
        return self.fraction(self.loads)

    @property
    def store_fraction(self) -> float:
        return self.fraction(self.stores)

    @property
    def branch_fraction(self) -> float:
        return self.fraction(self.branches)


def mix_statistics(trace: list[DynamicInstruction]) -> InstructionMix:
    """Compute the dynamic instruction mix of ``trace``.

    Moves and non-move register-immediate additions are counted separately
    (``mov`` is technically a register-immediate addition of zero, but the
    paper reports them as distinct categories).
    """
    mix = InstructionMix(total=len(trace))
    for dyn in trace:
        instruction = dyn.instruction
        spec = instruction.spec
        if spec.is_move:
            mix.moves += 1
        elif spec.is_reg_imm_add:
            mix.reg_imm_adds += 1
        elif spec.is_load:
            mix.loads += 1
        elif spec.is_store:
            mix.stores += 1
        elif spec.is_cond_branch:
            mix.branches += 1
        elif spec.is_call or spec.is_return:
            mix.calls_returns += 1
        elif spec.op_class.value in ("alu", "shift", "mul", "div"):
            mix.other_alu += 1
        else:
            mix.other += 1
    return mix
