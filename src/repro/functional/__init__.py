"""Functional (architectural) simulation of AXP-lite programs.

The functional simulator executes a program to completion and records the
dynamic instruction trace.  The timing simulator in :mod:`repro.uarch`
consumes this trace (trace-driven, execute-in-execute), and the final
architectural state produced here is the golden reference used to validate
RENO's renaming transformations end to end.
"""

from repro.functional.memory import Memory
from repro.functional.state import ArchState
from repro.functional.trace import DynamicInstruction, InstructionMix, mix_statistics
from repro.functional.simulator import (
    ExecutionLimitExceeded,
    ExecutionResult,
    FunctionalSimulator,
)

__all__ = [
    "Memory",
    "ArchState",
    "DynamicInstruction",
    "InstructionMix",
    "mix_statistics",
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "FunctionalSimulator",
]
