"""The functional (architectural) simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.functional.memory import Memory
from repro.functional.state import ArchState
from repro.functional.trace import DynamicInstruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import DATA_BASE, INSTRUCTION_BYTES, STACK_BASE, Program
from repro.isa.registers import RegisterNames as R
from repro.isa.semantics import alu_eval, branch_taken, mask64, sign_extend


class ExecutionLimitExceeded(Exception):
    """Raised when a program does not halt within the instruction budget."""


@dataclass
class ExecutionResult:
    """Outcome of a functional simulation run.

    Attributes:
        program: The program that was executed.
        trace: The dynamic instruction trace in program (retirement) order.
            The trailing ``halt`` instruction is included.
        state: Final architectural register state.
        memory: Final memory contents.
        halted: True if the program executed a ``halt`` instruction.
        dynamic_count: Number of dynamic instructions executed.
    """

    program: Program
    trace: list[DynamicInstruction]
    state: ArchState
    memory: Memory
    halted: bool
    dynamic_count: int = 0
    extra: dict = field(default_factory=dict)


class FunctionalSimulator:
    """Executes AXP-lite programs architecturally and records their traces."""

    def __init__(self, program: Program, max_instructions: int = 2_000_000):
        """Create a simulator for ``program``.

        Args:
            program: The assembled program to run.
            max_instructions: Hard bound on dynamic instructions; exceeding it
                raises :class:`ExecutionLimitExceeded` (guards against
                workload bugs that would otherwise hang the test suite).
        """
        self.program = program
        self.max_instructions = max_instructions
        self.state = ArchState(pc=program.pc_of(program.entry))
        self.state.write(R.SP, STACK_BASE)
        self.state.write(R.GP, DATA_BASE)
        self.memory = Memory(program.initial_memory)

    def run(self, record_trace: bool = True) -> ExecutionResult:
        """Run the program to completion (or to the instruction budget).

        Args:
            record_trace: If False, the trace list is left empty; useful when
                only the final state or the dynamic count is needed.

        Returns:
            An :class:`ExecutionResult`.
        """
        program = self.program
        state = self.state
        trace: list[DynamicInstruction] = []
        # Hot-loop aliases (this loop runs once per dynamic instruction).
        instructions = program.instructions
        index_of = program.index_of
        execute_one = self._execute_one
        append = trace.append
        code_length = len(instructions)
        seq = 0
        halted = False

        while seq < self.max_instructions:
            index = index_of(state.pc)
            if index < 0 or index >= code_length:
                raise ExecutionLimitExceeded(
                    f"{program.name}: control transferred outside the code segment "
                    f"(pc={state.pc:#x})"
                )
            instruction = instructions[index]
            dyn = execute_one(seq, index, instruction)
            if record_trace:
                append(dyn)
            seq += 1
            if instruction.opcode is Opcode.HALT:
                halted = True
                break
            state.pc = dyn.next_pc
        else:
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded the budget of "
                f"{self.max_instructions} dynamic instructions"
            )

        return ExecutionResult(
            program=program,
            trace=trace,
            state=state,
            memory=self.memory,
            halted=halted,
            dynamic_count=seq,
        )

    # ------------------------------------------------------------------

    def _execute_one(self, seq: int, index: int, instruction) -> DynamicInstruction:
        """Execute a single instruction and build its trace record."""
        program = self.program
        state = self.state
        memory = self.memory
        spec = instruction.spec
        pc = state.pc
        fallthrough = pc + INSTRUCTION_BYTES

        rs1_value = state.read(instruction.rs1) if spec.reads_rs1 else 0
        rs2_value = state.read(instruction.rs2) if spec.reads_rs2 else 0

        result: int | None = None
        eff_addr: int | None = None
        store_value: int | None = None
        taken: bool | None = None
        target_pc: int | None = None
        next_pc = fallthrough

        op_class = spec.op_class
        if op_class in (OpClass.ALU, OpClass.SHIFT, OpClass.MUL, OpClass.DIV):
            result = alu_eval(instruction.opcode, rs1_value, rs2_value, instruction.imm)
            if instruction.rd is not None:
                state.write(instruction.rd, result)
        elif op_class is OpClass.LOAD:
            eff_addr = mask64(rs1_value + instruction.imm)
            raw = memory.read(eff_addr, spec.mem_bytes)
            result = sign_extend(raw, 8 * spec.mem_bytes) if spec.mem_signed else raw
            state.write(instruction.rd, result)
        elif op_class is OpClass.STORE:
            eff_addr = mask64(rs1_value + instruction.imm)
            store_value = rs2_value
            memory.write(eff_addr, spec.mem_bytes, store_value)
        elif op_class is OpClass.BRANCH:
            taken = branch_taken(instruction.opcode, rs1_value)
            target_pc = program.pc_of(instruction.target)
            next_pc = target_pc if taken else fallthrough
        elif op_class is OpClass.JUMP:
            taken = True
            target_pc = program.pc_of(instruction.target)
            next_pc = target_pc
        elif op_class is OpClass.CALL:
            taken = True
            result = fallthrough
            state.write(instruction.rd, result)
            target_pc = program.pc_of(instruction.target)
            next_pc = target_pc
        elif op_class is OpClass.RET:
            taken = True
            target_pc = rs1_value
            next_pc = target_pc
        elif op_class in (OpClass.NOP, OpClass.HALT):
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled op class {op_class}")

        return DynamicInstruction(
            seq, index, pc, instruction, rs1_value, rs2_value, result,
            eff_addr, store_value, taken, next_pc, target_pc,
        )
