"""MediaBench-like synthetic kernels.

One kernel per benchmark row in the paper's MediaBench figures.  These are
integer/fixed-point DSP kernels: streaming array access with address
increments, multiply-accumulate recurrences, clamping branches and byte I/O.
That structure is what gives MediaBench its higher register-immediate-addition
fraction (16-17 % in the paper) and its ALU criticality.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import RegisterNames as R
from repro.workloads.base import register
from repro.workloads.builder import (
    emit_argument_moves,
    lcg_bytes,
    lcg_sequence,
    scaled,
)

#: A small IMA-ADPCM style step-size table (subset of the real 89-entry table).
_STEP_TABLE = [7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
               34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143]


# ---------------------------------------------------------------------------
# ADPCM
# ---------------------------------------------------------------------------


@register("adpcm_encode_like", "mediabench", "IMA-ADPCM style sample encoder.", paper_name="adpcm.en")
def adpcm_encode_like(scale: int = 1) -> Program:
    samples = scaled(128, scale)
    asm = Assembler("adpcm_encode_like")
    asm.word_array("samples", lcg_sequence(211, samples, 2048))
    asm.word_array("steps", _STEP_TABLE)
    asm.zeros("codes", (samples + 7) // 8 + 1)
    asm.la(R.S0, "samples")
    asm.la(R.S1, "steps")
    asm.la(R.S2, "codes")
    asm.li(R.S3, samples)
    asm.li(R.S4, 0)                  # predicted value
    asm.li(R.S5, 0)                  # step index
    asm.li(R.V0, 0)

    asm.label("sample")
    asm.ld(R.T0, 0, R.S0)
    asm.sub(R.T1, R.T0, R.S4)        # diff
    asm.li(R.T2, 0)                  # sign bit
    asm.bge(R.T1, "positive")
    asm.li(R.T2, 8)
    asm.sub(R.T1, R.ZERO, R.T1)
    asm.label("positive")
    # current step size
    asm.slli(R.T3, R.S5, 3)
    asm.add(R.T3, R.S1, R.T3)
    asm.ld(R.T4, 0, R.T3)
    # quantise diff against step, building a 3-bit code
    asm.li(R.T5, 0)
    asm.cmplt(R.T6, R.T1, R.T4)
    asm.bne(R.T6, "q1")
    asm.ori(R.T5, R.T5, 4)
    asm.sub(R.T1, R.T1, R.T4)
    asm.label("q1")
    asm.srai(R.T7, R.T4, 1)
    asm.cmplt(R.T6, R.T1, R.T7)
    asm.bne(R.T6, "q2")
    asm.ori(R.T5, R.T5, 2)
    asm.sub(R.T1, R.T1, R.T7)
    asm.label("q2")
    asm.srai(R.T7, R.T4, 2)
    asm.cmplt(R.T6, R.T1, R.T7)
    asm.bne(R.T6, "q3")
    asm.ori(R.T5, R.T5, 1)
    asm.label("q3")
    asm.or_(R.T5, R.T5, R.T2)
    # update the predictor by the quantised amount
    asm.andi(R.T8, R.T5, 7)
    asm.mul(R.T9, R.T8, R.T4)
    asm.srai(R.T9, R.T9, 2)
    asm.beq(R.T2, "pred_up")
    asm.sub(R.S4, R.S4, R.T9)
    asm.br("pred_done")
    asm.label("pred_up")
    asm.add(R.S4, R.S4, R.T9)
    asm.label("pred_done")
    # update the step index (+1 for large codes, -1 otherwise), clamped
    asm.cmplei(R.T6, R.T8, 3)
    asm.beq(R.T6, "idx_up")
    asm.subi(R.S5, R.S5, 1)
    asm.br("idx_clamp")
    asm.label("idx_up")
    asm.addi(R.S5, R.S5, 1)
    asm.label("idx_clamp")
    asm.bge(R.S5, "idx_low_ok")
    asm.li(R.S5, 0)
    asm.label("idx_low_ok")
    asm.cmplti(R.T6, R.S5, 32)
    asm.bne(R.T6, "idx_high_ok")
    asm.li(R.S5, 31)
    asm.label("idx_high_ok")
    # emit the code
    asm.add(R.T10, R.S2, R.V0)
    asm.stb(R.T5, 0, R.T10)
    asm.addi(R.V0, R.V0, 1)
    asm.addi(R.S0, R.S0, 8)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "sample")
    asm.halt()
    return asm.assemble()


@register("adpcm_decode_like", "mediabench", "IMA-ADPCM style sample decoder.", paper_name="adpcm.de")
def adpcm_decode_like(scale: int = 1) -> Program:
    codes = scaled(144, scale)
    asm = Assembler("adpcm_decode_like")
    asm.byte_array("codes", lcg_bytes(223, codes, 16))
    asm.word_array("steps", _STEP_TABLE)
    asm.zeros("samples", codes)
    asm.la(R.S0, "codes")
    asm.la(R.S1, "steps")
    asm.la(R.S2, "samples")
    asm.li(R.S3, codes)
    asm.li(R.S4, 0)                  # predicted value
    asm.li(R.S5, 0)                  # step index
    asm.li(R.V0, 0)

    asm.label("code")
    asm.ldbu(R.T0, 0, R.S0)
    asm.andi(R.T1, R.T0, 7)          # magnitude
    asm.andi(R.T2, R.T0, 8)          # sign
    asm.slli(R.T3, R.S5, 3)
    asm.add(R.T3, R.S1, R.T3)
    asm.ld(R.T4, 0, R.T3)            # step
    asm.mul(R.T5, R.T1, R.T4)
    asm.srai(R.T5, R.T5, 2)
    asm.beq(R.T2, "add_delta")
    asm.sub(R.S4, R.S4, R.T5)
    asm.br("delta_done")
    asm.label("add_delta")
    asm.add(R.S4, R.S4, R.T5)
    asm.label("delta_done")
    # clamp the predictor to a 16-bit range
    asm.li(R.T6, 32767)
    asm.cmplt(R.T7, R.T6, R.S4)
    asm.beq(R.T7, "no_clip_high")
    asm.mov(R.S4, R.T6)
    asm.label("no_clip_high")
    asm.li(R.T6, -32768)
    asm.cmplt(R.T7, R.S4, R.T6)
    asm.beq(R.T7, "no_clip_low")
    asm.mov(R.S4, R.T6)
    asm.label("no_clip_low")
    # adapt the step index
    asm.cmplei(R.T7, R.T1, 3)
    asm.beq(R.T7, "bump")
    asm.subi(R.S5, R.S5, 1)
    asm.br("clamp_idx")
    asm.label("bump")
    asm.addi(R.S5, R.S5, 2)
    asm.label("clamp_idx")
    asm.bge(R.S5, "idx_ok")
    asm.li(R.S5, 0)
    asm.label("idx_ok")
    asm.cmplti(R.T7, R.S5, 32)
    asm.bne(R.T7, "idx_ok2")
    asm.li(R.S5, 31)
    asm.label("idx_ok2")
    asm.st(R.S4, 0, R.S2)
    asm.add(R.V0, R.V0, R.S4)
    asm.addi(R.S0, R.S0, 1)
    asm.addi(R.S2, R.S2, 8)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "code")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# EPIC / UNEPIC: wavelet analysis and reconstruction
# ---------------------------------------------------------------------------


@register("epic_like", "mediabench", "Haar-style wavelet analysis passes.", paper_name="epic")
def epic_like(scale: int = 1) -> Program:
    length = 64
    passes = scaled(6, scale)
    asm = Assembler("epic_like")
    asm.word_array("signal", lcg_sequence(227, length, 1024))
    asm.zeros("low", length // 2)
    asm.zeros("high", length // 2)
    asm.li(R.S5, passes)
    asm.li(R.V0, 0)

    asm.label("pass")
    asm.la(R.S0, "signal")
    asm.la(R.S1, "low")
    asm.la(R.S2, "high")
    asm.li(R.T0, length // 2)
    asm.label("pair")
    asm.ld(R.T1, 0, R.S0)
    asm.ld(R.T2, 8, R.S0)
    asm.add(R.T3, R.T1, R.T2)
    asm.srai(R.T3, R.T3, 1)          # average
    asm.sub(R.T4, R.T1, R.T2)
    asm.srai(R.T4, R.T4, 1)          # difference
    asm.st(R.T3, 0, R.S1)
    asm.st(R.T4, 0, R.S2)
    asm.add(R.V0, R.V0, R.T3)
    asm.addi(R.S0, R.S0, 16)
    asm.addi(R.S1, R.S1, 8)
    asm.addi(R.S2, R.S2, 8)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "pair")
    # feed the low band back for the next pass
    asm.la(R.S0, "signal")
    asm.la(R.S1, "low")
    asm.li(R.T0, length // 2)
    asm.label("copy_back")
    asm.ld(R.T1, 0, R.S1)
    asm.st(R.T1, 0, R.S0)
    asm.addi(R.S0, R.S0, 8)
    asm.addi(R.S1, R.S1, 8)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "copy_back")
    asm.subi(R.S5, R.S5, 1)
    asm.bgt(R.S5, "pass")
    asm.halt()
    return asm.assemble()


@register("unepic_like", "mediabench", "Haar-style wavelet reconstruction.", paper_name="unepic")
def unepic_like(scale: int = 1) -> Program:
    length = 64
    passes = scaled(6, scale)
    asm = Assembler("unepic_like")
    asm.word_array("low", lcg_sequence(229, length // 2, 512))
    asm.word_array("high", lcg_sequence(233, length // 2, 64))
    asm.zeros("signal", length)
    asm.li(R.S5, passes)
    asm.li(R.V0, 0)

    asm.label("pass")
    asm.la(R.S0, "low")
    asm.la(R.S1, "high")
    asm.la(R.S2, "signal")
    asm.li(R.T0, length // 2)
    asm.label("pair")
    asm.ld(R.T1, 0, R.S0)
    asm.ld(R.T2, 0, R.S1)
    asm.add(R.T3, R.T1, R.T2)        # even sample
    asm.sub(R.T4, R.T1, R.T2)        # odd sample
    asm.st(R.T3, 0, R.S2)
    asm.st(R.T4, 8, R.S2)
    asm.add(R.V0, R.V0, R.T4)
    asm.addi(R.S0, R.S0, 8)
    asm.addi(R.S1, R.S1, 8)
    asm.addi(R.S2, R.S2, 16)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "pair")
    asm.subi(R.S5, R.S5, 1)
    asm.bgt(R.S5, "pass")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# G.721: adaptive prediction
# ---------------------------------------------------------------------------


def _g721_kernel(name: str, paper: str, seed: int, scale: int, decode: bool) -> Program:
    samples = scaled(112, scale)
    asm = Assembler(name)
    asm.word_array("input", lcg_sequence(seed, samples, 4096))
    asm.zeros("output", samples)
    asm.la(R.S0, "input")
    asm.la(R.S1, "output")
    asm.li(R.S2, samples)
    asm.li(R.S3, 0)                  # state: previous sample
    asm.li(R.S4, 64)                 # weight 1 (Q6 fixed point)
    asm.li(R.S5, 16)                 # weight 2
    asm.li(R.FP, 0)                  # state: sample before previous
    asm.li(R.V0, 0)

    asm.label("sample")
    asm.ld(R.T0, 0, R.S0)
    # prediction = (w1 * prev + w2 * prevprev) >> 6
    asm.mul(R.T1, R.S4, R.S3)
    asm.mul(R.T2, R.S5, R.FP)
    asm.add(R.T1, R.T1, R.T2)
    asm.srai(R.T1, R.T1, 6)
    asm.sub(R.T3, R.T0, R.T1)        # prediction error
    if decode:
        # decoder reconstructs from a quantised error
        asm.srai(R.T4, R.T3, 2)
        asm.slli(R.T4, R.T4, 2)
        asm.add(R.T5, R.T1, R.T4)
    else:
        asm.mov(R.T5, R.T3)
    # adapt weights by the sign of the error
    asm.bge(R.T3, "err_pos")
    asm.subi(R.S4, R.S4, 1)
    asm.addi(R.S5, R.S5, 1)
    asm.br("adapted")
    asm.label("err_pos")
    asm.addi(R.S4, R.S4, 1)
    asm.subi(R.S5, R.S5, 1)
    asm.label("adapted")
    asm.st(R.T5, 0, R.S1)
    asm.add(R.V0, R.V0, R.T5)
    asm.mov(R.FP, R.S3)
    asm.mov(R.S3, R.T0)
    asm.addi(R.S0, R.S0, 8)
    asm.addi(R.S1, R.S1, 8)
    asm.subi(R.S2, R.S2, 1)
    asm.bgt(R.S2, "sample")
    asm.halt()
    return asm.assemble()


@register("g721_encode_like", "mediabench", "ADPCM G.721-style adaptive predictor (encode).", paper_name="g721.en")
def g721_encode_like(scale: int = 1) -> Program:
    return _g721_kernel("g721_encode_like", "g721.en", 239, scale, decode=False)


@register("g721_decode_like", "mediabench", "ADPCM G.721-style adaptive predictor (decode).", paper_name="g721.de")
def g721_decode_like(scale: int = 1) -> Program:
    return _g721_kernel("g721_decode_like", "g721.de", 241, scale, decode=True)


# ---------------------------------------------------------------------------
# ghostscript: span filling
# ---------------------------------------------------------------------------


@register("gs_like", "mediabench", "Scanline span filling into a byte framebuffer.", paper_name="gs.de")
def gs_like(scale: int = 1) -> Program:
    spans = scaled(48, scale)
    width = 64
    asm = Assembler("gs_like")
    starts = lcg_sequence(251, spans, width // 2)
    lengths = [max(2, value) for value in lcg_sequence(257, spans, width // 2)]
    colors = lcg_sequence(263, spans, 250)
    interleaved = []
    for index in range(spans):
        interleaved.extend([starts[index], lengths[index], colors[index]])
    asm.word_array("spans", interleaved)
    asm.zeros("framebuffer", (spans * width) // 8 + width)
    asm.la(R.S0, "spans")
    asm.la(R.S1, "framebuffer")
    asm.li(R.S2, spans)
    asm.li(R.S3, 0)                  # scanline base offset
    asm.li(R.V0, 0)

    asm.label("span")
    asm.ld(R.T0, 0, R.S0)            # start
    asm.ld(R.T1, 8, R.S0)            # length
    asm.ld(R.T2, 16, R.S0)           # colour
    asm.add(R.T3, R.S1, R.S3)
    asm.add(R.T3, R.T3, R.T0)        # fill pointer
    asm.mov(R.T4, R.T1)
    asm.label("fill")
    asm.stb(R.T2, 0, R.T3)
    asm.addi(R.T3, R.T3, 1)
    asm.subi(R.T4, R.T4, 1)
    asm.bgt(R.T4, "fill")
    asm.add(R.V0, R.V0, R.T1)
    asm.addi(R.S3, R.S3, width)
    asm.addi(R.S0, R.S0, 24)
    asm.subi(R.S2, R.S2, 1)
    asm.bgt(R.S2, "span")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# GSM: long-term prediction / autocorrelation
# ---------------------------------------------------------------------------


@register("gsm_encode_like", "mediabench", "Autocorrelation + LTP lag search (encode).", paper_name="gsm.en")
def gsm_encode_like(scale: int = 1) -> Program:
    frames = scaled(6, scale)
    window = 32
    lags = 8
    asm = Assembler("gsm_encode_like")
    asm.word_array("signal", lcg_sequence(269, window + lags + frames, 256))
    asm.la(R.S0, "signal")
    asm.li(R.S1, frames)
    asm.li(R.V0, 0)

    asm.label("frame")
    asm.li(R.S2, lags)
    asm.li(R.S3, 0)                  # best correlation
    asm.label("lag")
    # correlation between signal[i] and signal[i+lag]
    asm.mov(R.T0, R.S0)
    asm.slli(R.T1, R.S2, 3)
    asm.add(R.T1, R.T0, R.T1)
    asm.li(R.T2, window)
    asm.li(R.T3, 0)
    asm.label("mac")
    asm.ld(R.T4, 0, R.T0)
    asm.ld(R.T5, 0, R.T1)
    asm.mul(R.T6, R.T4, R.T5)
    asm.srai(R.T6, R.T6, 4)
    asm.add(R.T3, R.T3, R.T6)
    asm.addi(R.T0, R.T0, 8)
    asm.addi(R.T1, R.T1, 8)
    asm.subi(R.T2, R.T2, 1)
    asm.bgt(R.T2, "mac")
    asm.cmplt(R.T7, R.S3, R.T3)
    asm.beq(R.T7, "not_better")
    asm.mov(R.S3, R.T3)
    asm.label("not_better")
    asm.subi(R.S2, R.S2, 1)
    asm.bgt(R.S2, "lag")
    asm.add(R.V0, R.V0, R.S3)
    asm.addi(R.S0, R.S0, 8)
    asm.subi(R.S1, R.S1, 1)
    asm.bgt(R.S1, "frame")
    asm.halt()
    return asm.assemble()


@register("gsm_decode_like", "mediabench", "Short-term synthesis filter (decode).", paper_name="gsm.de")
def gsm_decode_like(scale: int = 1) -> Program:
    samples = scaled(96, scale)
    taps = 8
    asm = Assembler("gsm_decode_like")
    asm.word_array("residual", lcg_sequence(271, samples + taps, 128))
    asm.word_array("coeffs", lcg_sequence(277, taps, 32))
    asm.zeros("speech", samples)
    asm.la(R.S0, "residual")
    asm.la(R.S1, "coeffs")
    asm.la(R.S2, "speech")
    asm.li(R.S3, samples)
    asm.li(R.V0, 0)

    asm.label("sample")
    asm.li(R.T0, taps)
    asm.li(R.T1, 0)                  # accumulator
    asm.mov(R.T2, R.S0)
    asm.mov(R.T3, R.S1)
    asm.label("tap")
    asm.ld(R.T4, 0, R.T2)
    asm.ld(R.T5, 0, R.T3)
    asm.mul(R.T6, R.T4, R.T5)
    asm.add(R.T1, R.T1, R.T6)
    asm.addi(R.T2, R.T2, 8)
    asm.addi(R.T3, R.T3, 8)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "tap")
    asm.srai(R.T1, R.T1, 6)
    asm.st(R.T1, 0, R.S2)
    asm.add(R.V0, R.V0, R.T1)
    asm.addi(R.S0, R.S0, 8)
    asm.addi(R.S2, R.S2, 8)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "sample")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# JPEG: DCT butterflies and quantisation
# ---------------------------------------------------------------------------


@register("jpeg_encode_like", "mediabench", "Forward DCT butterfly + quantisation.", paper_name="jpg.en")
def jpeg_encode_like(scale: int = 1) -> Program:
    blocks = scaled(12, scale)
    asm = Assembler("jpeg_encode_like")
    asm.word_array("pixels", lcg_sequence(281, 8 * blocks, 256))
    asm.word_array("quant", [16, 11, 10, 16, 24, 40, 51, 61])
    asm.zeros("coeffs", 8 * blocks)
    asm.la(R.S0, "pixels")
    asm.la(R.S1, "coeffs")
    asm.la(R.S2, "quant")
    asm.li(R.S3, blocks)
    asm.li(R.V0, 0)

    asm.label("block")
    # 8-point butterfly (first stage of an integer DCT)
    for pair in range(4):
        asm.ld(R.T0, 8 * pair, R.S0)
        asm.ld(R.T1, 8 * (7 - pair), R.S0)
        asm.add(R.T2, R.T0, R.T1)
        asm.sub(R.T3, R.T0, R.T1)
        asm.muli(R.T2, R.T2, 3)
        asm.srai(R.T2, R.T2, 1)
        asm.muli(R.T3, R.T3, 5)
        asm.srai(R.T3, R.T3, 2)
        asm.st(R.T2, 8 * pair, R.S1)
        asm.st(R.T3, 8 * (7 - pair), R.S1)
    # quantise the eight coefficients
    asm.li(R.T4, 8)
    asm.mov(R.T5, R.S1)
    asm.mov(R.T6, R.S2)
    asm.label("quantise")
    asm.ld(R.T7, 0, R.T5)
    asm.ld(R.T8, 0, R.T6)
    asm.div(R.T9, R.T7, R.T8)
    asm.st(R.T9, 0, R.T5)
    asm.add(R.V0, R.V0, R.T9)
    asm.addi(R.T5, R.T5, 8)
    asm.addi(R.T6, R.T6, 8)
    asm.subi(R.T4, R.T4, 1)
    asm.bgt(R.T4, "quantise")
    asm.addi(R.S0, R.S0, 64)
    asm.addi(R.S1, R.S1, 64)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "block")
    asm.halt()
    return asm.assemble()


@register("jpeg_decode_like", "mediabench", "Dequantisation + inverse butterfly with clamping.", paper_name="jpg.de")
def jpeg_decode_like(scale: int = 1) -> Program:
    blocks = scaled(12, scale)
    asm = Assembler("jpeg_decode_like")
    asm.word_array("coeffs", lcg_sequence(283, 8 * blocks, 64))
    asm.word_array("quant", [16, 11, 10, 16, 24, 40, 51, 61])
    asm.zeros("pixels", blocks)      # packed byte output, one word per block
    asm.la(R.S0, "coeffs")
    asm.la(R.S1, "quant")
    asm.la(R.S2, "pixels")
    asm.li(R.S3, blocks)
    asm.li(R.V0, 0)

    asm.label("block")
    asm.li(R.T0, 8)
    asm.mov(R.T1, R.S0)
    asm.mov(R.T2, R.S1)
    asm.li(R.S4, 0)                  # byte lane
    asm.label("coef")
    asm.ld(R.T3, 0, R.T1)
    asm.ld(R.T4, 0, R.T2)
    asm.mul(R.T5, R.T3, R.T4)        # dequantise
    asm.srai(R.T5, R.T5, 3)
    asm.addi(R.T5, R.T5, 128)        # level shift
    # clamp to [0, 255]
    asm.bge(R.T5, "not_negative")
    asm.li(R.T5, 0)
    asm.label("not_negative")
    asm.cmplti(R.T6, R.T5, 256)
    asm.bne(R.T6, "clamped")
    asm.li(R.T5, 255)
    asm.label("clamped")
    asm.add(R.T7, R.S2, R.S4)
    asm.stb(R.T5, 0, R.T7)
    asm.add(R.V0, R.V0, R.T5)
    asm.addi(R.S4, R.S4, 1)
    asm.addi(R.T1, R.T1, 8)
    asm.addi(R.T2, R.T2, 8)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "coef")
    asm.addi(R.S0, R.S0, 64)
    asm.addi(R.S2, R.S2, 8)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "block")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# Mesa: software 3D pipeline kernels (three demos)
# ---------------------------------------------------------------------------


@register("mesa_mipmap_like", "mediabench", "2x2 box-filter mipmap reduction.", paper_name="mesa.m")
def mesa_mipmap_like(scale: int = 1) -> Program:
    size = 16                         # source image is size x size bytes
    images = scaled(4, scale)
    asm = Assembler("mesa_mipmap_like")
    asm.byte_array("source", lcg_bytes(293, size * size * images, 256))
    asm.zeros("dest", (size * size * images) // 8)
    asm.la(R.S0, "source")
    asm.la(R.S1, "dest")
    asm.li(R.S2, images)
    asm.li(R.V0, 0)

    asm.label("image")
    asm.li(R.S3, size // 2)          # destination rows
    asm.label("row")
    asm.li(R.T0, size // 2)          # destination columns
    asm.label("col")
    asm.ldbu(R.T1, 0, R.S0)
    asm.ldbu(R.T2, 1, R.S0)
    asm.ldbu(R.T3, size, R.S0)
    asm.ldbu(R.T4, size + 1, R.S0)
    asm.add(R.T5, R.T1, R.T2)
    asm.add(R.T5, R.T5, R.T3)
    asm.add(R.T5, R.T5, R.T4)
    asm.srai(R.T5, R.T5, 2)
    asm.stb(R.T5, 0, R.S1)
    asm.add(R.V0, R.V0, R.T5)
    asm.addi(R.S0, R.S0, 2)
    asm.addi(R.S1, R.S1, 1)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "col")
    asm.addi(R.S0, R.S0, size)       # skip the odd source row
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "row")
    asm.subi(R.S2, R.S2, 1)
    asm.bgt(R.S2, "image")
    asm.halt()
    return asm.assemble()


@register("mesa_osdemo_like", "mediabench", "Fixed-point 4x4 vertex transformation.", paper_name="mesa.o")
def mesa_osdemo_like(scale: int = 1) -> Program:
    vertices = scaled(24, scale)
    asm = Assembler("mesa_osdemo_like")
    asm.word_array("matrix", lcg_sequence(307, 16, 64))
    asm.word_array("verts", lcg_sequence(311, 4 * vertices, 256))
    asm.zeros("out", 4 * vertices)
    asm.la(R.S0, "verts")
    asm.la(R.S1, "out")
    asm.la(R.S2, "matrix")
    asm.li(R.S3, vertices)
    asm.li(R.V0, 0)

    asm.label("vertex")
    asm.li(R.T0, 4)                  # output component
    asm.mov(R.T1, R.S2)              # matrix row pointer
    asm.mov(R.T11, R.S1)
    asm.label("component")
    asm.li(R.T2, 0)                  # dot product accumulator
    asm.mov(R.T3, R.S0)
    asm.li(R.T4, 4)
    asm.label("dot")
    asm.ld(R.T5, 0, R.T1)
    asm.ld(R.T6, 0, R.T3)
    asm.mul(R.T7, R.T5, R.T6)
    asm.add(R.T2, R.T2, R.T7)
    asm.addi(R.T1, R.T1, 8)
    asm.addi(R.T3, R.T3, 8)
    asm.subi(R.T4, R.T4, 1)
    asm.bgt(R.T4, "dot")
    asm.srai(R.T2, R.T2, 6)
    asm.st(R.T2, 0, R.T11)
    asm.add(R.V0, R.V0, R.T2)
    asm.addi(R.T11, R.T11, 8)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "component")
    asm.addi(R.S0, R.S0, 32)
    asm.addi(R.S1, R.S1, 32)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "vertex")
    asm.halt()
    return asm.assemble()


@register("mesa_texgen_like", "mediabench", "Texture-coordinate generation (per-vertex dot products).", paper_name="mesa.t")
def mesa_texgen_like(scale: int = 1) -> Program:
    vertices = scaled(32, scale)
    asm = Assembler("mesa_texgen_like")
    asm.word_array("normals", lcg_sequence(313, 3 * vertices, 128))
    asm.zeros("texcoords", 2 * vertices)
    asm.la(R.S0, "normals")
    asm.la(R.S1, "texcoords")
    asm.li(R.S2, vertices)
    asm.li(R.V0, 0)
    splane = (9, 3, 5)
    tplane = (2, 7, 11)

    asm.label("vertex")
    asm.ld(R.T0, 0, R.S0)
    asm.ld(R.T1, 8, R.S0)
    asm.ld(R.T2, 16, R.S0)
    # s = n . splane, t = n . tplane (fixed point, then bias)
    asm.muli(R.T3, R.T0, splane[0])
    asm.muli(R.T4, R.T1, splane[1])
    asm.muli(R.T5, R.T2, splane[2])
    asm.add(R.T3, R.T3, R.T4)
    asm.add(R.T3, R.T3, R.T5)
    asm.srai(R.T3, R.T3, 4)
    asm.addi(R.T3, R.T3, 64)
    asm.muli(R.T6, R.T0, tplane[0])
    asm.muli(R.T7, R.T1, tplane[1])
    asm.muli(R.T8, R.T2, tplane[2])
    asm.add(R.T6, R.T6, R.T7)
    asm.add(R.T6, R.T6, R.T8)
    asm.srai(R.T6, R.T6, 4)
    asm.addi(R.T6, R.T6, 64)
    asm.st(R.T3, 0, R.S1)
    asm.st(R.T6, 8, R.S1)
    asm.add(R.V0, R.V0, R.T3)
    asm.add(R.V0, R.V0, R.T6)
    asm.addi(R.S0, R.S0, 24)
    asm.addi(R.S1, R.S1, 16)
    asm.subi(R.S2, R.S2, 1)
    asm.bgt(R.S2, "vertex")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# MPEG-2: motion compensation (decode) and SAD motion search (encode)
# ---------------------------------------------------------------------------


@register("mpeg2_decode_like", "mediabench", "Motion compensation with saturation.", paper_name="mpg2.de")
def mpeg2_decode_like(scale: int = 1) -> Program:
    blocks = scaled(10, scale)
    block_pixels = 16
    asm = Assembler("mpeg2_decode_like")
    asm.byte_array("reference", lcg_bytes(331, blocks * block_pixels + 64, 256))
    asm.word_array("residual", [value - 64 for value in lcg_sequence(337, blocks * block_pixels, 128)])
    asm.zeros("frame", (blocks * block_pixels) // 8 + 1)
    asm.la(R.S0, "reference")
    asm.la(R.S1, "residual")
    asm.la(R.S2, "frame")
    asm.li(R.S3, blocks)
    asm.li(R.V0, 0)

    asm.label("block")
    asm.li(R.T0, block_pixels)
    asm.label("pixel")
    asm.ldbu(R.T1, 0, R.S0)
    asm.ld(R.T2, 0, R.S1)
    asm.add(R.T3, R.T1, R.T2)
    asm.bge(R.T3, "not_neg")
    asm.li(R.T3, 0)
    asm.label("not_neg")
    asm.cmplti(R.T4, R.T3, 256)
    asm.bne(R.T4, "in_range")
    asm.li(R.T3, 255)
    asm.label("in_range")
    asm.stb(R.T3, 0, R.S2)
    asm.add(R.V0, R.V0, R.T3)
    asm.addi(R.S0, R.S0, 1)
    asm.addi(R.S1, R.S1, 8)
    asm.addi(R.S2, R.S2, 1)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "pixel")
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "block")
    asm.halt()
    return asm.assemble()


@register("mpeg2_encode_like", "mediabench", "Sum-of-absolute-differences motion search.", paper_name="mpg2.en")
def mpeg2_encode_like(scale: int = 1) -> Program:
    blocks = scaled(6, scale)
    block_pixels = 16
    candidates = 4
    asm = Assembler("mpeg2_encode_like")
    asm.byte_array("current", lcg_bytes(347, blocks * block_pixels, 256))
    asm.byte_array("reference", lcg_bytes(349, blocks * block_pixels + candidates * 4 + 8, 256))
    asm.zeros("best", blocks)
    asm.la(R.S0, "current")
    asm.la(R.S1, "reference")
    asm.la(R.S2, "best")
    asm.li(R.S3, blocks)
    asm.li(R.V0, 0)

    asm.label("block")
    asm.li(R.S4, candidates)
    asm.li(R.S5, 1 << 20)            # best SAD so far
    asm.label("candidate")
    asm.mov(R.T0, R.S0)
    asm.slli(R.T1, R.S4, 2)
    asm.add(R.T1, R.S1, R.T1)        # candidate pointer
    asm.li(R.T2, block_pixels)
    asm.li(R.T3, 0)                  # SAD
    asm.label("diff")
    asm.ldbu(R.T4, 0, R.T0)
    asm.ldbu(R.T5, 0, R.T1)
    asm.sub(R.T6, R.T4, R.T5)
    asm.bge(R.T6, "abs_done")
    asm.sub(R.T6, R.ZERO, R.T6)
    asm.label("abs_done")
    asm.add(R.T3, R.T3, R.T6)
    asm.addi(R.T0, R.T0, 1)
    asm.addi(R.T1, R.T1, 1)
    asm.subi(R.T2, R.T2, 1)
    asm.bgt(R.T2, "diff")
    asm.cmplt(R.T7, R.T3, R.S5)
    asm.beq(R.T7, "not_better")
    asm.mov(R.S5, R.T3)
    asm.label("not_better")
    asm.subi(R.S4, R.S4, 1)
    asm.bgt(R.S4, "candidate")
    asm.st(R.S5, 0, R.S2)
    asm.add(R.V0, R.V0, R.S5)
    asm.addi(R.S2, R.S2, 8)
    asm.addi(R.S0, R.S0, block_pixels)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "block")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# Pegwit: public-key-ish modular arithmetic and stream mixing
# ---------------------------------------------------------------------------


@register("pegwit_encode_like", "mediabench", "Square-and-multiply modular exponentiation.", paper_name="pegw.en")
def pegwit_encode_like(scale: int = 1) -> Program:
    messages = scaled(24, scale)
    modulus = 30011
    asm = Assembler("pegwit_encode_like")
    asm.word_array("messages", lcg_sequence(353, messages, modulus))
    asm.zeros("cipher", messages)
    asm.la(R.S0, "messages")
    asm.la(R.S1, "cipher")
    asm.li(R.S2, messages)
    asm.li(R.S3, modulus)
    asm.li(R.V0, 0)

    asm.label("message")
    asm.ld(R.T0, 0, R.S0)            # base
    asm.li(R.T1, 17)                 # exponent
    asm.li(R.T2, 1)                  # result
    asm.label("expo")
    asm.andi(R.T3, R.T1, 1)
    asm.beq(R.T3, "skip_mul")
    asm.mul(R.T2, R.T2, R.T0)
    # result %= modulus  (via divide/multiply/subtract)
    asm.div(R.T4, R.T2, R.S3)
    asm.mul(R.T5, R.T4, R.S3)
    asm.sub(R.T2, R.T2, R.T5)
    asm.label("skip_mul")
    asm.mul(R.T0, R.T0, R.T0)
    asm.div(R.T4, R.T0, R.S3)
    asm.mul(R.T5, R.T4, R.S3)
    asm.sub(R.T0, R.T0, R.T5)
    asm.srli(R.T1, R.T1, 1)
    asm.bgt(R.T1, "expo")
    asm.st(R.T2, 0, R.S1)
    asm.add(R.V0, R.V0, R.T2)
    asm.addi(R.S0, R.S0, 8)
    asm.addi(R.S1, R.S1, 8)
    asm.subi(R.S2, R.S2, 1)
    asm.bgt(R.S2, "message")
    asm.halt()
    return asm.assemble()


@register("pegwit_decode_like", "mediabench", "Keystream mixing and integrity checksum.", paper_name="pegw.de")
def pegwit_decode_like(scale: int = 1) -> Program:
    words = scaled(80, scale)
    asm = Assembler("pegwit_decode_like")
    asm.word_array("cipher", lcg_sequence(359, words, 1 << 30))
    asm.zeros("plain", words)
    asm.la(R.S0, "cipher")
    asm.la(R.S1, "plain")
    asm.li(R.S2, words)
    asm.li(R.S3, 0x1234)             # keystream state
    asm.li(R.V0, 0)

    asm.label("word")
    asm.ld(R.T0, 0, R.S0)
    # advance the keystream: state = (state * 75 + 74) & 0xFFFF
    asm.muli(R.T1, R.S3, 75)
    asm.addi(R.T1, R.T1, 74)
    asm.andi(R.S3, R.T1, 0x7FFF)
    asm.xor(R.T2, R.T0, R.S3)
    asm.st(R.T2, 0, R.S1)
    # rolling checksum
    asm.slli(R.T3, R.V0, 1)
    asm.add(R.V0, R.T3, R.T2)
    asm.li(R.T4, 0xFFFF)
    asm.and_(R.V0, R.V0, R.T4)
    asm.addi(R.S0, R.S0, 8)
    asm.addi(R.S1, R.S1, 8)
    asm.subi(R.S2, R.S2, 1)
    asm.bgt(R.S2, "word")
    asm.halt()
    return asm.assemble()
