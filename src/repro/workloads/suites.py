"""Benchmark suite definitions.

The two paper suites (SPECint2000-like and MediaBench-like) are ordered the
same way as the rows of the paper's figures so that harness reports read like
the paper's graphs.
"""

from __future__ import annotations

from repro.workloads.base import Workload, list_workloads


def specint_suite() -> list[Workload]:
    """The SPECint2000-like suite (one kernel per paper benchmark)."""
    return list_workloads("specint")


def mediabench_suite() -> list[Workload]:
    """The MediaBench-like suite (one kernel per paper benchmark)."""
    return list_workloads("mediabench")


def specint_fp_suite() -> list[Workload]:
    """Footprint-scaled SPECint variants: auxiliary data structures (hash
    tables, dictionaries) grow with ``scale``, so figure sweeps over this
    suite stress cache/predictor capacity instead of just running longer."""
    return list_workloads("specint_fp")


def microbench_suite() -> list[Workload]:
    """Small single-idiom kernels used by tests and examples."""
    return list_workloads("micro")


def suite_by_name(name: str) -> list[Workload]:
    """Look up a suite by name: ``specint``, ``specint_fp``, ``mediabench``
    or ``micro``."""
    suites = {
        "specint": specint_suite,
        "specint_fp": specint_fp_suite,
        "mediabench": mediabench_suite,
        "micro": microbench_suite,
    }
    try:
        return suites[name]()
    except KeyError as exc:
        raise KeyError(f"unknown suite {name!r}; known: {sorted(suites)}") from exc
