"""Shared helpers for writing workload kernels.

These utilities keep the hand-written kernels deterministic (a tiny LCG
replaces benchmark input files) and idiomatic (inline macros for the code
patterns a compiler would emit).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.registers import RegisterNames as R

#: Multiplier/increment of the 31-bit linear congruential generator used for
#: all synthetic "input data".  Small enough to build with ``li``.
LCG_MULTIPLIER = 1103515245
LCG_INCREMENT = 12345
LCG_MASK = 0x7FFFFFFF


def lcg_sequence(seed: int, count: int, modulo: int | None = None) -> list[int]:
    """Generate ``count`` deterministic pseudo-random values (Python side).

    This is how workloads get "input files": the data is computed at assembly
    time and placed in the program's data segment.
    """
    values = []
    state = seed & LCG_MASK
    for _ in range(count):
        state = (state * LCG_MULTIPLIER + LCG_INCREMENT) & LCG_MASK
        values.append(state if modulo is None else state % modulo)
    return values


def lcg_bytes(seed: int, count: int, alphabet: int = 256) -> bytes:
    """Deterministic pseudo-random byte string (for text-processing kernels)."""
    return bytes(lcg_sequence(seed, count, alphabet))


def permutation(seed: int, count: int) -> list[int]:
    """A deterministic pseudo-random permutation of ``range(count)``.

    Used to lay out pointer-chasing structures with poor spatial locality,
    mimicking mcf-style memory behaviour.
    """
    order = list(range(count))
    randoms = lcg_sequence(seed, count)
    for index in range(count - 1, 0, -1):
        swap = randoms[index] % (index + 1)
        order[index], order[swap] = order[swap], order[index]
    return order


def emit_lcg_step(asm: Assembler, state_reg: int, scratch_reg: int) -> None:
    """Advance an in-register LCG: ``state = (state * A + C) & MASK``.

    Emits the multiply/addi/andi sequence inline, the way a compiler would
    inline a small ``rand()`` helper.
    """
    asm.li(scratch_reg, LCG_MULTIPLIER)
    asm.mul(state_reg, state_reg, scratch_reg)
    asm.addi(state_reg, state_reg, LCG_INCREMENT)
    asm.li(scratch_reg, LCG_MASK)
    asm.and_(state_reg, state_reg, scratch_reg)


def emit_counted_loop_header(asm: Assembler, counter_reg: int, count: int, label: str) -> None:
    """Initialise a counter register and define the loop head label."""
    asm.li(counter_reg, count)
    asm.label(label)


def emit_counted_loop_footer(asm: Assembler, counter_reg: int, label: str) -> None:
    """Decrement the counter and branch back while it is positive."""
    asm.subi(counter_reg, counter_reg, 1)
    asm.bgt(counter_reg, label)


def emit_argument_moves(asm: Assembler, *pairs: tuple[int, int]) -> None:
    """Emit the register moves a compiler produces at a call site.

    ``pairs`` are ``(argument_register, source_register)`` tuples.  Using
    explicit ``mov`` instructions here is deliberate: these are exactly the
    compilation artifacts RENO_ME eliminates.
    """
    for argument_register, source_register in pairs:
        asm.mov(argument_register, source_register)


def scaled(base: int, scale: int, minimum: int = 1) -> int:
    """Scale an iteration count, clamped from below."""
    return max(minimum, base * scale)


__all__ = [
    "LCG_MULTIPLIER",
    "LCG_INCREMENT",
    "LCG_MASK",
    "lcg_sequence",
    "lcg_bytes",
    "permutation",
    "emit_lcg_step",
    "emit_counted_loop_header",
    "emit_counted_loop_footer",
    "emit_argument_moves",
    "scaled",
    "R",
]
