"""Shared helpers for writing workload kernels.

These utilities keep the hand-written kernels deterministic (a tiny LCG
replaces benchmark input files) and idiomatic (inline macros for the code
patterns a compiler would emit).
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.registers import RegisterNames as R
from repro.workloads.base import register

#: Multiplier/increment of the 31-bit linear congruential generator used for
#: all synthetic "input data".  Small enough to build with ``li``.
LCG_MULTIPLIER = 1103515245
LCG_INCREMENT = 12345
LCG_MASK = 0x7FFFFFFF


def lcg_sequence(seed: int, count: int, modulo: int | None = None) -> list[int]:
    """Generate ``count`` deterministic pseudo-random values (Python side).

    This is how workloads get "input files": the data is computed at assembly
    time and placed in the program's data segment.
    """
    values = []
    state = seed & LCG_MASK
    for _ in range(count):
        state = (state * LCG_MULTIPLIER + LCG_INCREMENT) & LCG_MASK
        values.append(state if modulo is None else state % modulo)
    return values


def lcg_bytes(seed: int, count: int, alphabet: int = 256) -> bytes:
    """Deterministic pseudo-random byte string (for text-processing kernels)."""
    return bytes(lcg_sequence(seed, count, alphabet))


def permutation(seed: int, count: int) -> list[int]:
    """A deterministic pseudo-random permutation of ``range(count)``.

    Used to lay out pointer-chasing structures with poor spatial locality,
    mimicking mcf-style memory behaviour.
    """
    order = list(range(count))
    randoms = lcg_sequence(seed, count)
    for index in range(count - 1, 0, -1):
        swap = randoms[index] % (index + 1)
        order[index], order[swap] = order[swap], order[index]
    return order


def emit_lcg_step(asm: Assembler, state_reg: int, scratch_reg: int) -> None:
    """Advance an in-register LCG: ``state = (state * A + C) & MASK``.

    Emits the multiply/addi/andi sequence inline, the way a compiler would
    inline a small ``rand()`` helper.
    """
    asm.li(scratch_reg, LCG_MULTIPLIER)
    asm.mul(state_reg, state_reg, scratch_reg)
    asm.addi(state_reg, state_reg, LCG_INCREMENT)
    asm.li(scratch_reg, LCG_MASK)
    asm.and_(state_reg, state_reg, scratch_reg)


def emit_counted_loop_header(asm: Assembler, counter_reg: int, count: int, label: str) -> None:
    """Initialise a counter register and define the loop head label."""
    asm.li(counter_reg, count)
    asm.label(label)


def emit_counted_loop_footer(asm: Assembler, counter_reg: int, label: str) -> None:
    """Decrement the counter and branch back while it is positive."""
    asm.subi(counter_reg, counter_reg, 1)
    asm.bgt(counter_reg, label)


def emit_argument_moves(asm: Assembler, *pairs: tuple[int, int]) -> None:
    """Emit the register moves a compiler produces at a call site.

    ``pairs`` are ``(argument_register, source_register)`` tuples.  Using
    explicit ``mov`` instructions here is deliberate: these are exactly the
    compilation artifacts RENO_ME eliminates.
    """
    for argument_register, source_register in pairs:
        asm.mov(argument_register, source_register)


def scaled(base: int, scale: int, minimum: int = 1) -> int:
    """Scale an iteration count, clamped from below."""
    return max(minimum, base * scale)


def scaled_footprint(base_elements: int, scale: int, maximum: int = 1 << 20) -> int:
    """Scale a data-structure *size* (elements), clamped from both sides.

    Most kernels scale by iterating longer over the same data, which leaves
    caches and branch predictors warm no matter the scale.  Kernels that
    grow with this helper instead touch ``base_elements * scale`` elements,
    so large scales stress capacity (cache misses, BTB pressure) rather
    than just wall-clock.  The upper clamp keeps pathological scales from
    materialising unbounded data segments.
    """
    return max(1, min(maximum, base_elements * scale))


@register(
    "footprint_walk",
    suite="micro",
    description="pointer-chase whose data footprint (not lap count) grows "
                "with scale; stresses caches/branch predictors at scale > 4",
    paper_name="footprint-walk",
)
def build_footprint_walk(scale: int = 1):
    """A pointer-chasing kernel whose data footprint grows with ``scale``.

    Builds a permutation cycle of :func:`scaled_footprint` 8-byte nodes and
    chases it for a fixed number of laps, accumulating a value-dependent
    branchy checksum.  Because the *structure size* (not the lap count)
    scales, ``scale >= 8`` overflows the L1 d-cache and dilutes the branch
    history — the behaviour regime the fixed-footprint kernels never enter.
    """
    asm = Assembler(f"footprint_walk_x{scale}")
    # 512 nodes (4 KB) at scale 1; the 32 KB L1 d-cache overflows past
    # scale 8, which is exactly the regime the scale sweep wants to probe.
    elements = scaled_footprint(512, scale)
    # Node i holds the byte offset of the next node in a full permutation
    # cycle, tagged in bit 2 with deterministic noise for the branchy sum
    # (offsets are 8-aligned, so low bits are free).
    order = permutation(7 * scale + 13, elements)
    successor = [0] * elements
    for position in range(elements):
        successor[order[position]] = order[(position + 1) % elements]
    noise = lcg_sequence(scale + 5, elements, 2)
    asm.word_array("nodes", [8 * successor[i] | (noise[i] << 2)
                             for i in range(elements)])

    base, ptr, node, acc, laps, steps, scratch = 8, 9, 10, 11, 12, 13, 14
    asm.la(base, "nodes")
    asm.li(acc, 0)
    emit_counted_loop_header(asm, laps, 4, "lap")
    asm.li(ptr, 0)
    emit_counted_loop_header(asm, steps, elements, "step")
    asm.add(scratch, base, ptr)
    asm.ld(node, 0, scratch)              # next-pointer (plus noise tag)
    asm.andi(scratch, node, 4)            # extract the noise tag...
    asm.sub(ptr, node, scratch)           # ...and strip it: pure byte offset
    # Data-dependent branch: poorly predictable once the footprint (and
    # therefore the tag stream) outgrows the predictor's history.
    asm.beq(scratch, "even")
    asm.add(acc, acc, node)
    asm.label("even")
    asm.addi(acc, acc, 1)
    emit_counted_loop_footer(asm, steps, "step")
    emit_counted_loop_footer(asm, laps, "lap")
    asm.st(acc, 0, base)
    asm.halt()
    return asm.assemble()


__all__ = [
    "LCG_MULTIPLIER",
    "LCG_INCREMENT",
    "LCG_MASK",
    "lcg_sequence",
    "lcg_bytes",
    "permutation",
    "emit_lcg_step",
    "emit_counted_loop_header",
    "emit_counted_loop_footer",
    "emit_argument_moves",
    "scaled",
    "scaled_footprint",
    "build_footprint_walk",
    "R",
]
