"""Synthetic workload suites.

The paper evaluates RENO on SPECint2000 and MediaBench.  Neither the Alpha
binaries nor the inputs are available here, so this package provides
hand-written kernels in the AXP-lite assembler DSL whose *dynamic behaviour*
(instruction mix, branch behaviour, memory access patterns, call/stack
traffic) mirrors the published characteristics of those programs.  Each paper
benchmark has a corresponding ``*_like`` kernel; see DESIGN.md for the
substitution rationale.

Public API:

* :class:`~repro.workloads.base.Workload` — a named, parameterised kernel,
* :func:`~repro.workloads.base.get_workload` / ``list_workloads`` — registry,
* :func:`~repro.workloads.suites.specint_suite` and
  :func:`~repro.workloads.suites.mediabench_suite` — the two benchmark suites
  used by every experiment.
"""

from repro.workloads.base import (
    Workload,
    WorkloadRegistry,
    REGISTRY,
    get_workload,
    list_workloads,
)
from repro.workloads.suites import (
    mediabench_suite,
    microbench_suite,
    specint_suite,
    suite_by_name,
)

__all__ = [
    "Workload",
    "WorkloadRegistry",
    "REGISTRY",
    "get_workload",
    "list_workloads",
    "specint_suite",
    "mediabench_suite",
    "microbench_suite",
    "suite_by_name",
]
