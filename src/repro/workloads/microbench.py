"""Micro-benchmarks exercising individual RENO-targeted idioms.

These tiny kernels are used throughout the unit and integration tests because
each one isolates one behaviour: move-heavy code for RENO_ME, addi chains for
RENO_CF, redundant loads for RENO_CSE, call/spill traffic for RENO_RA, and so
on.  They are registered in the ``micro`` suite and are not part of the
paper-figure suites.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import RegisterNames as R
from repro.workloads.base import register
from repro.workloads.builder import (
    emit_argument_moves,
    emit_counted_loop_footer,
    emit_counted_loop_header,
    lcg_sequence,
    scaled,
)


@register("micro_sum", "micro", "Sequential sum of a word array (baseline streaming loop).")
def micro_sum(scale: int = 1) -> Program:
    count = scaled(64, scale)
    asm = Assembler("micro_sum")
    asm.word_array("values", lcg_sequence(1, count, 1000))
    asm.la(R.A0, "values")
    asm.li(R.V0, 0)
    emit_counted_loop_header(asm, R.T0, count, "loop")
    asm.ld(R.T1, 0, R.A0)
    asm.add(R.V0, R.V0, R.T1)
    asm.addi(R.A0, R.A0, 8)
    emit_counted_loop_footer(asm, R.T0, "loop")
    asm.halt()
    return asm.assemble()


@register("micro_moves", "micro", "Move-heavy register shuffling loop (RENO_ME fodder).")
def micro_moves(scale: int = 1) -> Program:
    iterations = scaled(80, scale)
    asm = Assembler("micro_moves")
    asm.li(R.S0, 3)
    asm.li(R.S1, 5)
    emit_counted_loop_header(asm, R.T0, iterations, "loop")
    asm.mov(R.T1, R.S0)
    asm.mov(R.T2, R.S1)
    asm.add(R.T3, R.T1, R.T2)
    asm.mov(R.S0, R.T2)
    asm.mov(R.S1, R.T3)
    emit_counted_loop_footer(asm, R.T0, "loop")
    asm.mov(R.V0, R.S1)
    asm.halt()
    return asm.assemble()


@register("micro_addi_chain", "micro", "Pointer/index increments dominated by reg-imm additions (RENO_CF fodder).")
def micro_addi_chain(scale: int = 1) -> Program:
    count = scaled(48, scale)
    asm = Assembler("micro_addi_chain")
    asm.word_array("values", lcg_sequence(7, count + 4, 500))
    asm.la(R.A0, "values")
    asm.li(R.V0, 0)
    emit_counted_loop_header(asm, R.T0, count, "loop")
    # Several dependent displacement computations feeding loads: the classic
    # addi -> load fusion scenario from Figure 2 of the paper.
    asm.addi(R.T1, R.A0, 8)
    asm.ld(R.T2, 0, R.T1)
    asm.addi(R.T3, R.T1, 8)
    asm.ld(R.T4, 8, R.T3)
    asm.add(R.V0, R.V0, R.T2)
    asm.add(R.V0, R.V0, R.T4)
    asm.addi(R.A0, R.A0, 8)
    emit_counted_loop_footer(asm, R.T0, "loop")
    asm.halt()
    return asm.assemble()


@register("micro_redundant_loads", "micro", "Repeatedly reloads the same locations (RENO_CSE fodder).")
def micro_redundant_loads(scale: int = 1) -> Program:
    iterations = scaled(64, scale)
    asm = Assembler("micro_redundant_loads")
    asm.word_array("table", lcg_sequence(11, 8, 100))
    asm.la(R.S0, "table")
    asm.li(R.V0, 0)
    emit_counted_loop_header(asm, R.T0, iterations, "loop")
    asm.ld(R.T1, 0, R.S0)
    asm.ld(R.T2, 8, R.S0)
    asm.ld(R.T3, 0, R.S0)    # redundant with the first load
    asm.ld(R.T4, 8, R.S0)    # redundant with the second load
    asm.add(R.T5, R.T1, R.T2)
    asm.add(R.T6, R.T3, R.T4)
    asm.add(R.V0, R.V0, R.T5)
    asm.add(R.V0, R.V0, R.T6)
    emit_counted_loop_footer(asm, R.T0, "loop")
    asm.halt()
    return asm.assemble()


@register("micro_call_spill", "micro", "Call-intensive loop with callee-save spills (RENO_RA fodder).")
def micro_call_spill(scale: int = 1) -> Program:
    iterations = scaled(32, scale)
    asm = Assembler("micro_call_spill")
    asm.li(R.S0, 0)
    asm.li(R.S1, 1)
    emit_counted_loop_header(asm, R.S2, iterations, "loop")
    emit_argument_moves(asm, (R.A0, R.S0), (R.A1, R.S1))
    asm.jsr("combine")
    asm.mov(R.S0, R.S1)
    asm.mov(R.S1, R.V0)
    emit_counted_loop_footer(asm, R.S2, "loop")
    asm.mov(R.V0, R.S1)
    asm.halt()

    asm.label("combine")
    asm.prologue(32, (R.S3, R.S4))
    asm.mov(R.S3, R.A0)
    asm.mov(R.S4, R.A1)
    asm.add(R.V0, R.S3, R.S4)
    asm.andi(R.V0, R.V0, 0xFFF)
    asm.epilogue(32, (R.S3, R.S4))
    return asm.assemble()


@register("micro_store_load", "micro", "Store-to-load communication through the stack (memory bypassing).")
def micro_store_load(scale: int = 1) -> Program:
    iterations = scaled(64, scale)
    asm = Assembler("micro_store_load")
    asm.li(R.S0, 17)
    asm.li(R.V0, 0)
    emit_counted_loop_header(asm, R.T0, iterations, "loop")
    asm.subi(R.SP, R.SP, 16)
    asm.st(R.S0, 0, R.SP)
    asm.addi(R.S0, R.S0, 3)
    asm.st(R.S0, 8, R.SP)
    asm.ld(R.T1, 0, R.SP)     # bypassable: value came from the first store
    asm.ld(R.T2, 8, R.SP)     # bypassable: value came from the second store
    asm.add(R.V0, R.V0, R.T1)
    asm.add(R.V0, R.V0, R.T2)
    asm.addi(R.SP, R.SP, 16)
    emit_counted_loop_footer(asm, R.T0, "loop")
    asm.halt()
    return asm.assemble()


@register("micro_pointer_chase", "micro", "Random-order linked-list traversal (cache-hostile).")
def micro_pointer_chase(scale: int = 1) -> Program:
    nodes = scaled(64, scale)
    # Each node is 16 bytes: [value, next_address].  The chain visits nodes in
    # a pseudo-random order so the D-cache misses regularly.
    from repro.workloads.builder import permutation

    order = permutation(13, nodes)
    values = lcg_sequence(29, nodes, 256)
    asm = Assembler("micro_pointer_chase")
    base = asm.zeros("nodes", 2 * nodes)
    node_words = [0] * (2 * nodes)
    for position in range(nodes):
        node = order[position]
        successor = order[(position + 1) % nodes]
        node_words[2 * node] = values[node]
        node_words[2 * node + 1] = base + 16 * successor
    # Overwrite the zero-initialised block with the linked structure.
    asm.fill_words("nodes", node_words)

    asm.li(R.V0, 0)
    asm.li(R.T0, nodes)
    asm.la(R.A0, "nodes")
    first = order[0]
    asm.li(R.T3, 16 * first)
    asm.add(R.A0, R.A0, R.T3)
    asm.label("loop")
    asm.ld(R.T1, 0, R.A0)
    asm.add(R.V0, R.V0, R.T1)
    asm.ld(R.A0, 8, R.A0)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "loop")
    asm.halt()
    return asm.assemble()


@register("micro_branchy", "micro", "Data-dependent branches over pseudo-random values.")
def micro_branchy(scale: int = 1) -> Program:
    count = scaled(96, scale)
    asm = Assembler("micro_branchy")
    asm.word_array("values", lcg_sequence(5, count, 100))
    asm.la(R.A0, "values")
    asm.li(R.V0, 0)
    asm.li(R.S0, 0)
    emit_counted_loop_header(asm, R.T0, count, "loop")
    asm.ld(R.T1, 0, R.A0)
    asm.cmplti(R.T2, R.T1, 50)
    asm.beq(R.T2, "big")
    asm.addi(R.V0, R.V0, 1)
    asm.br("next")
    asm.label("big")
    asm.addi(R.S0, R.S0, 1)
    asm.label("next")
    asm.addi(R.A0, R.A0, 8)
    emit_counted_loop_footer(asm, R.T0, "loop")
    asm.add(R.V0, R.V0, R.S0)
    asm.halt()
    return asm.assemble()


@register("micro_matvec", "micro", "Small fixed-point matrix-vector product (ALU-dense).")
def micro_matvec(scale: int = 1) -> Program:
    repeats = scaled(8, scale)
    size = 8
    asm = Assembler("micro_matvec")
    asm.word_array("matrix", lcg_sequence(3, size * size, 64))
    asm.word_array("vector", lcg_sequence(9, size, 64))
    asm.zeros("result", size)
    asm.li(R.S5, repeats)
    asm.label("repeat")
    asm.la(R.A0, "matrix")
    asm.la(R.A1, "vector")
    asm.la(R.A2, "result")
    asm.li(R.T0, size)
    asm.label("rows")
    asm.li(R.V0, 0)
    asm.mov(R.T4, R.A1)
    asm.li(R.T1, size)
    asm.label("cols")
    asm.ld(R.T2, 0, R.A0)
    asm.ld(R.T3, 0, R.T4)
    asm.mul(R.T2, R.T2, R.T3)
    asm.add(R.V0, R.V0, R.T2)
    asm.addi(R.A0, R.A0, 8)
    asm.addi(R.T4, R.T4, 8)
    asm.subi(R.T1, R.T1, 1)
    asm.bgt(R.T1, "cols")
    asm.st(R.V0, 0, R.A2)
    asm.addi(R.A2, R.A2, 8)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "rows")
    asm.subi(R.S5, R.S5, 1)
    asm.bgt(R.S5, "repeat")
    asm.halt()
    return asm.assemble()
