"""SPECint2000-like synthetic kernels.

One kernel per benchmark row in the paper's figures.  Each kernel implements
a real (if small) algorithm whose dynamic behaviour mirrors the published
character of the original program: gzip/bzip2 are byte-stream compressors,
mcf is a cache-hostile pointer chaser, vortex is call- and stack-heavy, perl
is hash-table bound, crafty is bit-manipulation bound with few
register-immediate additions, and so on.

All kernels are deterministic: their "inputs" are pseudo-random data generated
at assembly time by :func:`repro.workloads.builder.lcg_sequence`.
"""

from __future__ import annotations

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import RegisterNames as R
from repro.workloads.base import register
from repro.workloads.builder import (
    emit_argument_moves,
    lcg_bytes,
    lcg_sequence,
    permutation,
    scaled,
    scaled_footprint,
)


def _pow2_buckets(base: int, scale: int) -> int:
    """Power-of-two hash-bucket count whose footprint grows with ``scale``."""
    wanted = scaled_footprint(base, scale)
    buckets = 1
    while buckets < wanted:
        buckets <<= 1
    return buckets


# ---------------------------------------------------------------------------
# Compression: gzip / bzip2
# ---------------------------------------------------------------------------


@register("gzip_like", "specint", "LZ77-style hash-chain string matcher.", paper_name="gzip")
def gzip_like(scale: int = 1) -> Program:
    length = scaled(192, scale)
    asm = Assembler("gzip_like")
    asm.byte_array("text", lcg_bytes(17, length + 8, 16))
    asm.zeros("heads", 64)          # hash-head table: 64 buckets
    asm.zeros("matches", 4)
    asm.la(R.S0, "text")
    asm.la(R.S1, "heads")
    asm.li(R.S2, 0)                  # position
    asm.li(R.V0, 0)                  # total match length
    asm.li(R.S3, length)

    asm.label("scan")
    # hash = (b0 << 2) ^ (b1 << 1) ^ b2, 6 bits
    asm.add(R.T0, R.S0, R.S2)
    asm.ldbu(R.T1, 0, R.T0)
    asm.ldbu(R.T2, 1, R.T0)
    asm.ldbu(R.T3, 2, R.T0)
    asm.slli(R.T4, R.T1, 2)
    asm.slli(R.T5, R.T2, 1)
    asm.xor(R.T4, R.T4, R.T5)
    asm.xor(R.T4, R.T4, R.T3)
    asm.andi(R.T4, R.T4, 63)
    # look up previous position with the same hash
    asm.slli(R.T5, R.T4, 3)
    asm.add(R.T5, R.S1, R.T5)
    asm.ld(R.T6, 0, R.T5)            # candidate position + 1 (0 means empty)
    asm.addi(R.T7, R.S2, 1)
    asm.st(R.T7, 0, R.T5)            # update head
    asm.beq(R.T6, "advance")
    # compare up to 4 bytes at the candidate
    asm.subi(R.T6, R.T6, 1)
    asm.add(R.T7, R.S0, R.T6)
    asm.li(R.T8, 4)
    asm.li(R.T9, 0)                  # match length
    asm.label("cmploop")
    asm.ldbu(R.T10, 0, R.T0)
    asm.ldbu(R.T11, 0, R.T7)
    asm.sub(R.T12, R.T10, R.T11)
    asm.bne(R.T12, "cmpdone")
    asm.addi(R.T9, R.T9, 1)
    asm.addi(R.T0, R.T0, 1)
    asm.addi(R.T7, R.T7, 1)
    asm.subi(R.T8, R.T8, 1)
    asm.bgt(R.T8, "cmploop")
    asm.label("cmpdone")
    asm.add(R.V0, R.V0, R.T9)
    asm.label("advance")
    asm.addi(R.S2, R.S2, 1)
    asm.cmplt(R.T0, R.S2, R.S3)
    asm.bne(R.T0, "scan")
    asm.la(R.T1, "matches")
    asm.st(R.V0, 0, R.T1)
    asm.halt()
    return asm.assemble()


@register("bzip2_like", "specint", "Run-length + move-to-front byte transform.", paper_name="bzip2")
def bzip2_like(scale: int = 1) -> Program:
    length = scaled(160, scale)
    asm = Assembler("bzip2_like")
    asm.byte_array("input", lcg_bytes(23, length, 8))
    asm.byte_array("mtf", bytes(range(16)))
    asm.zeros("output", (length + 7) // 8 + 2)
    asm.la(R.S0, "input")
    asm.la(R.S1, "mtf")
    asm.la(R.S2, "output")
    asm.li(R.S3, length)
    asm.li(R.S4, 0)                  # output cursor
    asm.li(R.V0, 0)

    asm.label("next")
    asm.ldbu(R.T0, 0, R.S0)
    # move-to-front: find the symbol's rank in the mtf table
    asm.li(R.T1, 0)                  # rank
    asm.label("find")
    asm.add(R.T2, R.S1, R.T1)
    asm.ldbu(R.T3, 0, R.T2)
    asm.sub(R.T4, R.T3, R.T0)
    asm.beq(R.T4, "found")
    asm.addi(R.T1, R.T1, 1)
    asm.cmplti(R.T4, R.T1, 16)
    asm.bne(R.T4, "find")
    asm.label("found")
    # shift table entries [0, rank) up by one and put symbol at front
    asm.mov(R.T5, R.T1)
    asm.label("shift")
    asm.ble(R.T5, "shifted")
    asm.add(R.T2, R.S1, R.T5)
    asm.ldbu(R.T3, -1, R.T2)
    asm.stb(R.T3, 0, R.T2)
    asm.subi(R.T5, R.T5, 1)
    asm.br("shift")
    asm.label("shifted")
    asm.stb(R.T0, 0, R.S1)
    # run-length encode rank zero
    asm.bne(R.T1, "literal")
    asm.addi(R.V0, R.V0, 1)
    asm.br("advance")
    asm.label("literal")
    asm.add(R.T6, R.S2, R.S4)
    asm.stb(R.T1, 0, R.T6)
    asm.addi(R.S4, R.S4, 1)
    asm.label("advance")
    asm.addi(R.S0, R.S0, 1)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "next")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# crafty: bitboard manipulation
# ---------------------------------------------------------------------------


@register("crafty_like", "specint", "Bitboard population counts and attack masks.", paper_name="crafty")
def crafty_like(scale: int = 1) -> Program:
    boards = scaled(48, scale)
    asm = Assembler("crafty_like")
    asm.word_array("boards", lcg_sequence(31, boards))
    asm.word_array("masks", lcg_sequence(37, 8))
    asm.la(R.S0, "boards")
    asm.la(R.S1, "masks")
    asm.li(R.S2, boards)
    asm.li(R.V0, 0)

    asm.label("board")
    asm.ld(R.T0, 0, R.S0)
    # combine with a rotating mask set
    asm.andi(R.T1, R.S2, 7)
    asm.slli(R.T1, R.T1, 3)
    asm.add(R.T1, R.S1, R.T1)
    asm.ld(R.T2, 0, R.T1)
    asm.and_(R.T3, R.T0, R.T2)
    asm.or_(R.T4, R.T0, R.T2)
    asm.xor(R.T5, R.T3, R.T4)
    # population count of T5 by nibble loop
    asm.li(R.T6, 0)                  # popcount
    asm.li(R.T7, 16)                 # nibbles
    asm.label("pop")
    asm.andi(R.T8, R.T5, 15)
    asm.srli(R.T9, R.T8, 1)
    asm.andi(R.T9, R.T9, 5)
    asm.sub(R.T8, R.T8, R.T9)
    asm.andi(R.T9, R.T8, 3)
    asm.srli(R.T8, R.T8, 2)
    asm.andi(R.T8, R.T8, 3)
    asm.add(R.T8, R.T8, R.T9)
    asm.add(R.T6, R.T6, R.T8)
    asm.srli(R.T5, R.T5, 4)
    asm.subi(R.T7, R.T7, 1)
    asm.bgt(R.T7, "pop")
    asm.add(R.V0, R.V0, R.T6)
    asm.addi(R.S0, R.S0, 8)
    asm.subi(R.S2, R.S2, 1)
    asm.bgt(R.S2, "board")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# eon: fixed-point ray-tracing style vector math (three input variants)
# ---------------------------------------------------------------------------


def _eon_kernel(name: str, seed: int, mul_weight: int, scale: int) -> Program:
    vectors = scaled(40, scale)
    asm = Assembler(name)
    asm.word_array("vx", lcg_sequence(seed, vectors, 1024))
    asm.word_array("vy", lcg_sequence(seed + 1, vectors, 1024))
    asm.word_array("vz", lcg_sequence(seed + 2, vectors, 1024))
    asm.zeros("shade", vectors)
    asm.la(R.S0, "vx")
    asm.la(R.S1, "vy")
    asm.la(R.S2, "vz")
    asm.la(R.S3, "shade")
    asm.li(R.S4, vectors)
    asm.li(R.V0, 0)
    light = (11, 23, 7)

    asm.label("vec")
    asm.ld(R.T0, 0, R.S0)
    asm.ld(R.T1, 0, R.S1)
    asm.ld(R.T2, 0, R.S2)
    # dot product with the light direction (fixed point)
    asm.muli(R.T3, R.T0, light[0])
    asm.muli(R.T4, R.T1, light[1])
    asm.muli(R.T5, R.T2, light[2])
    asm.add(R.T3, R.T3, R.T4)
    asm.add(R.T3, R.T3, R.T5)
    asm.srai(R.T3, R.T3, 5)
    for _ in range(mul_weight):
        # extra shading terms (specular-like powers)
        asm.mul(R.T6, R.T3, R.T3)
        asm.srai(R.T6, R.T6, 8)
        asm.add(R.T3, R.T3, R.T6)
    # clamp to [0, 4095]
    asm.bge(R.T3, "positive")
    asm.li(R.T3, 0)
    asm.label("positive")
    asm.cmplti(R.T7, R.T3, 4096)
    asm.bne(R.T7, "store")
    asm.li(R.T3, 4095)
    asm.label("store")
    asm.st(R.T3, 0, R.S3)
    asm.add(R.V0, R.V0, R.T3)
    asm.addi(R.S0, R.S0, 8)
    asm.addi(R.S1, R.S1, 8)
    asm.addi(R.S2, R.S2, 8)
    asm.addi(R.S3, R.S3, 8)
    asm.subi(R.S4, R.S4, 1)
    asm.bgt(R.S4, "vec")
    asm.halt()
    return asm.assemble()


@register("eon_cook_like", "specint", "Fixed-point shading, cook input (memory leaning).", paper_name="eon.c")
def eon_cook_like(scale: int = 1) -> Program:
    return _eon_kernel("eon_cook_like", 41, 1, scale)


@register("eon_kajiya_like", "specint", "Fixed-point shading, kajiya input (multiply heavy).", paper_name="eon.k")
def eon_kajiya_like(scale: int = 1) -> Program:
    return _eon_kernel("eon_kajiya_like", 43, 3, scale)


@register("eon_rushmeier_like", "specint", "Fixed-point shading, rushmeier input (balanced).", paper_name="eon.r")
def eon_rushmeier_like(scale: int = 1) -> Program:
    return _eon_kernel("eon_rushmeier_like", 47, 2, scale)


# ---------------------------------------------------------------------------
# gap: permutation group composition
# ---------------------------------------------------------------------------


@register("gap_like", "specint", "Permutation composition over small groups.", paper_name="gap")
def gap_like(scale: int = 1) -> Program:
    size = 32
    rounds = scaled(12, scale)
    asm = Assembler("gap_like")
    asm.word_array("perm_a", [8 * value for value in permutation(53, size)])
    asm.word_array("perm_b", [8 * value for value in permutation(59, size)])
    asm.zeros("perm_c", size)
    asm.la(R.S0, "perm_a")
    asm.la(R.S1, "perm_b")
    asm.la(R.S2, "perm_c")
    asm.li(R.S3, rounds)
    asm.li(R.V0, 0)

    asm.label("round")
    asm.li(R.T0, size)
    asm.mov(R.T1, R.S0)
    asm.mov(R.T2, R.S2)
    asm.label("element")
    asm.ld(R.T3, 0, R.T1)            # a[i] (already scaled by 8)
    asm.add(R.T4, R.S1, R.T3)
    asm.ld(R.T5, 0, R.T4)            # b[a[i]]
    asm.st(R.T5, 0, R.T2)
    asm.add(R.V0, R.V0, R.T5)
    asm.addi(R.T1, R.T1, 8)
    asm.addi(R.T2, R.T2, 8)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "element")
    # swap roles: next round composes with the freshly produced permutation
    asm.mov(R.T6, R.S0)
    asm.mov(R.S0, R.S2)
    asm.mov(R.S2, R.T6)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "round")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# gcc: tree walking with per-node dispatch and helper calls
# ---------------------------------------------------------------------------


@register("gcc_like", "specint", "Expression-tree walk with per-node-kind dispatch.", paper_name="gcc")
def gcc_like(scale: int = 1) -> Program:
    nodes = scaled(48, scale)
    asm = Assembler("gcc_like")
    # Node layout: [kind, value, left_index*24, right_index*24]  (24-byte nodes
    # would be irregular; use 32-byte nodes: 4 words).
    kinds = lcg_sequence(61, nodes, 4)
    values = lcg_sequence(67, nodes, 100)
    lefts = lcg_sequence(71, nodes, nodes)
    rights = lcg_sequence(73, nodes, nodes)
    words: list[int] = []
    for index in range(nodes):
        words.extend([kinds[index], values[index], 32 * lefts[index], 32 * rights[index]])
    asm.word_array("nodes", words)
    asm.la(R.S0, "nodes")
    asm.li(R.S1, nodes)
    asm.li(R.S2, 0)                  # node cursor (byte offset)
    asm.li(R.S5, 0)

    asm.label("walk")
    asm.add(R.T0, R.S0, R.S2)
    asm.ld(R.T1, 0, R.T0)            # kind
    asm.ld(R.T2, 8, R.T0)            # value
    asm.ld(R.T3, 16, R.T0)           # left offset
    asm.ld(R.T4, 24, R.T0)           # right offset
    # dispatch on kind (0: constant, 1: plus, 2: minus, 3: call helper)
    asm.beq(R.T1, "k_const")
    asm.cmpeqi(R.T5, R.T1, 1)
    asm.bne(R.T5, "k_plus")
    asm.cmpeqi(R.T5, R.T1, 2)
    asm.bne(R.T5, "k_minus")
    # helper call: evaluate a small folded expression
    emit_argument_moves(asm, (R.A0, R.T2), (R.A1, R.T3))
    asm.jsr("fold_helper")
    asm.add(R.S5, R.S5, R.V0)
    asm.br("next")
    asm.label("k_const")
    asm.add(R.S5, R.S5, R.T2)
    asm.br("next")
    asm.label("k_plus")
    asm.add(R.T6, R.S0, R.T3)
    asm.ld(R.T7, 8, R.T6)
    asm.add(R.S5, R.S5, R.T7)
    asm.br("next")
    asm.label("k_minus")
    asm.add(R.T6, R.S0, R.T4)
    asm.ld(R.T7, 8, R.T6)
    asm.sub(R.S5, R.S5, R.T7)
    asm.label("next")
    asm.addi(R.S2, R.S2, 32)
    asm.subi(R.S1, R.S1, 1)
    asm.bgt(R.S1, "walk")
    asm.halt()

    asm.label("fold_helper")
    asm.prologue(16)
    asm.add(R.V0, R.A0, R.A1)
    asm.srai(R.V0, R.V0, 1)
    asm.epilogue(16)
    return asm.assemble()


# ---------------------------------------------------------------------------
# mcf: cache-hostile pointer chasing over a network of arcs
# ---------------------------------------------------------------------------


@register("mcf_like", "specint", "Pointer-chasing arc relaxation (memory bound).", paper_name="mcf")
def mcf_like(scale: int = 1) -> Program:
    arcs = scaled(96, scale)
    asm = Assembler("mcf_like")
    # Arc layout: [cost, flow, next_address]; visit order is a random permutation.
    order = permutation(79, arcs)
    costs = lcg_sequence(83, arcs, 512)
    base = asm.zeros("arcs", 3 * arcs)
    words = [0] * (3 * arcs)
    for position in range(arcs):
        arc = order[position]
        successor = order[(position + 1) % arcs]
        words[3 * arc] = costs[arc]
        words[3 * arc + 1] = 0
        words[3 * arc + 2] = base + 24 * successor
    asm.fill_words("arcs", words)
    asm.la(R.S0, "arcs")
    asm.li(R.T0, 24 * order[0])
    asm.add(R.S0, R.S0, R.T0)
    asm.li(R.S1, arcs)
    asm.li(R.V0, 0)
    asm.li(R.S2, 200)                # potential threshold

    asm.label("arc")
    asm.ld(R.T1, 0, R.S0)            # cost
    asm.ld(R.T2, 8, R.S0)            # flow
    asm.cmplt(R.T3, R.T1, R.S2)
    asm.beq(R.T3, "skip")
    asm.addi(R.T2, R.T2, 1)
    asm.st(R.T2, 8, R.S0)
    asm.add(R.V0, R.V0, R.T1)
    asm.label("skip")
    asm.ld(R.S0, 16, R.S0)           # follow the pointer
    asm.subi(R.S1, R.S1, 1)
    asm.bgt(R.S1, "arc")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# parser: tokenising with a hashed dictionary and per-token calls
# ---------------------------------------------------------------------------


@register("parser_like", "specint", "Tokenizer with hashed dictionary lookups.", paper_name="parser")
def parser_like(scale: int = 1) -> Program:
    length = scaled(160, scale)
    asm = Assembler("parser_like")
    # Text of "letters" 1..7 separated by 0 (space).
    asm.byte_array("text", lcg_bytes(89, length, 8))
    asm.zeros("dictionary", 32)
    asm.la(R.S0, "text")
    asm.la(R.S1, "dictionary")
    asm.li(R.S2, length)
    asm.li(R.S5, 0)

    asm.label("token")
    asm.li(R.S3, 0)                  # token hash
    asm.label("char")
    asm.ble(R.S2, "finish")
    asm.ldbu(R.T0, 0, R.S0)
    asm.addi(R.S0, R.S0, 1)
    asm.subi(R.S2, R.S2, 1)
    asm.beq(R.T0, "end_token")
    asm.slli(R.T1, R.S3, 1)
    asm.add(R.S3, R.T1, R.T0)
    asm.andi(R.S3, R.S3, 0x3FF)
    asm.br("char")
    asm.label("end_token")
    emit_argument_moves(asm, (R.A0, R.S3))
    asm.jsr("lookup")
    asm.add(R.S5, R.S5, R.V0)
    asm.br("token")
    asm.label("finish")
    asm.halt()

    asm.label("lookup")
    asm.prologue(16)
    asm.andi(R.T0, R.A0, 31)
    asm.slli(R.T0, R.T0, 3)
    asm.add(R.T0, R.S1, R.T0)
    asm.ld(R.T1, 0, R.T0)
    asm.addi(R.T1, R.T1, 1)
    asm.st(R.T1, 0, R.T0)
    asm.mov(R.V0, R.T1)
    asm.epilogue(16)
    return asm.assemble()


# ---------------------------------------------------------------------------
# perl: hash-table dominated scripting workloads (two inputs)
# ---------------------------------------------------------------------------


def _perl_kernel(name: str, seed: int, score_passes: int, scale: int) -> Program:
    keys = scaled(64, scale)
    asm = Assembler(name)
    asm.word_array("keys", lcg_sequence(seed, keys, 4096))
    asm.zeros("table", 64)
    asm.zeros("chains", 64)
    asm.la(R.S0, "keys")
    asm.la(R.S1, "table")
    asm.la(R.S2, "chains")
    asm.li(R.S3, keys)
    asm.li(R.S5, 0)

    asm.label("key")
    asm.ld(R.T0, 0, R.S0)
    emit_argument_moves(asm, (R.A0, R.T0))
    asm.jsr("insert")
    asm.add(R.S5, R.S5, R.V0)
    asm.addi(R.S0, R.S0, 8)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "key")
    asm.halt()

    asm.label("insert")
    asm.prologue(32, (R.S4,))
    asm.mov(R.S4, R.A0)
    # hash = (key * 2654435761) >> 8, 6 bits -- use a 31-bit multiplier instead
    asm.li(R.T1, 40503)
    asm.mul(R.T2, R.S4, R.T1)
    asm.srli(R.T2, R.T2, 8)
    asm.andi(R.T2, R.T2, 63)
    asm.slli(R.T2, R.T2, 3)
    asm.add(R.T3, R.S1, R.T2)
    asm.ld(R.T4, 0, R.T3)            # current count
    asm.addi(R.T4, R.T4, 1)
    asm.st(R.T4, 0, R.T3)
    # chain bookkeeping (second table) plus a "score" loop over the key digits
    asm.add(R.T5, R.S2, R.T2)
    asm.ld(R.T6, 0, R.T5)
    asm.add(R.T6, R.T6, R.S4)
    asm.st(R.T6, 0, R.T5)
    asm.li(R.V0, 0)
    asm.mov(R.T7, R.S4)
    for _ in range(score_passes):
        asm.andi(R.T8, R.T7, 15)
        asm.add(R.V0, R.V0, R.T8)
        asm.srli(R.T7, R.T7, 4)
    asm.add(R.V0, R.V0, R.T4)
    asm.epilogue(32, (R.S4,))
    return asm.assemble()


@register("perl_diffmail_like", "specint", "Hash-table counting (diffmail input).", paper_name="perl.d")
def perl_diffmail_like(scale: int = 1) -> Program:
    return _perl_kernel("perl_diffmail_like", 97, 2, scale)


@register("perl_scrabbl_like", "specint", "Hash-table counting with scoring (scrabbl input).", paper_name="perl.s")
def perl_scrabbl_like(scale: int = 1) -> Program:
    return _perl_kernel("perl_scrabbl_like", 101, 4, scale)


# ---------------------------------------------------------------------------
# twolf / vpr: placement & routing style array computations
# ---------------------------------------------------------------------------


@register("twolf_like", "specint", "Annealing-style cost evaluation with conditional swaps.", paper_name="twolf")
def twolf_like(scale: int = 1) -> Program:
    cells = 48
    moves = scaled(40, scale)
    asm = Assembler("twolf_like")
    asm.word_array("xpos", lcg_sequence(103, cells, 256))
    asm.word_array("ypos", lcg_sequence(107, cells, 256))
    asm.word_array("pick", [8 * p for p in lcg_sequence(109, 2 * moves, cells)])
    asm.la(R.S0, "xpos")
    asm.la(R.S1, "ypos")
    asm.la(R.S2, "pick")
    asm.li(R.S3, moves)
    asm.li(R.V0, 0)

    asm.label("move")
    asm.ld(R.T0, 0, R.S2)            # cell a offset
    asm.ld(R.T1, 8, R.S2)            # cell b offset
    asm.add(R.T2, R.S0, R.T0)
    asm.add(R.T3, R.S0, R.T1)
    asm.ld(R.T4, 0, R.T2)            # xa
    asm.ld(R.T5, 0, R.T3)            # xb
    asm.add(R.T6, R.S1, R.T0)
    asm.add(R.T7, R.S1, R.T1)
    asm.ld(R.T8, 0, R.T6)            # ya
    asm.ld(R.T9, 0, R.T7)            # yb
    # manhattan distance delta
    asm.sub(R.T10, R.T4, R.T5)
    asm.bge(R.T10, "xpos_ok")
    asm.sub(R.T10, R.T5, R.T4)
    asm.label("xpos_ok")
    asm.sub(R.T11, R.T8, R.T9)
    asm.bge(R.T11, "ypos_ok")
    asm.sub(R.T11, R.T9, R.T8)
    asm.label("ypos_ok")
    asm.add(R.T12, R.T10, R.T11)
    asm.cmplti(R.T0, R.T12, 128)
    asm.beq(R.T0, "reject")
    # accept: swap x coordinates
    asm.st(R.T5, 0, R.T2)
    asm.st(R.T4, 0, R.T3)
    asm.add(R.V0, R.V0, R.T12)
    asm.label("reject")
    asm.addi(R.S2, R.S2, 16)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "move")
    asm.halt()
    return asm.assemble()


@register("vpr_place_like", "specint", "Bounding-box placement cost over a grid.", paper_name="vpr.p")
def vpr_place_like(scale: int = 1) -> Program:
    nets = scaled(32, scale)
    pins = 6
    asm = Assembler("vpr_place_like")
    asm.word_array("pinx", lcg_sequence(113, nets * pins, 64))
    asm.word_array("piny", lcg_sequence(127, nets * pins, 64))
    asm.la(R.S0, "pinx")
    asm.la(R.S1, "piny")
    asm.li(R.S2, nets)
    asm.li(R.V0, 0)

    asm.label("net")
    asm.li(R.T0, pins)
    asm.li(R.T1, 0)                  # max x
    asm.li(R.T2, 4096)               # min x
    asm.li(R.T3, 0)                  # max y
    asm.li(R.T4, 4096)               # min y
    asm.label("pin")
    asm.ld(R.T5, 0, R.S0)
    asm.ld(R.T6, 0, R.S1)
    asm.cmplt(R.T7, R.T1, R.T5)
    asm.beq(R.T7, "no_maxx")
    asm.mov(R.T1, R.T5)
    asm.label("no_maxx")
    asm.cmplt(R.T7, R.T5, R.T2)
    asm.beq(R.T7, "no_minx")
    asm.mov(R.T2, R.T5)
    asm.label("no_minx")
    asm.cmplt(R.T7, R.T3, R.T6)
    asm.beq(R.T7, "no_maxy")
    asm.mov(R.T3, R.T6)
    asm.label("no_maxy")
    asm.cmplt(R.T7, R.T6, R.T4)
    asm.beq(R.T7, "no_miny")
    asm.mov(R.T4, R.T6)
    asm.label("no_miny")
    asm.addi(R.S0, R.S0, 8)
    asm.addi(R.S1, R.S1, 8)
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "pin")
    asm.sub(R.T8, R.T1, R.T2)
    asm.sub(R.T9, R.T3, R.T4)
    asm.add(R.T10, R.T8, R.T9)
    asm.add(R.V0, R.V0, R.T10)
    asm.subi(R.S2, R.S2, 1)
    asm.bgt(R.S2, "net")
    asm.halt()
    return asm.assemble()


@register("vpr_route_like", "specint", "Wavefront expansion over a routing grid.", paper_name="vpr.r")
def vpr_route_like(scale: int = 1) -> Program:
    width = 16
    sources = scaled(12, scale)
    asm = Assembler("vpr_route_like")
    asm.word_array("costgrid", lcg_sequence(131, width * width, 16))
    asm.zeros("visited", width * width)
    asm.word_array("starts", [8 * s for s in lcg_sequence(137, sources, width * width)])
    asm.la(R.S0, "costgrid")
    asm.la(R.S1, "visited")
    asm.la(R.S2, "starts")
    asm.li(R.S3, sources)
    asm.li(R.V0, 0)

    asm.label("source")
    asm.ld(R.S4, 0, R.S2)            # start offset (bytes)
    asm.li(R.T0, 24)                 # expansion steps
    asm.label("expand")
    asm.add(R.T1, R.S0, R.S4)
    asm.ld(R.T2, 0, R.T1)            # cost at cell
    asm.add(R.T3, R.S1, R.S4)
    asm.ld(R.T4, 0, R.T3)            # visited count
    asm.addi(R.T4, R.T4, 1)
    asm.st(R.T4, 0, R.T3)
    asm.add(R.V0, R.V0, R.T2)
    # move right or down depending on the cost parity, wrapping at the end
    asm.andi(R.T5, R.T2, 1)
    asm.beq(R.T5, "right")
    asm.addi(R.S4, R.S4, 8 * width)
    asm.br("wrap")
    asm.label("right")
    asm.addi(R.S4, R.S4, 8)
    asm.label("wrap")
    asm.li(R.T6, 8 * width * width)
    asm.cmplt(R.T7, R.S4, R.T6)
    asm.bne(R.T7, "no_wrap")
    asm.sub(R.S4, R.S4, R.T6)
    asm.label("no_wrap")
    asm.subi(R.T0, R.T0, 1)
    asm.bgt(R.T0, "expand")
    asm.addi(R.S2, R.S2, 8)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "source")
    asm.halt()
    return asm.assemble()


# ---------------------------------------------------------------------------
# vortex: object database with heavy call/stack traffic
# ---------------------------------------------------------------------------


@register("vortex_like", "specint", "Object-store transactions with deep call chains.", paper_name="vortex")
def vortex_like(scale: int = 1) -> Program:
    records = scaled(24, scale)
    asm = Assembler("vortex_like")
    asm.word_array("store", lcg_sequence(139, records * 4, 1 << 20))
    asm.zeros("index", 32)
    asm.zeros("mirror", records * 4)
    asm.la(R.S0, "store")
    asm.la(R.S1, "mirror")
    asm.la(R.S2, "index")
    asm.li(R.S3, records)
    asm.li(R.S5, 0)

    asm.label("txn")
    emit_argument_moves(asm, (R.A0, R.S0), (R.A1, R.S1))
    asm.jsr("copy_record")
    asm.mov(R.T0, R.V0)
    emit_argument_moves(asm, (R.A0, R.T0))
    asm.jsr("update_index")
    asm.add(R.S5, R.S5, R.V0)
    asm.addi(R.S0, R.S0, 32)
    asm.addi(R.S1, R.S1, 32)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "txn")
    asm.halt()

    # copy_record(src, dst) -> checksum
    asm.label("copy_record")
    asm.prologue(32, (R.S4,))
    asm.li(R.S4, 0)
    asm.li(R.T1, 4)
    asm.label("field")
    asm.ld(R.T2, 0, R.A0)
    asm.st(R.T2, 0, R.A1)
    asm.add(R.S4, R.S4, R.T2)
    asm.addi(R.A0, R.A0, 8)
    asm.addi(R.A1, R.A1, 8)
    asm.subi(R.T1, R.T1, 1)
    asm.bgt(R.T1, "field")
    asm.mov(R.V0, R.S4)
    asm.epilogue(32, (R.S4,))

    # update_index(checksum) -> bucket count
    asm.label("update_index")
    asm.prologue(16)
    asm.andi(R.T3, R.A0, 31)
    asm.slli(R.T3, R.T3, 3)
    asm.add(R.T3, R.S2, R.T3)
    asm.ld(R.T4, 0, R.T3)
    asm.addi(R.T4, R.T4, 1)
    asm.st(R.T4, 0, R.T3)
    asm.mov(R.V0, R.T4)
    asm.epilogue(16)
    return asm.assemble()


# ---------------------------------------------------------------------------
# Footprint-scaled variants (suite "specint_fp")
# ---------------------------------------------------------------------------
#
# The stock kernels scale by iterating longer; their auxiliary structures
# (hash-head tables, dictionaries) stay fixed-size, so caches and predictors
# remain warm at any scale.  These variants grow the *auxiliary footprint*
# with scale — the ROADMAP follow-up to ``footprint_walk`` — so figure
# sweeps over suite ``specint_fp`` probe the capacity regime via --scale.


@register("gzip_fp_like", "specint_fp",
          "LZ77 matcher whose hash-head table footprint grows with scale.",
          paper_name="gzip.fp")
def gzip_fp_like(scale: int = 1) -> Program:
    """``gzip_like`` with a footprint-scaled hash-head table.

    The base kernel hashes three bytes into a fixed 64-bucket head table;
    here the table holds ``~64 * scale`` (power-of-two) buckets fed by a
    wider multiplicative hash, so growing ``scale`` spreads the chain heads
    over an ever larger, sparsely revisited structure (L1 pressure instead
    of a permanently warm 512-byte table).
    """
    length = scaled(192, scale)
    buckets = _pow2_buckets(64, scale)
    asm = Assembler(f"gzip_fp_like_x{scale}")
    asm.byte_array("text", lcg_bytes(17, length + 8, 16))
    asm.zeros("heads", buckets)
    asm.zeros("matches", 4)
    asm.la(R.S0, "text")
    asm.la(R.S1, "heads")
    asm.li(R.S2, 0)                  # position
    asm.li(R.V0, 0)                  # total match length
    asm.li(R.S3, length)
    asm.li(R.S4, buckets - 1)        # hash mask (footprint-scaled)

    asm.label("scan")
    # hash = ((b0 * 65) + b1) * 65 + b2, masked to the scaled table
    asm.add(R.T0, R.S0, R.S2)
    asm.ldbu(R.T1, 0, R.T0)
    asm.ldbu(R.T2, 1, R.T0)
    asm.ldbu(R.T3, 2, R.T0)
    asm.muli(R.T4, R.T1, 65)
    asm.add(R.T4, R.T4, R.T2)
    asm.muli(R.T4, R.T4, 65)
    asm.add(R.T4, R.T4, R.T3)
    asm.and_(R.T4, R.T4, R.S4)
    # look up previous position with the same hash
    asm.slli(R.T5, R.T4, 3)
    asm.add(R.T5, R.S1, R.T5)
    asm.ld(R.T6, 0, R.T5)            # candidate position + 1 (0 means empty)
    asm.addi(R.T7, R.S2, 1)
    asm.st(R.T7, 0, R.T5)            # update head
    asm.beq(R.T6, "advance")
    # compare up to 4 bytes at the candidate
    asm.subi(R.T6, R.T6, 1)
    asm.add(R.T7, R.S0, R.T6)
    asm.li(R.T8, 4)
    asm.li(R.T9, 0)                  # match length
    asm.label("cmploop")
    asm.ldbu(R.T10, 0, R.T0)
    asm.ldbu(R.T11, 0, R.T7)
    asm.sub(R.T12, R.T10, R.T11)
    asm.bne(R.T12, "cmpdone")
    asm.addi(R.T9, R.T9, 1)
    asm.addi(R.T0, R.T0, 1)
    asm.addi(R.T7, R.T7, 1)
    asm.subi(R.T8, R.T8, 1)
    asm.bgt(R.T8, "cmploop")
    asm.label("cmpdone")
    asm.add(R.V0, R.V0, R.T9)
    asm.label("advance")
    asm.addi(R.S2, R.S2, 1)
    asm.cmplt(R.T0, R.S2, R.S3)
    asm.bne(R.T0, "scan")
    asm.la(R.T1, "matches")
    asm.st(R.V0, 0, R.T1)
    asm.halt()
    return asm.assemble()


@register("perl_fp_like", "specint_fp",
          "Hash-table counting whose table footprint grows with scale.",
          paper_name="perl.fp")
def perl_fp_like(scale: int = 1) -> Program:
    """``perl_diffmail_like`` with footprint-scaled hash tables.

    The base kernel folds every key into 64 fixed buckets (two 512-byte
    tables that never leave the L1).  Here both the count table and the
    chain table hold ``~64 * scale`` buckets, so the randomly-hashed update
    stream touches a structure whose working set grows with scale.
    """
    keys = scaled(64, scale)
    buckets = _pow2_buckets(64, scale)
    asm = Assembler(f"perl_fp_like_x{scale}")
    asm.word_array("keys", lcg_sequence(97, keys, 1 << 20))
    asm.zeros("table", buckets)
    asm.zeros("chains", buckets)
    asm.la(R.S0, "keys")
    asm.la(R.S1, "table")
    asm.la(R.S2, "chains")
    asm.li(R.S3, keys)
    asm.li(R.S5, 0)

    asm.label("key")
    asm.ld(R.T0, 0, R.S0)
    emit_argument_moves(asm, (R.A0, R.T0))
    asm.jsr("insert")
    asm.add(R.S5, R.S5, R.V0)
    asm.addi(R.S0, R.S0, 8)
    asm.subi(R.S3, R.S3, 1)
    asm.bgt(R.S3, "key")
    asm.halt()

    asm.label("insert")
    asm.prologue(32, (R.S4,))
    asm.mov(R.S4, R.A0)
    # hash = (key * 40503) >> 8, masked to the scaled table
    asm.li(R.T1, 40503)
    asm.mul(R.T2, R.S4, R.T1)
    asm.srli(R.T2, R.T2, 8)
    asm.li(R.T1, buckets - 1)
    asm.and_(R.T2, R.T2, R.T1)
    asm.slli(R.T2, R.T2, 3)
    asm.add(R.T3, R.S1, R.T2)
    asm.ld(R.T4, 0, R.T3)            # current count
    asm.addi(R.T4, R.T4, 1)
    asm.st(R.T4, 0, R.T3)
    # chain bookkeeping (second table) plus a "score" loop over key digits
    asm.add(R.T5, R.S2, R.T2)
    asm.ld(R.T6, 0, R.T5)
    asm.add(R.T6, R.T6, R.S4)
    asm.st(R.T6, 0, R.T5)
    asm.li(R.V0, 0)
    asm.mov(R.T7, R.S4)
    for _ in range(2):
        asm.andi(R.T8, R.T7, 15)
        asm.add(R.V0, R.V0, R.T8)
        asm.srli(R.T7, R.T7, 4)
    asm.add(R.V0, R.V0, R.T4)
    asm.epilogue(32, (R.S4,))
    return asm.assemble()
