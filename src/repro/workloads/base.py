"""Workload abstraction and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.program import Program


@dataclass(frozen=True)
class Workload:
    """A named, parameterised synthetic kernel.

    Attributes:
        name: Unique workload name (e.g. ``"gzip_like"``).
        suite: Suite it belongs to: ``"specint"``, ``"mediabench"`` or
            ``"micro"``.
        builder: Callable ``builder(scale) -> Program``.  ``scale`` controls
            the amount of dynamic work (roughly linearly); ``scale=1`` is the
            default used by the experiment harness, tests use smaller values.
        description: One-line description of what the kernel computes and
            which paper benchmark it stands in for.
        paper_name: The benchmark name used in the paper's figures (so report
            rows can be labelled identically).
    """

    name: str
    suite: str
    builder: Callable[[int], Program]
    description: str = ""
    paper_name: str = ""

    def build(self, scale: int = 1) -> Program:
        """Build the program at the requested scale (must be >= 1)."""
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        program = self.builder(scale)
        if not isinstance(program, Program):
            raise TypeError(f"workload {self.name} builder returned {type(program)!r}")
        return program

    @property
    def label(self) -> str:
        """Label used in report rows (the paper's name when available)."""
        return self.paper_name or self.name


class WorkloadRegistry:
    """A simple name → :class:`Workload` registry."""

    def __init__(self):
        self._workloads: dict[str, Workload] = {}

    def register(self, workload: Workload) -> Workload:
        if workload.name in self._workloads:
            raise ValueError(f"workload {workload.name!r} registered twice")
        self._workloads[workload.name] = workload
        return workload

    def get(self, name: str) -> Workload:
        try:
            return self._workloads[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._workloads))
            raise KeyError(f"unknown workload {name!r}; known: {known}") from exc

    def by_suite(self, suite: str) -> list[Workload]:
        return [w for w in self._workloads.values() if w.suite == suite]

    def names(self) -> list[str]:
        return sorted(self._workloads)

    def __len__(self) -> int:
        return len(self._workloads)

    def __contains__(self, name: str) -> bool:
        return name in self._workloads


#: The global registry populated by the suite modules at import time.
REGISTRY = WorkloadRegistry()


def register(
    name: str,
    suite: str,
    description: str = "",
    paper_name: str = "",
) -> Callable[[Callable[[int], Program]], Callable[[int], Program]]:
    """Decorator that registers a builder function as a workload."""

    def decorator(builder: Callable[[int], Program]) -> Callable[[int], Program]:
        REGISTRY.register(
            Workload(
                name=name,
                suite=suite,
                builder=builder,
                description=description,
                paper_name=paper_name,
            )
        )
        return builder

    return decorator


def get_workload(name: str) -> Workload:
    """Look up a workload by name (importing the suite modules as needed)."""
    _ensure_suites_loaded()
    return REGISTRY.get(name)


def list_workloads(suite: str | None = None) -> list[Workload]:
    """All registered workloads, optionally filtered by suite."""
    _ensure_suites_loaded()
    if suite is None:
        return [REGISTRY.get(name) for name in REGISTRY.names()]
    return sorted(REGISTRY.by_suite(suite), key=lambda w: w.name)


def _ensure_suites_loaded() -> None:
    # Imported lazily to avoid circular imports (the suite modules import the
    # ``register`` decorator from this module).  ``builder`` registers the
    # footprint-scaling kernel alongside its helpers.
    from repro.workloads import builder, mediabench, microbench, specint  # noqa: F401
