"""Unified command-line interface: ``python -m repro``.

Three subcommands cover the whole harness without writing Python:

* ``python -m repro list`` — every registered experiment (registry-driven),
  plus ``--workloads`` for the workload suites.
* ``python -m repro run fig8 [--suite S] [--workloads W ...] [--scale N]
  [--jobs auto|N] [--cache | --no-cache | --cache-dir DIR] [--json PATH]``
  — build the experiment's spec, run the grid through the engine, print the
  report table and optionally write the JSON artifact
  (:meth:`~repro.harness.experiments.ExperimentReport.to_json`, exact
  round-trip via ``from_json``).
* ``python -m repro cache [--clear]`` — inspect or wipe the outcome cache
  (absorbs the older ``python -m repro.harness.cache`` entry point, which
  still works).

Caching follows the library defaults: enabled when ``$REPRO_CACHE_DIR`` is
set, unless forced with ``--cache`` / ``--no-cache`` / ``--cache-dir``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, list and cache the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a registered experiment and print / save its report")
    run.add_argument("experiment", help="registry name (see `python -m repro list`)")
    run.add_argument("--suite", default=None,
                     help="workload suite (default: the experiment's own)")
    run.add_argument("--workloads", nargs="+", metavar="NAME",
                     help="explicit workload subset (default: the full suite)")
    run.add_argument("--scale", default="1", metavar="N|N,N,...",
                     help="workload scale factor; scale_sweep also accepts a "
                          "comma-separated list of scales (e.g. 1,2,4,8)")
    run.add_argument("--jobs", default=None, metavar="N|auto",
                     help="worker processes: an integer or 'auto' (adaptive; "
                          "the default)")
    cache_group = run.add_mutually_exclusive_group()
    cache_group.add_argument("--cache", action="store_true",
                             help="force the default-location outcome cache on")
    cache_group.add_argument("--no-cache", action="store_true",
                             help="force the outcome cache off")
    cache_group.add_argument("--cache-dir", metavar="DIR",
                             help="use an outcome cache rooted at DIR")
    run.add_argument("--json", metavar="PATH", dest="json_path",
                     help="write the report as a JSON artifact to PATH "
                          "('-' for stdout)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the report table on stdout")

    lst = sub.add_parser("list", help="list registered experiments")
    lst.add_argument("--workloads", action="store_true",
                     help="also list the workload suites and their kernels")

    cache = sub.add_parser("cache", help="inspect or clear the outcome cache")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cache entry")

    return parser


def _resolve_cache_arg(args) -> object:
    """Map the --cache/--no-cache/--cache-dir flags onto the library forms."""
    if args.cache:
        return True
    if args.no_cache:
        return False
    if args.cache_dir:
        return args.cache_dir
    return None


def _parse_scales(text: str) -> list[int]:
    """Parse the ``--scale`` value: one integer or a comma-separated list."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValueError(f"--scale expects an integer or a comma list, got {text!r}")
    if not values or any(value < 1 for value in values):
        raise ValueError(f"--scale values must be >= 1, got {text!r}")
    return values


def _cmd_run(args) -> int:
    from repro.harness.spec import get_experiment

    try:
        entry = get_experiment(args.experiment)
        scales = _parse_scales(args.scale)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    params = {}
    if entry.name == "scale_sweep":
        # Scales are the sweep's own axis: route any --scale value (one
        # integer or a list, duplicates dropped) through scales=.
        scale = 1
        params["scales"] = tuple(dict.fromkeys(scales))
    elif len(scales) == 1:
        scale = scales[0]
    else:
        print(f"error: only scale_sweep accepts a list of scales; "
              f"pass a single --scale to {entry.name}", file=sys.stderr)
        return 2

    try:
        # jobs=None honors $REPRO_JOBS and otherwise defaults to "auto"
        # (see repro.harness.executors.resolve_executor).
        report = entry.run(
            suite=args.suite,
            workloads=args.workloads,
            scale=scale,
            jobs=args.jobs,
            cache=_resolve_cache_arg(args),
            **params,
        )
    except (KeyError, ValueError) as error:
        from repro.harness.runner import MatrixLookupError, ZeroCycleError

        if isinstance(error, (MatrixLookupError, ZeroCycleError)):
            # A broken simulation, not a usage error — surface the full
            # traceback rather than a quiet exit-2 message.
            raise
        # Unknown workloads/suites and malformed grids arrive here; show the
        # message without a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2

    if not args.quiet:
        print(report)
    if args.json_path:
        text = report.to_json()
        if args.json_path == "-":
            print(text)
        else:
            path = Path(args.json_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")
            print(f"wrote {path}", file=sys.stderr)
    return 0


def _cmd_list(args) -> int:
    from repro.harness.spec import list_experiments

    entries = list_experiments()
    width = max(len(entry.name) for entry in entries)
    print("experiments:")
    for entry in entries:
        suite = f" [suite: {entry.default_suite}]"
        print(f"  {entry.name:<{width}}  {entry.title} — {entry.description}{suite}")
    print(f"\nrun one with: python -m repro run {entries[0].name} "
          f"[--workloads ...] [--json out.json]")

    if args.workloads:
        from repro.workloads.base import list_workloads

        by_suite: dict[str, list[str]] = {}
        for workload in list_workloads():
            by_suite.setdefault(workload.suite, []).append(workload.name)
        print("\nworkloads:")
        for suite_name, names in sorted(by_suite.items()):
            print(f"  {suite_name}: {', '.join(names)}")
    return 0


def _cmd_cache(args) -> int:
    from repro.harness.cache import main as cache_main

    return cache_main(["--clear"] if args.clear else [])


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list(args)
    return _cmd_cache(args)


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
