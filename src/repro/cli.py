"""Unified command-line interface: ``python -m repro``.

Six subcommands cover the whole harness without writing Python:

* ``python -m repro list`` — every registered experiment (registry-driven),
  plus ``--workloads`` for the workload suites.
* ``python -m repro run fig8 [--suite S] [--workloads W ...] [--scale N]
  [--jobs auto|N] [--cache | --no-cache | --cache-dir DIR] [--json PATH]
  [--stats]``
  — run an experiment through the :class:`repro.api.session.Session`
  facade, print the report table and optionally write the JSON artifact
  (:meth:`~repro.harness.experiments.ExperimentReport.to_json`, exact
  round-trip via ``from_json``).  ``--stats`` renders the report's
  occupancy/utilization section (recorded by e.g. the ``bottleneck``
  experiment) as an extra table.
* ``python -m repro cache [--clear]`` — inspect or wipe the outcome cache
  (absorbs the older ``python -m repro.harness.cache`` entry point, which
  still works).
* ``python -m repro serve [--host H] [--port P] [--jobs auto|N]
  [--workers N] [--session-workers N] [cache flags]`` — run the
  JSON-over-HTTP service (:mod:`repro.api.service`) until SIGINT/SIGTERM.
  ``--workers N`` (N > 0) executes grids on a distributed fleet of N
  worker *processes* behind a lease broker (:mod:`repro.api.fleet`);
  the default 0 keeps the in-process executors.
* ``python -m repro worker --server URL [--worker-id ID] [--store LOCATOR
  --store-token T]`` — run one fleet worker pulling cell leases from a
  broker (:mod:`repro.api.worker`); normally spawned by the fleet itself,
  but startable by hand to attach extra capacity to a running ``serve
  --workers`` broker.  ``--store http://host:port`` commits outcomes to a
  shared result store instead of a filesystem path, so cross-host workers
  need no shared directory.
* ``python -m repro store-serve [--host H] [--port P] [--db PATH]
  [--token T] [--max-bytes N] [--ttl S]`` — run the shared
  content-addressed result store (:mod:`repro.store.http`) that sessions,
  services and fleet workers point at with ``--store`` /
  ``$REPRO_STORE``; see ``docs/store.md``.
* ``python -m repro submit fig8 [grid flags] [--server URL] [--wait]
  [--json PATH]`` — POST a request to a running server; ``--wait``
  long-polls until the job finishes and prints the report.
* ``python -m repro status JOB_ID [--server URL] [--wait S] [--json PATH]``
  — fetch one job's status/report from a running server.
* ``python -m repro lint [paths] [--rule R] [--json [PATH]]
  [--update-baseline [--force]]`` — run the AST-based invariant linter
  (:mod:`repro.lint`): determinism, lock discipline, wire-schema freeze,
  snapshot coverage, plus the docs/docstring gates.  Exits 1 on findings;
  see ``docs/linting.md``.

Caching follows the library defaults: enabled when ``$REPRO_STORE`` or
``$REPRO_CACHE_DIR`` is set, unless forced with ``--cache`` /
``--no-cache`` / ``--cache-dir`` / ``--store``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    """The shared --cache / --no-cache / --cache-dir / --store flag group."""
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument("--cache", action="store_true",
                             help="force the default-location outcome cache on")
    cache_group.add_argument("--no-cache", action="store_true",
                             help="force the outcome cache off")
    cache_group.add_argument("--cache-dir", metavar="DIR",
                             help="use an outcome cache rooted at DIR")
    cache_group.add_argument("--store", metavar="LOCATOR",
                             help="use a shared result store: sqlite://PATH "
                                  "or http://host:port of a `repro "
                                  "store-serve` (see docs/store.md)")


def _add_grid_flags(parser: argparse.ArgumentParser) -> None:
    """The shared experiment-grid flags (suite / workloads / scale)."""
    parser.add_argument("experiment",
                        help="registry name (see `python -m repro list`)")
    parser.add_argument("--suite", default=None,
                        help="workload suite (default: the experiment's own)")
    parser.add_argument("--workloads", nargs="+", metavar="NAME",
                        help="explicit workload subset (default: the full suite)")
    parser.add_argument("--scale", default="1", metavar="N|N,N,...",
                        help="workload scale factor; scale_sweep also accepts a "
                             "comma-separated list of scales (e.g. 1,2,4,8)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, list, serve and cache the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a registered experiment and print / save its report")
    _add_grid_flags(run)
    run.add_argument("--jobs", default=None, metavar="N|auto",
                     help="worker processes: an integer or 'auto' (adaptive; "
                          "the default)")
    run.add_argument("--backend", default=None, metavar="NAME",
                     help="cycle-loop backend: python|compiled (default: "
                          "$REPRO_BACKEND, else python; an unavailable "
                          "backend degrades to python with identical "
                          "results)")
    _add_cache_flags(run)
    run.add_argument("--json", metavar="PATH", dest="json_path",
                     help="write the report as a JSON artifact to PATH "
                          "('-' for stdout)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the report table on stdout")
    run.add_argument("--stats", action="store_true",
                     help="also print the per-cell occupancy/utilization "
                          "table (experiments that record occupancy, e.g. "
                          "bottleneck)")

    lst = sub.add_parser("list", help="list registered experiments")
    lst.add_argument("--workloads", action="store_true",
                     help="also list the workload suites and their kernels")

    cache = sub.add_parser("cache", help="inspect or clear the outcome cache")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cache entry")

    serve = sub.add_parser(
        "serve", help="run the JSON-over-HTTP experiment service")
    serve.add_argument("--host", default=None,
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default 8765; 0 = any free port)")
    serve.add_argument("--jobs", default=None, metavar="N|auto",
                       help="worker processes per experiment grid "
                            "(in-process backends; ignored with --workers)")
    serve.add_argument("--workers", type=int, default=0,
                       help="fleet worker processes behind a lease broker "
                            "(0 = in-process execution, the default)")
    serve.add_argument("--session-workers", type=int, default=2,
                       help="concurrent jobs the session runs (default 2)")
    serve.add_argument("--backend", default=None, metavar="NAME",
                       help="cycle-loop backend for every run this service "
                            "executes: python|compiled (default: "
                            "$REPRO_BACKEND, else python)")
    _add_cache_flags(serve)

    worker = sub.add_parser(
        "worker", help="run one fleet worker against a repro broker")
    worker.add_argument("--server", required=True, metavar="URL",
                        help="fleet broker base URL (http://host:port)")
    worker.add_argument("--worker-id", default=None, metavar="ID",
                        help="stable worker identity (default worker-<pid>)")
    worker.add_argument("--poll-wait", type=float, default=5.0, metavar="S",
                        help="long-poll window per lease request (default 5s)")
    worker.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="exit cleanly after N cells (default: unbounded)")
    worker.add_argument("--backend", default=None, metavar="NAME",
                        help="cycle-loop backend for every leased cell: "
                             "python|compiled (default: what each lease "
                             "asks for)")
    worker.add_argument("--store", default=None, metavar="LOCATOR",
                        help="result-store override for every cell (path, "
                             "sqlite://PATH or http://host:port; default: "
                             "what each cell quotes)")
    worker.add_argument("--store-token", default=None, metavar="TOKEN",
                        help="bearer token for an HTTP store "
                             "(default: $REPRO_STORE_TOKEN)")

    store_serve = sub.add_parser(
        "store-serve",
        help="run the shared result-store HTTP server (see docs/store.md)")
    store_serve.add_argument("--host", default=None,
                             help="bind address (default 127.0.0.1)")
    store_serve.add_argument("--port", type=int, default=None,
                             help="TCP port (default 8878; 0 = any free port)")
    store_serve.add_argument("--db", default=None, metavar="PATH",
                             help="backing sqlite database (default: "
                                  "store.sqlite3 in the cache directory)")
    store_serve.add_argument("--token", default=None, metavar="TOKEN",
                             help="require this bearer token "
                                  "(default: $REPRO_STORE_TOKEN; empty = "
                                  "no auth)")
    store_serve.add_argument("--max-bytes", type=int, default=None,
                             metavar="N",
                             help="LRU-evict beyond N payload bytes")
    store_serve.add_argument("--ttl", type=float, default=None, metavar="S",
                             help="expire entries idle for S seconds")

    submit = sub.add_parser(
        "submit", help="submit an experiment to a running `repro serve`")
    _add_grid_flags(submit)
    submit.add_argument("--server", default=None, metavar="URL",
                        help="service base URL (default http://127.0.0.1:8765)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print the report")
    submit.add_argument("--json", metavar="PATH", dest="json_path",
                        help="with --wait: write the report JSON to PATH "
                             "('-' for stdout)")
    submit.add_argument("--stats", action="store_true",
                        help="with --wait: also print the occupancy/"
                             "utilization table when the report carries one")

    lint = sub.add_parser(
        "lint", help="run the AST-based invariant linter (see docs/linting.md)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: src/)")
    lint.add_argument("--rule", action="append", metavar="RULE",
                      dest="rules",
                      help="run only this rule (repeatable; see --list-rules)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    lint.add_argument("--json", nargs="?", const="-", default=None,
                      metavar="PATH", dest="json_path",
                      help="emit the findings report as JSON to PATH "
                           "(default '-': stdout)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="wire-schema baseline path (default "
                           "scripts/schema_baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="regenerate the wire-schema baseline from the "
                           "current schema module and exit")
    lint.add_argument("--force", action="store_true",
                      help="with --update-baseline: proceed despite "
                           "uncommitted schema edits or a missing version "
                           "bump")
    lint.add_argument("--root", default=None, metavar="DIR",
                      help=argparse.SUPPRESS)  # test hook: lint another tree

    status = sub.add_parser(
        "status", help="query a job on a running `repro serve`")
    status.add_argument("job_id", help="job id returned by submit")
    status.add_argument("--server", default=None, metavar="URL",
                        help="service base URL (default http://127.0.0.1:8765)")
    status.add_argument("--wait", type=float, default=0.0, metavar="S",
                        help="long-poll up to S seconds for a terminal state")
    status.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write the status payload as JSON to PATH "
                             "('-' for stdout)")

    return parser


def _resolve_cache_arg(args) -> object:
    """Map the cache/store flag group onto the library ``cache=`` forms."""
    if args.cache:
        return True
    if args.no_cache:
        return False
    if args.cache_dir:
        return args.cache_dir
    if getattr(args, "store", None):
        return args.store
    return None


def _parse_scales(text: str) -> list[int]:
    """Parse the ``--scale`` value: one integer or a comma-separated list."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValueError(f"--scale expects an integer or a comma list, got {text!r}")
    if not values or any(value < 1 for value in values):
        raise ValueError(f"--scale values must be >= 1, got {text!r}")
    return values


def _resolve_scale_params(experiment: str, scales: list[int]) -> tuple[int, dict]:
    """Map a parsed ``--scale`` list onto (scale, params) for one experiment.

    ``scale_sweep`` takes the whole (deduplicated) list through
    ``params["scales"]``; every other experiment takes exactly one scale —
    a list raises ValueError with the usage message.  Shared by ``run``
    (local) and ``submit`` (wire) so both validate identically.
    """
    if experiment == "scale_sweep":
        # Scales are the sweep's own axis: route any --scale value (one
        # integer or a list, duplicates dropped) through scales=.
        return 1, {"scales": list(dict.fromkeys(scales))}
    if len(scales) == 1:
        return scales[0], {}
    raise ValueError(f"only scale_sweep accepts a list of scales; "
                     f"pass a single --scale to {experiment}")


def _cmd_run(args) -> int:
    from repro.harness.spec import get_experiment

    try:
        entry = get_experiment(args.experiment)
        scale, params = _resolve_scale_params(
            entry.name, _parse_scales(args.scale))
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        # The CLI is a thin client of the Session facade (the same surface
        # `repro serve` exposes over HTTP); jobs=None honors $REPRO_JOBS and
        # otherwise defaults to "auto".
        from repro.api.session import default_session

        report = default_session().run_experiment(
            entry.name,
            suite=args.suite,
            workloads=args.workloads,
            scale=scale,
            jobs=args.jobs,
            cache=_resolve_cache_arg(args),
            backend=args.backend,
            **params,
        )
    except (KeyError, ValueError) as error:
        from repro.harness.runner import MatrixLookupError, ZeroCycleError

        if isinstance(error, (MatrixLookupError, ZeroCycleError)):
            # A broken simulation, not a usage error — surface the full
            # traceback rather than a quiet exit-2 message.
            raise
        # Unknown workloads/suites and malformed grids arrive here; show the
        # message without a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2

    _emit_report(report, args.json_path, quiet=args.quiet, stats=args.stats)
    return 0


def _cmd_list(args) -> int:
    from repro.harness.spec import list_experiments

    entries = list_experiments()
    width = max(len(entry.name) for entry in entries)
    print("experiments:")
    for entry in entries:
        suite = f" [suite: {entry.default_suite}]"
        print(f"  {entry.name:<{width}}  {entry.title} — {entry.description}{suite}")
    print(f"\nrun one with: python -m repro run {entries[0].name} "
          f"[--workloads ...] [--json out.json]")

    if args.workloads:
        from repro.workloads.base import list_workloads

        by_suite: dict[str, list[str]] = {}
        for workload in list_workloads():
            by_suite.setdefault(workload.suite, []).append(workload.name)
        print("\nworkloads:")
        for suite_name, names in sorted(by_suite.items()):
            print(f"  {suite_name}: {', '.join(names)}")
    return 0


def _cmd_cache(args) -> int:
    from repro.harness.cache import main as cache_main

    return cache_main(["--clear"] if args.clear else [])


def _cmd_serve(args) -> int:
    from repro.api.service import DEFAULT_HOST, DEFAULT_PORT, serve
    from repro.api.session import Session

    executor = None
    if args.workers > 0:
        # Distributed execution: grids shard across worker processes behind
        # a lease broker; the session owns (and closes) the fleet.  The
        # session's resolved cache is threaded into execute() per run, so
        # workers share it; without one the fleet uses a private temp cache
        # for result transport.
        from repro.api.fleet import FleetExecutor

        executor = FleetExecutor(workers=args.workers)
    session = Session(jobs=args.jobs, cache=_resolve_cache_arg(args),
                      executor=executor, backend=args.backend,
                      workers=max(1, args.session_workers))
    return serve(
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
        session=session,
    )


def _cmd_worker(args) -> int:
    from repro.api.worker import FleetWorker

    worker = FleetWorker(args.server, args.worker_id,
                         poll_wait_s=args.poll_wait,
                         max_cells=args.max_cells,
                         backend=args.backend,
                         store=args.store,
                         store_token=args.store_token)
    return worker.run()


def _cmd_store_serve(args) -> int:
    from repro.store.http import main as store_serve_main

    forwarded: list[str] = []
    if args.host is not None:
        forwarded += ["--host", args.host]
    if args.port is not None:
        forwarded += ["--port", str(args.port)]
    if args.db is not None:
        forwarded += ["--db", args.db]
    if args.token is not None:
        forwarded += ["--token", args.token]
    if args.max_bytes is not None:
        forwarded += ["--max-bytes", str(args.max_bytes)]
    if args.ttl is not None:
        forwarded += ["--ttl", str(args.ttl)]
    return store_serve_main(forwarded)


def _server_url(args) -> str:
    from repro.api.service import DEFAULT_HOST, DEFAULT_PORT

    url = args.server or f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"
    return url.rstrip("/")


def _http_json(url: str, payload: dict | None = None, timeout: float = 120.0) -> dict:
    """One JSON request against a running service (POST when payload given)."""
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            detail = json.loads(error.read()).get("error", "")
        except Exception:
            detail = ""
        raise SystemExit(f"error: server returned {error.code} for {url}"
                         + (f": {detail}" if detail else ""))
    except urllib.error.URLError as error:
        raise SystemExit(f"error: cannot reach {url} ({error.reason}); "
                         f"is `python -m repro serve` running?")


def _write_artifact(text: str, json_path: str) -> None:
    """Write a JSON artifact to PATH, or stdout for ``-``."""
    if json_path == "-":
        print(text)
        return
    path = Path(json_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    print(f"wrote {path}", file=sys.stderr)


def _emit_report(report, json_path: str | None, quiet: bool,
                 stats: bool = False) -> None:
    """Print an ``ExperimentReport`` and/or write it as a JSON artifact.

    With ``stats=True`` the report's occupancy section (when present) is
    rendered as a utilization table after the main one; a report without
    one gets a pointer to the ``bottleneck`` experiment instead.
    """
    if not quiet:
        print(report)
    if stats:
        if report.occupancy:
            from repro.analysis.report import format_occupancy_table

            print()
            print(format_occupancy_table(report.occupancy))
        else:
            print("note: this report carries no occupancy section; run an "
                  "experiment that records it (e.g. `python -m repro run "
                  "bottleneck`)", file=sys.stderr)
    if json_path:
        _write_artifact(report.to_json(), json_path)


def _cmd_submit(args) -> int:
    try:
        scales = _parse_scales(args.scale)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        # Same client-side validation as `repro run` (shared helper): a
        # clear usage error beats a server-side TypeError after the job ran.
        scale, params = _resolve_scale_params(args.experiment, scales)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    base = _server_url(args)
    body = {
        "experiment": args.experiment,
        "suite": args.suite,
        "workloads": args.workloads,
        "scale": scale,
        "params": params,
    }
    submitted = _http_json(f"{base}/experiments", payload=body)
    job_id = submitted.get("job_id", "")
    coalesced = " (coalesced onto an identical in-flight job)" \
        if submitted.get("coalesced") else ""
    print(f"submitted {args.experiment}: job {job_id}"
          f" [{submitted.get('state', '?')}]{coalesced}", file=sys.stderr)
    if not args.wait:
        print(job_id)
        return 0

    while True:
        status = _http_json(f"{base}/jobs/{job_id}?wait=30")
        state = status.get("state")
        if state in ("succeeded", "failed", "cancelled"):
            break
        done, total = status.get("cells_done", 0), status.get("cells_total")
        print(f"job {job_id}: {state}, {done}/{total if total is not None else '?'} "
              f"cells", file=sys.stderr)
    if state == "succeeded":
        from repro.harness.experiments import ExperimentReport

        _emit_report(ExperimentReport.from_dict(status["report"]),
                     args.json_path, quiet=False, stats=args.stats)
        return 0
    print(f"error: job {job_id} {state}"
          + (f": {status.get('error')}" if status.get("error") else ""),
          file=sys.stderr)
    return 1


def _cmd_lint(args) -> int:
    from repro.lint import runner as lint_runner

    if args.list_rules:
        from repro.lint.base import all_checkers

        width = max(len(checker.name) for checker in all_checkers())
        for checker in all_checkers():
            print(f"  {checker.name:<{width}}  [{checker.scope}] "
                  f"{checker.description}")
        return 0

    if args.update_baseline:
        try:
            path = lint_runner.update_baseline(
                args.root,
                baseline=args.baseline or lint_runner.DEFAULT_BASELINE,
                force=args.force)
        except lint_runner.LintUsageError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"wrote {path}", file=sys.stderr)
        return 0

    try:
        findings = lint_runner.run_lint(
            args.paths or None, rules=args.rules, root=args.root,
            baseline=args.baseline)
    except lint_runner.LintUsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json_path:
        _write_artifact(lint_runner.format_json(findings), args.json_path)
        if args.json_path != "-" and findings:
            print(lint_runner.format_text(findings), file=sys.stderr)
    else:
        print(lint_runner.format_text(findings))
    return 1 if findings else 0


def _cmd_status(args) -> int:
    import time

    base = _server_url(args)
    # The server clamps one long-poll to 60s; loop until the caller's
    # deadline so `--wait 300` really waits up to 300 seconds.
    deadline = time.monotonic() + max(0.0, args.wait)
    while True:
        remaining = deadline - time.monotonic()
        suffix = f"?wait={min(30.0, remaining):g}" if remaining > 0 else ""
        status = _http_json(f"{base}/jobs/{args.job_id}{suffix}")
        state = status.get("state")
        if state in ("succeeded", "failed", "cancelled") \
                or deadline - time.monotonic() <= 0:
            break
    done, total = status.get("cells_done", 0), status.get("cells_total")
    print(f"job {status.get('job_id')}: {state}, "
          f"{done}/{total if total is not None else '?'} cells "
          f"({status.get('cells_cached', 0)} cached)", file=sys.stderr)
    if args.json_path:
        _write_artifact(json.dumps(status, indent=2), args.json_path)
    elif state == "succeeded":
        from repro.harness.experiments import ExperimentReport

        _emit_report(ExperimentReport.from_dict(status["report"]),
                     None, quiet=False)
    elif status.get("error"):
        print(f"error: {status['error']}", file=sys.stderr)
    return 0 if state != "failed" else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "store-serve":
        return _cmd_store_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_cache(args)


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
