"""The ``compiled`` backend: generated-C kernel behind the backend protocol.

A slice runs in three phases — :meth:`~repro.uarch.compiled.marshal.KernelState.marshal_in`
(pipeline → flat buffers, side-effect free), one call into the cached
shared object, and marshal-out on success.  Any failure at any phase
(no toolchain, unsupported pipeline feature, un-marshalable state, or a
nonzero kernel return, which covers both real simulation errors like a
commit mismatch and internal give-ups like a wakeup-ring collision)
delegates the *same* slice to the python reference loop, so the observable
behaviour — results, statistics, exceptions — is always exactly the
reference's.
"""

from __future__ import annotations

import ctypes
import weakref

from repro.uarch.backend import CycleLoopBackend, register_backend
from repro.uarch.compiled import build
from repro.uarch.compiled.emit import ERR_OK
from repro.uarch.compiled.marshal import KernelState, MarshalError


class CompiledBackend(CycleLoopBackend):
    """Runs the cycle loop in a generated, disk-cached C shared object."""

    name = "compiled"

    def __init__(self):
        """Set up the per-pipeline marshal-state cache."""
        #: Pipeline -> KernelState.  Weak keys: a state holds only flat
        #: buffers + geometry, and dies with its pipeline.
        self._states: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def available(self) -> bool:
        """Whether the kernel can be (or already is) compiled and loaded."""
        return build.load_kernel() is not None

    def supports(self, pipeline) -> bool:
        """Whether this pipeline's feature set is covered by the kernel.

        The kernel lowers the production configuration space: the stock
        issue queue, the stock renamers, and the always-on observability.
        Timing-record collection and timeline sampling interpose Python
        callbacks mid-cycle, and subclassed components can override
        arbitrary behaviour — those pipelines run on the reference loop.
        """
        from repro.core.renamer import RenoRenamer
        from repro.uarch.rename import BaselineRenamer
        from repro.uarch.scheduler import IssueQueue

        if pipeline.collect_timing or pipeline.timeline_stride > 0:
            return False
        if type(pipeline.issue_queue) is not IssueQueue:
            return False
        return type(pipeline.renamer) in (BaselineRenamer, RenoRenamer)

    def prepare(self, pipeline) -> None:
        """Build the flat ABI buffers for this pipeline ahead of time.

        Called from ``Pipeline.__init__`` so the static flattening (trace
        tables, geometry, buffer allocation) happens outside the timed
        region.  Also forces the one-time kernel compile/load.
        """
        if build.load_kernel() is None or not self.supports(pipeline):
            return
        self._states[pipeline] = KernelState(pipeline)

    def run_cycles(self, pipeline, stop_cycle) -> None:
        """Run one slice in the kernel, or delegate it to the reference.

        Every fallback path re-runs the *identical* slice on
        ``pipeline._run_cycles`` — marshal-in never mutates the pipeline
        and the kernel only ever writes the flat buffers, so a failed
        attempt leaves no trace.
        """
        kernel = build.load_kernel()
        if kernel is None or not self.supports(pipeline):
            pipeline._run_cycles(stop_cycle)
            return
        state = self._states.get(pipeline)
        if state is None:
            state = KernelState(pipeline)
            self._states[pipeline] = state
        try:
            state.marshal_in(pipeline, stop_cycle)
        except MarshalError:
            pipeline._run_cycles(stop_cycle)
            return
        sc_ptr = ctypes.cast(
            state.sc.buffer_info()[0], ctypes.POINTER(ctypes.c_int64))
        code = kernel(sc_ptr, state.pt, state._pages_view)
        if code == ERR_OK:
            state.marshal_out(pipeline)
        else:
            # Max-cycles overruns and commit mismatches raise from here
            # with the reference's exact exception; ERR_INTERNAL simply
            # runs the slice at reference speed.
            pipeline._run_cycles(stop_cycle)


register_backend(CompiledBackend())
