"""Toolchain discovery and cached compilation of the generated kernel.

The kernel C source (:func:`repro.uarch.compiled.emit.kernel_source`) is
compiled at most once per source digest: the shared object is cached under
a digest-named path, so repeated processes (workers, test runs) reuse the
artifact and only the very first use of a new kernel pays the compile.

Everything here fails *silently*: no toolchain, a compiler error, a
load error — any of them makes :func:`load_kernel` return None, which the
backend reports as "unavailable" and the pipeline falls back to the python
reference loop.  Set ``REPRO_NO_CC=1`` to force that path (the CI leg that
proves the fallback works runs the whole suite under it).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

#: Environment switch that makes the toolchain look absent.
ENV_NO_CC = "REPRO_NO_CC"
#: Override for the shared-object cache directory.
ENV_CACHE_DIR = "REPRO_KERNEL_CACHE"

#: Compiler candidates, tried in order.
_COMPILERS = ("cc", "gcc", "clang")

#: Memoised load result: (tried, kernel function or None).
_cached: list = [False, None]


def toolchain() -> str | None:
    """Path of a usable C compiler, or None (also None under REPRO_NO_CC)."""
    if os.environ.get(ENV_NO_CC):
        return None
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> str:
    """Directory holding compiled kernel shared objects."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return override
    return os.path.join(tempfile.gettempdir(), "repro-kernels")


def _compile(cc: str, source: str, digest: str) -> str | None:
    """Compile ``source`` into the cache; returns the .so path or None."""
    directory = cache_dir()
    so_path = os.path.join(directory, f"kernel-{digest}.so")
    if os.path.exists(so_path):
        return so_path
    try:
        os.makedirs(directory, exist_ok=True)
        c_path = os.path.join(directory, f"kernel-{digest}.c")
        with open(c_path, "w", encoding="utf-8") as handle:
            handle.write(source)
        # Compile to a private name and rename into place so concurrent
        # workers never load a half-written object.
        tmp_path = f"{so_path}.{os.getpid()}.tmp"
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp_path, c_path],
            check=True, capture_output=True, timeout=300,
        )
        os.replace(tmp_path, so_path)
        return so_path
    except Exception:
        return None


def load_kernel():
    """The compiled ``repro_run`` entry point, or None when unavailable.

    The result is memoised for the process (including the None case), so
    the cost of a missing toolchain is one ``shutil.which`` scan.
    """
    if _cached[0]:
        return _cached[1]
    _cached[0] = True
    cc = toolchain()
    if cc is None:
        return None
    try:
        from repro.uarch.compiled.emit import kernel_source

        source = kernel_source()
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:20]
        so_path = _compile(cc, source, digest)
        if so_path is None:
            return None
        library = ctypes.CDLL(so_path)
        kernel = library.repro_run
        kernel.argtypes = [
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_void_p),
            ctypes.POINTER(ctypes.c_ubyte),
        ]
        kernel.restype = ctypes.c_int64
        _cached[1] = kernel
    except Exception:
        _cached[1] = None
    return _cached[1]


def reset_cache() -> None:
    """Forget the memoised load result (tests toggle REPRO_NO_CC)."""
    _cached[0] = False
    _cached[1] = None
