"""Marshalling between the :class:`~repro.uarch.core.Pipeline` object graph
and the compiled kernel's flat int64 ABI.

One :class:`KernelState` is built per pipeline (cached by the backend in a
``WeakKeyDictionary``).  Construction flattens everything *static* — the
dynamic trace, the decoded-op tables, the per-opcode tables, the machine
geometry — and allocates every dynamic buffer once, so a ``run_cycles``
call only copies the *live* simulation state in and out.

The contract that makes the no-side-effects-on-error strategy work:
:meth:`KernelState.marshal_in` never mutates any Python object — it only
reads the pipeline and writes the flat buffers.  When the kernel returns a
nonzero error code the backend simply replays the slice with the python
reference loop and the outcome (including the exception the reference
raises) is exactly what an all-python run would have produced.

Two deliberate, behaviourally invisible normalisations happen at
marshal-out:

* window slots whose ``value`` entry was still the construction-time
  ``None`` read back as ``0`` (the pipeline only reads ``value`` for slots
  whose instruction executed, which always overwrites it first);
* in-flight ``RenameResult`` objects rebuilt from the flattened arrays
  carry an empty ``sources`` list (sources are consumed at dispatch, which
  already happened; the commit path reads only the destination fields).
"""

from __future__ import annotations

import ctypes
from array import array

from repro.core.integration import IntegrationEntry
from repro.core.maptable import Mapping
from repro.isa.instruction import DF_LOAD, DF_STORE
from repro.uarch.compiled import emit
from repro.uarch.compiled.emit import PT, POINTERS, SC, SCALARS, VALUE_TO_ID
from repro.uarch.lsq import StoreQueueEntry
from repro.uarch.rename import RenameResult

#: RN_* scalar names, index-aligned with :data:`_RN_STAT_KEYS`.
_RN_SCALARS = (
    "RN_MOVES", "RN_FOLDS", "RN_CSE", "RN_RA", "RN_OVERFLOW",
    "RN_DEP_BLOCKS", "RN_IT_LOOKUPS", "RN_IT_HITS", "RN_IT_INS",
    "RN_IT_VALMIS",
)

#: Unsigned-64 mask (python ints are unbounded; the ABI is 64-bit).
M64 = (1 << 64) - 1

#: Wakeup-ring size exponent.  The ring must give every outstanding wakeup
#: cycle a distinct slot; pending ready cycles span at most one worst-case
#: memory round trip (far below 2**13), and a collision is caught — at
#: marshal-in by :class:`MarshalError`, inside the kernel by ERR_INTERNAL —
#: and delegated to the python loop, so this is a size/perf knob, not a
#: correctness bound.
_WK_BITS = 13

#: Kernel elimination-kind ids back to RenameResult.elim_kind strings.
_ELIM_KINDS = {1: "move", 2: "cf", 3: "cse", 4: "ra"}
#: IntegrationEntry.origin encodings (index == kernel id).
_ORIGINS = ("load", "store", "alu")
_ORIGIN_IDS = {name: i for i, name in enumerate(_ORIGINS)}

#: RenoRenamer.stats keys in the order of the RN_* scalar block.
_RN_STAT_KEYS = (
    "eliminated_moves", "eliminated_folds", "eliminated_cse",
    "eliminated_ra", "overflow_cancellations",
    "dependent_elimination_blocks", "it_lookups", "it_hits",
    "it_insertions", "it_value_mismatches",
)

#: (scalar name, SimStats attribute) for the delta counters the python
#: loop accumulates in locals and folds in via ``+=`` at flush time.
_DELTA_STATS = (
    ("D_ISSUED", "issued"), ("D_FETCHED", "fetched"),
    ("D_FETCH_STALLS", "fetch_stall_cycles"),
    ("D_PREGS_ALLOC", "pregs_allocated"), ("D_FUSED", "fused_operations"),
    ("D_FUSE_PEN", "fusion_penalty_cycles"),
    ("D_STORE_FWD", "store_forwards"), ("D_ELIM_MOVES", "eliminated_moves"),
    ("D_ELIM_FOLDS", "eliminated_folds"), ("D_ELIM_CSE", "eliminated_cse"),
    ("D_ELIM_RA", "eliminated_ra"),
)

#: (scalar name, SimStats attribute) for the absolute counters the loop
#: bumps directly on the stats object.
_ABS_STATS = (
    ("ROB_STALL", "rob_stall_cycles"), ("IQ_STALL", "iq_stall_cycles"),
    ("LSQ_STALL", "lsq_stall_cycles"), ("RENAME_STALL", "rename_stall_cycles"),
    ("MEM_ORDER_VIO", "memory_order_violations"),
    ("LOAD_REPLAYS", "load_replays"), ("REEXEC_LOADS", "reexecuted_loads"),
    ("INT_VAL_MISMATCH", "integration_value_mismatches"),
    ("MAX_PREGS", "max_pregs_in_use"),
)


class MarshalError(Exception):
    """The live state cannot be expressed in the kernel ABI.

    Raised only for representational corner cases (e.g. two outstanding
    wakeup cycles colliding in the ring).  The backend catches it and runs
    the slice on the python loop instead; marshal-in has no side effects,
    so no cleanup is needed.
    """


def _pool_hash(page: int, mask: int) -> int:
    """The kernel's page-pool hash (must match ``pool_find`` exactly)."""
    return (((page * 0x9E3779B97F4A7C15) & M64) >> 40) & mask


def _fill_neg1(arr: array) -> None:
    """Set every element of an int64 array to -1 (byte pattern 0xFF)."""
    address, length = arr.buffer_info()
    ctypes.memset(address, 0xFF, length * arr.itemsize)


def _fill_zero(arr: array) -> None:
    """Zero an array in one memset."""
    address, length = arr.buffer_info()
    ctypes.memset(address, 0, length * arr.itemsize)


class KernelState:
    """Flat ABI buffers for one pipeline, static tables prebuilt.

    Attributes:
        sc: The scalar block (``int64_t *sc``), indexed by :data:`emit.SC`.
        arr: Name -> ``array`` for every pointer-block member.
        pt: The ctypes pointer block handed to the kernel.
    """

    def __init__(self, pipeline):
        """Flatten the static tables and allocate every dynamic buffer."""
        config = pipeline.config
        window = pipeline.window
        iq_cap = config.issue_queue_size
        self.wsize = len(window.dispatch_cycle)
        self.wmask = window.mask
        self.num_pregs = config.num_physical_regs
        self.rstride = iq_cap + 8
        self.wk_mask = (1 << _WK_BITS) - 1
        self.node_cap = 2 * self.wsize + 16
        self.sq_cap = pipeline.store_queue.capacity
        self.lq_cap = pipeline.load_queue.capacity
        total = pipeline._trace_length
        self.total = total
        self.vio_cap = max(64, min(total + 1, 1 << 16))
        self.record_stats = bool(pipeline.record_stats)

        from repro.core.renamer import RenoRenamer

        renamer = pipeline.renamer
        self.reno = type(renamer) is RenoRenamer
        table = renamer.integration_table if self.reno else None
        self.it_on = table is not None
        self.it_sets = table.num_sets if self.it_on else 1
        self.it_assoc = table.associativity if self.it_on else 1
        self.it_pbw = (self.it_sets + 63) >> 6

        branch = pipeline.branch_unit
        self.bp_entries = branch.direction._history_mask + 1
        self.btb_sets = branch.btb.num_sets
        self.btb_assoc = branch.btb.associativity
        self.ras_cap = branch.ras.entries

        caches = pipeline.caches
        self.cache_geom = {
            "L1I": (caches.l1i, config.l1i), "L1D": (caches.l1d, config.l1d),
            "L2": (caches.l2, config.l2),
        }
        self.mshr_cap = config.max_outstanding_misses
        self.ss_entries = pipeline.store_sets.entries

        self.sc = array("q", bytes(8 * len(SCALARS)))
        self.arr: dict[str, array] = {}
        self.pt = (ctypes.c_void_p * len(POINTERS))()
        self._build_static(pipeline)
        self._alloc_dynamic(config)
        self._seed_geometry(pipeline)
        # Page-pool buffers grow on demand (see _ensure_pages).
        self._page_capacity = 0
        self._pages_buf = b""
        self._pages_view = None
        self._store_pages = self._collect_store_pages(pipeline)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _new(self, name: str, typecode: str, length: int) -> array:
        """Allocate one pointer-block array (zero-initialised)."""
        arr = array(typecode, bytes(max(length, 1) * 8))
        self.arr[name] = arr
        return arr

    def _register_pointers(self) -> None:
        """(Re)write every pointer-block slot from the arrays' buffers."""
        pt = self.pt
        for name, index in PT.items():
            pt[index] = self.arr[name].buffer_info()[0]

    def _build_static(self, pipeline) -> None:
        """Flatten the trace, decoded-op and per-opcode tables."""
        total = self.total
        trace = pipeline.trace
        self._new("T_PC", "Q", total)[:] = array(
            "Q", (dyn.pc for dyn in trace))
        self._new("T_SIDX", "q", total)[:] = array(
            "q", (dyn.index for dyn in trace))
        self._new("T_RES", "Q", total)[:] = array(
            "Q", (0 if dyn.result is None else dyn.result for dyn in trace))
        self._new("T_RHAS", "q", total)[:] = array(
            "q", (0 if dyn.result is None else 1 for dyn in trace))
        self._new("T_EFF", "Q", total)[:] = array(
            "Q", (0 if dyn.eff_addr is None else dyn.eff_addr for dyn in trace))
        self._new("T_SV", "Q", total)[:] = array(
            "Q", (0 if dyn.store_value is None else dyn.store_value
                  for dyn in trace))
        self._new("T_SVHAS", "q", total)[:] = array(
            "q", (0 if dyn.store_value is None else 1 for dyn in trace))
        self._new("T_RS1", "Q", total)[:] = array(
            "Q", (dyn.rs1_value for dyn in trace))
        # rs1_value is always materialised in the trace (default 0), so the
        # has-flag is constant 1; kept as an array for ABI uniformity.
        self._new("T_RS1HAS", "q", total)[:] = array("q", (1,) * total)
        self._new("T_TAKEN", "q", total)[:] = array(
            "q", (-1 if dyn.taken is None else int(dyn.taken)
                  for dyn in trace))
        self._new("T_TGT", "Q", total)[:] = array(
            "Q", (0 if dyn.target_pc is None else dyn.target_pc
                  for dyn in trace))
        self._new("T_THAS", "q", total)[:] = array(
            "q", (0 if dyn.target_pc is None else 1 for dyn in trace))

        decoded = pipeline._decoded
        n_static = len(decoded)
        self._new("S_FLAGS", "q", n_static)[:] = array(
            "q", (op[0] for op in decoded))
        self._new("S_CLASS", "q", n_static)[:] = array(
            "q", (op[1] for op in decoded))
        self._new("S_LAT", "q", n_static)[:] = array(
            "q", (op[2] for op in decoded))
        self._new("S_MEMB", "q", n_static)[:] = array(
            "q", (op[3] for op in decoded))
        self._new("S_DEST", "q", n_static)[:] = array(
            "q", (op[4] for op in decoded))
        self._new("S_IMM", "q", n_static)[:] = array(
            "q", (op[5] for op in decoded))
        self._new("S_OPC", "q", n_static)[:] = array(
            "q", (emit.OP_ID[op[6]] for op in decoded))
        self._new("S_FOLD", "q", n_static)[:] = array(
            "q", (op[7] for op in decoded))
        self._new("S_MMASK", "Q", n_static)[:] = array(
            "Q", (op[8] for op in decoded))
        self._new("S_NSRC", "q", n_static)[:] = array(
            "q", (len(op[9]) for op in decoded))
        self._new("S_SRC0", "q", n_static)[:] = array(
            "q", (op[9][0] if op[9] else 0 for op in decoded))
        self._new("S_SRC1", "q", n_static)[:] = array(
            "q", (op[9][1] if len(op[9]) > 1 else 0 for op in decoded))

        tables = emit.opcode_tables()
        n_ops = len(emit.OPCODES)
        for name, key in (("O_CRC", "crc"), ("O_FUSECAT", "fusecat"),
                          ("O_S2L", "s2l"), ("O_BRANCH", "branch"),
                          ("O_CTL", "ctl")):
            self._new(name, "q", n_ops)[:] = array("q", tables[key])

    def _alloc_dynamic(self, config) -> None:
        """Allocate every live-state buffer once (addresses stay stable)."""
        ws, np_, rs = self.wsize, self.num_pregs, self.rstride
        for name in ("W_DISPATCH", "W_COMPLETE", "W_LATENCY", "W_DCACHE",
                     "W_REPLAYED", "W_MISPRED", "W_CLASS", "W_WAITING",
                     "W_DEST", "W_PREV", "W_ELIM", "W_FEXTRA", "W_NSRC",
                     "W_S0P", "W_S0D", "W_S1P", "W_S1D", "RRE_P", "RRE_D"):
            self._new(name, "q", ws)
        self._new("W_VALUE", "Q", ws)
        self._new("W_EFF", "Q", ws)
        self._new("PRF_VAL", "Q", np_)
        self._new("PRF_RDY", "q", np_)
        self._new("READY", "q", 4 * rs)
        self._new("RLEN", "q", 4)
        ring = self.wk_mask + 1
        self._new("WK_CYCLE", "q", ring)
        self._new("WK_HEAD", "q", ring)
        self._new("WK_TAIL", "q", ring)
        self._new("WT_HEAD", "q", np_)
        self._new("WT_TAIL", "q", np_)
        self._new("NODE_SEQ", "q", self.node_cap)
        self._new("NODE_NEXT", "q", self.node_cap)
        self._new("HEAP", "q", self.node_cap)
        self._new("SELBUF", "q", config.total_issue + 4)
        self._new("KEPTBUF", "q", 4 * rs)
        for name in ("SQ_SEQ", "SQ_SIZE", "SQ_AHAS", "SQ_EXEC", "SQ_COMP"):
            self._new(name, "q", self.sq_cap)
        for name in ("SQ_PC", "SQ_TADDR", "SQ_ADDR", "SQ_VAL"):
            self._new(name, "Q", self.sq_cap)
        self._new("FREE_RING", "q", np_)
        self._new("BMAP", "q", 32)
        self._new("RN_PREG", "q", 32)
        self._new("RN_DISP", "q", 32)
        self._new("RC_COUNTS", "q", np_)
        ways = self.it_sets * self.it_assoc
        for name in ("IT_KOP", "IT_IMM", "IT_N", "IT_P0", "IT_D0", "IT_P1",
                     "IT_D1", "IT_OUTP", "IT_OUTD", "IT_ORIG", "IT_VHAS"):
            self._new(name, "q", ways)
        self._new("IT_VAL", "Q", ways)
        self._new("IT_LEN", "q", self.it_sets)
        self._new("IT_PBITS", "Q", np_ * self.it_pbw)
        self._new("IT_PHAS", "q", np_)
        for name in ("BP_BIM", "BP_GSH", "BP_CHOOSER"):
            self._new(name, "q", self.bp_entries)
        btb_ways = self.btb_sets * self.btb_assoc
        self._new("BTB_TAG", "Q", btb_ways)
        self._new("BTB_TGT", "Q", btb_ways)
        self._new("BTB_THAS", "q", btb_ways)
        self._new("BTB_LEN", "q", self.btb_sets)
        self._new("RAS_STACK", "Q", self.ras_cap)
        for short, (cache, _cfg) in self.cache_geom.items():
            self._new(f"CT_{short}", "Q",
                      cache.num_sets * cache.config.associativity)
            self._new(f"CL_{short}", "q", cache.num_sets)
        self._new("MSHR_T", "q", self.mshr_cap + 2)
        self._new("SSIT", "q", self.ss_entries)
        self._new("VIO_LOG", "q", self.vio_cap)
        # Occupancy buffers: real histograms when recording, 1-slot dummies
        # otherwise (the kernel skips them entirely when RECORD_STATS=0).
        if self.record_stats:
            self._new("OC_ROB", "q", self.wsize + 1)
            self._new("OC_IQ", "q", config.issue_queue_size + 1)
            self._new("OC_PRF", "q", np_ + 1)
            self._new("OC_SQ", "q", self.sq_cap + 1)
            self._new("OC_LQ", "q", self.lq_cap + 1)
            self._new("OC_READY", "q", 4 * rs)
            self._new("OC_ISSUED", "q", config.total_issue + 1)
            self._new("OC_CLASS", "q", 4)
            self._new("OC_STALL", "q", 3)
        else:
            for name in ("OC_ROB", "OC_IQ", "OC_PRF", "OC_SQ", "OC_LQ",
                         "OC_READY", "OC_ISSUED", "OC_CLASS", "OC_STALL"):
                self._new(name, "q", 1)
        # Page-pool members get placeholders; _ensure_pages re-registers.
        for name in ("PAGE_NUM", "PAGE_DIRTY", "PH_KEY", "PH_VAL"):
            self._new(name, "q", 1)

    def _seed_geometry(self, pipeline) -> None:
        """Write the static-configuration scalar group (once)."""
        sc = self.sc
        config = pipeline.config

        def put(name, value):
            sc[SC[name]] = int(value)

        put("TOTAL", self.total)
        put("WSIZE", self.wsize)
        put("WMASK", self.wmask)
        put("NUM_PREGS", self.num_pregs)
        put("COMMIT_WIDTH", pipeline._commit_width)
        put("RENAME_WIDTH", pipeline._rename_width)
        put("RETIRE_PORTS", pipeline._retire_dcache_ports)
        put("TAKEN_LIMIT", pipeline._taken_branch_limit)
        put("SCHED_LAT", pipeline._sched_latency)
        put("FE_DEPTH", pipeline._front_end_depth)
        put("VIO_PENALTY", config.memory_violation_penalty)
        put("MAX_CYCLES", config.max_cycles)
        put("MODE", 1 if self.reno else 0)
        put("RECORD_STATS", 1 if self.record_stats else 0)
        put("FB_SHIFT", pipeline._fetch_block_bytes.bit_length() - 1)
        put("TOTAL_ISSUE", config.total_issue)
        put("W_INT", config.int_issue)
        put("W_LOAD", config.load_issue)
        put("W_STORE", config.store_issue)
        put("W_FP", config.fp_issue)
        put("IQ_CAP", config.issue_queue_size)
        put("SQ_CAP", self.sq_cap)
        put("LQ_CAP", self.lq_cap)
        put("RSTRIDE", self.rstride)
        for short, (cache, cfg) in self.cache_geom.items():
            put(f"{short}_SETS", cache.num_sets)
            put(f"{short}_ASSOC", cfg.associativity)
            put(f"{short}_LAT", cfg.latency)
            put(f"{short}_BSHIFT", cache.block_shift)
        put("MEM_LAT", config.memory_latency)
        put("MSHR_CAP", self.mshr_cap)
        put("BP_MASK", self.bp_entries - 1)
        put("BTB_SETS", self.btb_sets)
        put("BTB_ASSOC", self.btb_assoc)
        put("RAS_CAP", self.ras_cap)
        put("SS_MASK", self.ss_entries - 1)
        put("IT_SETS", self.it_sets)
        put("IT_ASSOC", self.it_assoc)
        put("IT_PBW", self.it_pbw)
        put("IT_ON", 1 if self.it_on else 0)
        if self.reno:
            renamer = pipeline.renamer
            rn_config = renamer.config
            put("ELIG_MASK", renamer._elig_mask)
            put("FOLD_MOVES", 1 if renamer._fold_moves else 0)
            put("FOLD_ADDS", 1 if renamer._fold_adds else 0)
            put("ALLOW_DEP", 1 if renamer._allow_dependent else 0)
            put("DISP_BITS", renamer._disp_bits)
            put("POLICY_FULL", 1 if renamer._policy_full else 0)
            put("FUSE_ALL", rn_config.fusion_penalty_all_ops)
            put("FUSE_NONADD", rn_config.fused_nonadd_penalty)
            put("FUSE_DDISP", rn_config.fused_double_disp_penalty)
        put("NODE_CAP", self.node_cap)
        put("WK_MASK", self.wk_mask)
        put("HEAP_CAP", self.node_cap)
        put("VIO_CAP", self.vio_cap)

    @staticmethod
    def _collect_store_pages(pipeline) -> frozenset:
        """Every page any store in the trace can create or dirty.

        Precomputed once so each marshal-in can build a page pool covering
        all pages the kernel might write, including straddles.
        """
        decoded = pipeline._decoded
        pages = set()
        for dyn in pipeline.trace:
            op = decoded[dyn.index]
            if op[0] & DF_STORE:
                pages.add(dyn.eff_addr >> 12)
                pages.add((dyn.eff_addr + op[3] - 1) >> 12)
        return frozenset(pages)

    def _ensure_pages(self, npool: int) -> None:
        """Size the page-pool buffers for ``npool`` pages (grow-only)."""
        if npool <= self._page_capacity:
            return
        capacity = max(16, npool * 2)
        self._page_capacity = capacity
        self.arr["PAGE_NUM"] = array("q", bytes(8 * capacity))
        self.arr["PAGE_DIRTY"] = array("q", bytes(8 * capacity))
        table = 1
        while table < 2 * capacity + 2:
            table <<= 1
        self.arr["PH_KEY"] = array("q", bytes(8 * table))
        self.arr["PH_VAL"] = array("q", bytes(8 * table))
        buf = bytearray(capacity * 4096)
        self._pages_buf = buf
        self._pages_view = (ctypes.c_ubyte * len(buf)).from_buffer(buf)

    # ------------------------------------------------------------------
    # Marshal in (read-only with respect to the pipeline)
    # ------------------------------------------------------------------

    def marshal_in(self, pipeline, stop_cycle) -> None:
        """Copy the live simulation state into the flat buffers.

        Never mutates the pipeline.  Raises :class:`MarshalError` when the
        state has no ABI representation (the caller falls back to python).
        """
        sc = self.sc
        a = self.arr
        window = pipeline.window
        iq = pipeline.issue_queue

        # -- cursors ---------------------------------------------------
        sc[SC["CYCLE"]] = pipeline._cycle
        sc[SC["COMMITTED"]] = pipeline._committed
        sc[SC["FETCH_INDEX"]] = pipeline._fetch_index
        sc[SC["FETCH_RESUME"]] = pipeline._fetch_resume_cycle
        sc[SC["WAITING_BRANCH"]] = pipeline._waiting_branch
        sc[SC["LAST_FETCH_BLOCK"]] = pipeline._last_fetch_block
        sc[SC["STALL_REASON"]] = pipeline._fetch_stall_reason
        sc[SC["STOP"]] = stop_cycle if stop_cycle is not None else 1 << 62
        self._in_committed = pipeline._committed
        self._in_fetch_index = pipeline._fetch_index

        # -- window (structure of arrays) ------------------------------
        a["W_DISPATCH"][:] = array("q", window.dispatch_cycle)
        a["W_COMPLETE"][:] = array("q", window.complete_cycle)
        a["W_LATENCY"][:] = array("q", window.latency)
        a["W_VALUE"][:] = array(
            "Q", (0 if v is None else v for v in window.value))
        a["W_EFF"][:] = array("Q", window.eff_addr)
        a["W_DCACHE"][:] = array("q", window.dcache_latency)
        a["W_REPLAYED"][:] = array("q", map(int, window.replayed))
        a["W_MISPRED"][:] = array("q", map(int, window.mispredicted))
        a["W_CLASS"][:] = array("q", window.class_id)
        a["W_WAITING"][:] = array("q", window.waiting_ops)
        a["W_DEST"][:] = array("q", window.dest_preg)
        a["W_PREV"][:] = array("q", window.prev_dest)
        a["W_ELIM"][:] = array("q", window.elim_info)
        a["W_FEXTRA"][:] = array("q", window.fusion_extra)
        a["W_NSRC"][:] = array("q", window.nsrc)
        a["W_S0P"][:] = array("q", window.src0_preg)
        a["W_S0D"][:] = array("q", window.src0_disp)
        a["W_S1P"][:] = array("q", window.src1_preg)
        a["W_S1D"][:] = array("q", window.src1_disp)
        rre_p, rre_d = a["RRE_P"], a["RRE_D"]
        for i, rename in enumerate(window.rename):
            if rename is not None and rename.eliminated:
                rre_p[i] = rename.dest_preg
                rre_d[i] = rename.dest_disp
            else:
                rre_p[i] = 0
                rre_d[i] = 0

        # -- physical register file ------------------------------------
        a["PRF_VAL"][:] = array("Q", pipeline.prf.values)
        a["PRF_RDY"][:] = array("q", pipeline.prf.ready_cycle)

        # -- scheduler: ready lists, waiter chains, wakeup ring --------
        sc[SC["IQ_COUNT"]] = iq._count
        sc[SC["IQ_READY_TOTAL"]] = iq._ready_total
        rlen = a["RLEN"]
        ready_flat = a["READY"]
        for cls in range(4):
            entries = iq._ready[cls]
            if len(entries) > self.rstride:
                raise MarshalError("ready list exceeds its stride")
            rlen[cls] = len(entries)
            base = cls * self.rstride
            ready_flat[base:base + len(entries)] = array("q", entries)

        node_seq, node_next = a["NODE_SEQ"], a["NODE_NEXT"]
        next_node = 0

        def build_chain(seqs):
            nonlocal next_node
            head = next_node
            last = -1
            for seq in seqs:
                if next_node >= self.node_cap:
                    raise MarshalError("waiter/wakeup node pool exhausted")
                node_seq[next_node] = seq
                if last >= 0:
                    node_next[last] = next_node
                last = next_node
                next_node += 1
            node_next[last] = -1
            return head, last

        _fill_neg1(a["WT_HEAD"])
        _fill_neg1(a["WT_TAIL"])
        wt_head, wt_tail = a["WT_HEAD"], a["WT_TAIL"]
        for preg, seqs in iq._waiters.items():
            if not seqs:
                continue
            head, tail = build_chain(seqs)
            wt_head[preg] = head
            wt_tail[preg] = tail

        _fill_neg1(a["WK_CYCLE"])
        wk_cycle, wk_head, wk_tail = a["WK_CYCLE"], a["WK_HEAD"], a["WK_TAIL"]
        for ready_cycle, seqs in iq._wakeups.items():
            index = ready_cycle & self.wk_mask
            if wk_cycle[index] != -1:
                raise MarshalError("wakeup-ring collision at marshal-in")
            head, tail = build_chain(seqs)
            wk_cycle[index] = ready_cycle
            wk_head[index] = head
            wk_tail[index] = tail
        # Every heap entry owns a bucket and vice versa, so the sorted
        # bucket keys *are* the heap contents in array form.
        heap_cycles = sorted(iq._wakeups)
        a["HEAP"][:len(heap_cycles)] = array("q", heap_cycles)
        sc[SC["HEAP_LEN"]] = len(heap_cycles)
        # Chain the unused nodes into the free list.
        sc[SC["NODE_FREE"]] = next_node if next_node < self.node_cap else -1
        for i in range(next_node, self.node_cap - 1):
            node_next[i] = i + 1
        if next_node < self.node_cap:
            node_next[self.node_cap - 1] = -1

        # -- store / load queues ---------------------------------------
        entries = pipeline.store_queue.entries
        sc[SC["SQ_HEAD"]] = 0
        sc[SC["SQ_LEN"]] = len(entries)
        for i, entry in enumerate(entries):
            a["SQ_SEQ"][i] = entry.seq
            a["SQ_PC"][i] = entry.pc
            a["SQ_SIZE"][i] = entry.size
            a["SQ_TADDR"][i] = entry.trace_addr
            a["SQ_ADDR"][i] = 0 if entry.addr is None else entry.addr
            a["SQ_AHAS"][i] = 0 if entry.addr is None else 1
            a["SQ_VAL"][i] = 0 if entry.value is None else entry.value
            a["SQ_EXEC"][i] = 1 if entry.executed else 0
            a["SQ_COMP"][i] = entry.complete_cycle
        sc[SC["LQ_LEN"]] = len(pipeline.load_queue.entries)

        # -- renaming --------------------------------------------------
        self._marshal_in_rename(pipeline)

        # -- branch prediction -----------------------------------------
        branch = pipeline.branch_unit
        predictor = branch.direction
        a["BP_BIM"][:] = array("q", predictor.bimodal._counters)
        a["BP_GSH"][:] = array("q", predictor.gshare._counters)
        a["BP_CHOOSER"][:] = array("q", predictor.chooser._counters)
        sc[SC["BP_HIST"]] = predictor.history
        btb_tag, btb_tgt, btb_thas = a["BTB_TAG"], a["BTB_TGT"], a["BTB_THAS"]
        btb_len = a["BTB_LEN"]
        assoc = self.btb_assoc
        for set_index, ways in enumerate(branch.btb._sets):
            btb_len[set_index] = len(ways)
            base = set_index * assoc
            for way, (tag, target) in enumerate(ways):
                btb_tag[base + way] = tag
                btb_tgt[base + way] = 0 if target is None else target
                btb_thas[base + way] = 0 if target is None else 1
        stack = branch.ras._stack
        sc[SC["RAS_LEN"]] = len(stack)
        a["RAS_STACK"][:len(stack)] = array("Q", stack)
        sc[SC["BR_COND"]] = branch.conditional_branches
        sc[SC["BR_MISPRED"]] = branch.mispredictions
        sc[SC["BTB_MISSES"]] = branch.btb_misses
        sc[SC["RAS_MISPRED"]] = branch.ras_mispredictions

        # -- caches + MSHR ---------------------------------------------
        for short, cache, cfg in self._cache_map(pipeline):
            tags, lens = a[f"CT_{short}"], a[f"CL_{short}"]
            cassoc = cfg.associativity
            for set_index, ways in enumerate(cache._sets):
                lens[set_index] = len(ways)
                base = set_index * cassoc
                for way, tag in enumerate(ways):
                    tags[base + way] = tag
            sc[SC[f"{short}_HITS"]] = cache.hits
            sc[SC[f"{short}_MISSES"]] = cache.misses
        times = pipeline.caches._mshr.completion_times
        sc[SC["MSHR_LEN"]] = len(times)
        a["MSHR_T"][:len(times)] = array("q", times)

        # -- store sets / violation log --------------------------------
        store_sets = pipeline.store_sets
        a["SSIT"][:] = array(
            "q", (-1 if s is None else s for s in store_sets._ssit))
        sc[SC["SS_NEXT_ID"]] = store_sets._next_set_id
        sc[SC["SS_TRAINED"]] = store_sets.violations_trained
        sc[SC["VIO_LEN"]] = 0

        # -- statistics ------------------------------------------------
        stats = pipeline.stats
        for name, attr in _ABS_STATS:
            sc[SC[name]] = getattr(stats, attr)
        for name, _attr in _DELTA_STATS:
            sc[SC[name]] = 0
        sc[SC["D_ALLOC_BASE"]] = 0

        # -- memory page pool ------------------------------------------
        self._marshal_in_pages(pipeline)

        # -- occupancy -------------------------------------------------
        if self.record_stats:
            occ = pipeline.stats.occupancy
            a["OC_ROB"][:] = array("q", occ.rob)
            a["OC_IQ"][:] = array("q", occ.iq)
            a["OC_PRF"][:] = array("q", occ.prf)
            a["OC_SQ"][:] = array("q", occ.sq)
            a["OC_LQ"][:] = array("q", occ.lq)
            oc_ready = a["OC_READY"]
            hist_len = len(occ.ready[0])
            for cls in range(4):
                base = cls * self.rstride
                oc_ready[base:base + hist_len] = array("q", occ.ready[cls])
            a["OC_ISSUED"][:] = array("q", occ.issued)
            a["OC_CLASS"][:] = array("q", occ.issued_by_class)
            a["OC_STALL"][:] = array("q", occ.fetch_stall_reasons)

        self._register_pointers()

    def _marshal_in_rename(self, pipeline) -> None:
        """Flatten the renamer (either mode) into the scalar/array blocks."""
        sc, a = self.sc, self.arr
        renamer = pipeline.renamer
        if not self.reno:
            a["BMAP"][:32] = array("q", renamer.map_table)
            free = renamer.free_list
            sc[SC["FREE_HEAD"]] = 0
            sc[SC["FREE_LEN"]] = len(free)
            a["FREE_RING"][:len(free)] = array("q", free)
            sc[SC["GROUP_MASK"]] = 0
            return
        rn_preg, rn_disp = a["RN_PREG"], a["RN_DISP"]
        for i, mapping in enumerate(renamer.map_table._entries):
            rn_preg[i] = mapping.preg
            rn_disp[i] = mapping.disp
        rc = renamer.refcounts
        a["RC_COUNTS"][:] = array("q", rc.counts)
        free = rc._free
        sc[SC["FREE_HEAD"]] = 0
        sc[SC["FREE_LEN"]] = len(free)
        a["FREE_RING"][:len(free)] = array("q", free)
        mask = 0
        for logical in renamer._group_eliminated_logicals:
            mask |= 1 << logical
        sc[SC["GROUP_MASK"]] = mask
        sc[SC["RC_MAXOBS"]] = rc.max_observed_count
        sc[SC["RC_ALLOCS"]] = rc.total_allocations
        sc[SC["RC_SHARES"]] = rc.total_shares
        stats = renamer.stats
        for name, key in zip(_RN_SCALARS, _RN_STAT_KEYS):
            sc[SC[name]] = stats[key]
        if renamer.integration_table is not None:
            self._marshal_in_it(renamer.integration_table)

    def _marshal_in_it(self, table) -> None:
        """Flatten the integration table (sets in MRU order + preg index)."""
        sc, a = self.sc, self.arr
        assoc = self.it_assoc
        it_len = a["IT_LEN"]
        kop_a, imm_a, n_a = a["IT_KOP"], a["IT_IMM"], a["IT_N"]
        p0_a, d0_a = a["IT_P0"], a["IT_D0"]
        p1_a, d1_a = a["IT_P1"], a["IT_D1"]
        outp_a, outd_a, orig_a = a["IT_OUTP"], a["IT_OUTD"], a["IT_ORIG"]
        val_a, vhas_a = a["IT_VAL"], a["IT_VHAS"]
        for set_index, ways in enumerate(table._sets):
            it_len[set_index] = len(ways)
            base = set_index * assoc
            for way, entry in enumerate(ways):
                j = base + way
                opcode, imm, inputs = entry.key
                kop_a[j] = VALUE_TO_ID[opcode]
                imm_a[j] = imm
                n_a[j] = len(inputs)
                p0_a[j] = d0_a[j] = p1_a[j] = d1_a[j] = 0
                if inputs:
                    p0_a[j], d0_a[j] = inputs[0]
                    if len(inputs) > 1:
                        p1_a[j], d1_a[j] = inputs[1]
                outp_a[j] = entry.out_preg
                outd_a[j] = entry.out_disp
                orig_a[j] = _ORIGIN_IDS[entry.origin]
                val_a[j] = 0 if entry.value is None else entry.value
                vhas_a[j] = 0 if entry.value is None else 1
        _fill_zero(a["IT_PBITS"])
        _fill_zero(a["IT_PHAS"])
        pbits, phas = a["IT_PBITS"], a["IT_PHAS"]
        pbw = self.it_pbw
        for preg, indices in table._preg_index.items():
            phas[preg] = 1
            base = preg * pbw
            for set_index in sorted(indices):  # order-free; sorted for lint
                pbits[base + (set_index >> 6)] |= 1 << (set_index & 63)
        sc[SC["ITC_LOOKUPS"]] = table.lookups
        sc[SC["ITC_HITS"]] = table.hits
        sc[SC["ITC_INS"]] = table.insertions
        sc[SC["ITC_INVAL"]] = table.invalidations

    def _marshal_in_pages(self, pipeline) -> None:
        """Stage the memory page pool and its open-addressing lookup table.

        The pool covers every already-materialised page plus every page any
        trace store can touch, so the kernel never needs to allocate.
        """
        sc = self.sc
        pages = pipeline.memory._pages
        pool = sorted(set(pages) | self._store_pages)
        self._ensure_pages(len(pool))
        a = self.arr
        page_num, ph_key, ph_val = a["PAGE_NUM"], a["PH_KEY"], a["PH_VAL"]
        _fill_neg1(ph_key)
        _fill_zero(a["PAGE_DIRTY"])
        mask = len(ph_key) - 1
        buf = self._pages_buf
        zero_page = bytes(4096)
        for i, page in enumerate(pool):
            offset = i * 4096
            data = pages.get(page)
            buf[offset:offset + 4096] = zero_page if data is None else data
            page_num[i] = page
            h = _pool_hash(page, mask)
            while ph_key[h] != -1:
                h = (h + 1) & mask
            ph_key[h] = page
            ph_val[h] = i
        sc[SC["NPOOL"]] = len(pool)
        sc[SC["PH_MASK"]] = mask

    # ------------------------------------------------------------------
    # Marshal out (only after the kernel returns ERR_OK)
    # ------------------------------------------------------------------

    def marshal_out(self, pipeline) -> None:
        """Copy the flat buffers back into the live simulation state.

        Mirrors everything the python loop's exit path writes, including
        the loop-exit mirror (ROB head/tail, issue-queue counters) and the
        ``_flush_loop_stats`` / component-counter routing.
        """
        sc = self.sc
        a = self.arr
        window = pipeline.window
        iq = pipeline.issue_queue

        # -- cursors + loop-exit mirror --------------------------------
        cycle = sc[SC["CYCLE"]]
        committed = sc[SC["COMMITTED"]]
        fetch_index = sc[SC["FETCH_INDEX"]]
        pipeline._cycle = cycle
        pipeline._committed = committed
        pipeline._fetch_index = fetch_index
        pipeline._fetch_resume_cycle = sc[SC["FETCH_RESUME"]]
        pipeline._waiting_branch = sc[SC["WAITING_BRANCH"]]
        pipeline._last_fetch_block = sc[SC["LAST_FETCH_BLOCK"]]
        pipeline._fetch_stall_reason = sc[SC["STALL_REASON"]]
        pipeline.rob.head_seq = committed
        pipeline.rob.tail_seq = fetch_index
        iq._count = sc[SC["IQ_COUNT"]]
        iq._ready_total = sc[SC["IQ_READY_TOTAL"]]

        # -- statistics ------------------------------------------------
        stats = pipeline.stats
        for name, attr in _DELTA_STATS:
            setattr(stats, attr, getattr(stats, attr) + sc[SC[name]])
        for name, attr in _ABS_STATS:
            setattr(stats, attr, sc[SC[name]])
        stats.cycles = cycle
        stats.committed = committed

        branch = pipeline.branch_unit
        branch.conditional_branches = sc[SC["BR_COND"]]
        branch.mispredictions = sc[SC["BR_MISPRED"]]
        branch.btb_misses = sc[SC["BTB_MISSES"]]
        branch.ras_mispredictions = sc[SC["RAS_MISPRED"]]
        for short, cache, _cfg in self._cache_map(pipeline):
            cache.hits = sc[SC[f"{short}_HITS"]]
            cache.misses = sc[SC[f"{short}_MISSES"]]
        store_sets = pipeline.store_sets
        store_sets.violations_trained = sc[SC["SS_TRAINED"]]
        store_sets._next_set_id = sc[SC["SS_NEXT_ID"]]

        # -- window (structure of arrays) ------------------------------
        window.dispatch_cycle[:] = a["W_DISPATCH"].tolist()
        window.complete_cycle[:] = a["W_COMPLETE"].tolist()
        window.latency[:] = a["W_LATENCY"].tolist()
        window.value[:] = a["W_VALUE"].tolist()
        window.eff_addr[:] = a["W_EFF"].tolist()
        window.dcache_latency[:] = a["W_DCACHE"].tolist()
        window.replayed[:] = [bool(v) for v in a["W_REPLAYED"]]
        window.mispredicted[:] = [bool(v) for v in a["W_MISPRED"]]
        window.class_id[:] = a["W_CLASS"].tolist()
        window.waiting_ops[:] = a["W_WAITING"].tolist()
        window.dest_preg[:] = a["W_DEST"].tolist()
        window.prev_dest[:] = a["W_PREV"].tolist()
        window.elim_info[:] = a["W_ELIM"].tolist()
        window.fusion_extra[:] = a["W_FEXTRA"].tolist()
        window.nsrc[:] = a["W_NSRC"].tolist()
        window.src0_preg[:] = a["W_S0P"].tolist()
        window.src0_disp[:] = a["W_S0D"].tolist()
        window.src1_preg[:] = a["W_S1P"].tolist()
        window.src1_disp[:] = a["W_S1D"].tolist()

        # Slots (re)dispatched during the slice get their object-graph
        # companions rebuilt: the decoded tuple and, under RENO, a
        # RenameResult carrying the commit-relevant fields.
        trace_ops = pipeline._trace_ops
        mask = self.wmask
        w_elim = window.elim_info
        rre_p, rre_d = a["RRE_P"], a["RRE_D"]
        w_dest, w_prev = window.dest_preg, window.prev_dest
        w_fextra = window.fusion_extra
        first = max(self._in_fetch_index, fetch_index - self.wsize)
        for seq in range(first, fetch_index):
            slot = seq & mask
            window.decoded[slot] = trace_ops[seq]
            if not self.reno:
                window.rename[slot] = None
                continue
            elim = w_elim[slot]
            kind = elim & 15
            if kind:
                result = RenameResult(
                    dest_preg=rre_p[slot], dest_disp=rre_d[slot],
                    eliminated=True, elim_kind=_ELIM_KINDS[kind],
                    needs_reexecution=bool(elim & 16),
                )
            else:
                dest = w_dest[slot]
                result = RenameResult(
                    dest_preg=dest if dest >= 0 else None,
                    allocated=dest >= 0,
                    fusion_extra_latency=w_fextra[slot],
                )
            prev = w_prev[slot]
            result.prev_dest_preg = prev if prev >= 0 else None
            window.rename[slot] = result

        # -- physical register file ------------------------------------
        pipeline.prf.values[:] = a["PRF_VAL"].tolist()
        pipeline.prf.ready_cycle[:] = a["PRF_RDY"].tolist()

        # -- scheduler -------------------------------------------------
        rlen, ready_flat = a["RLEN"], a["READY"]
        for cls in range(4):
            base = cls * self.rstride
            iq._ready[cls][:] = ready_flat[base:base + rlen[cls]].tolist()
        node_seq, node_next = a["NODE_SEQ"], a["NODE_NEXT"]

        def read_chain(node):
            seqs = []
            while node >= 0:
                seqs.append(node_seq[node])
                node = node_next[node]
            return seqs

        waiters = iq._waiters  # pipeline._iq_waiters aliases this dict
        waiters.clear()
        wt_head = a["WT_HEAD"]
        for preg in range(self.num_pregs):
            node = wt_head[preg]
            if node >= 0:
                waiters[preg] = read_chain(node)
        wakeups = iq._wakeups
        wakeups.clear()
        heap = a["HEAP"][:sc[SC["HEAP_LEN"]]].tolist()
        wk_head = a["WK_HEAD"]
        for ready_cycle in heap:
            wakeups[ready_cycle] = read_chain(wk_head[ready_cycle & self.wk_mask])
        # The kernel keeps its heap as a sorted array; a sorted list is a
        # valid binary heap, so it can be adopted directly.
        iq._wakeup_heap[:] = heap

        # -- store / load queues ---------------------------------------
        sq = pipeline.store_queue
        head, length = sc[SC["SQ_HEAD"]], sc[SC["SQ_LEN"]]
        entries = []
        for k in range(length):
            i = (head + k) % self.sq_cap
            entry = StoreQueueEntry(
                seq=a["SQ_SEQ"][i], pc=a["SQ_PC"][i], size=a["SQ_SIZE"][i],
                trace_addr=a["SQ_TADDR"][i],
                addr=a["SQ_ADDR"][i] if a["SQ_AHAS"][i] else None,
                value=a["SQ_VAL"][i] if a["SQ_AHAS"][i] else None,
                executed=bool(a["SQ_EXEC"][i]),
                complete_cycle=a["SQ_COMP"][i],
            )
            entries.append(entry)
        sq.entries[:] = entries
        sq._by_seq.clear()
        sq._by_seq.update((entry.seq, entry) for entry in entries)
        lq = pipeline.load_queue
        lq.entries.clear()
        lq.entries.update(
            seq for seq in range(committed, fetch_index)
            if trace_ops[seq][0] & DF_LOAD and not w_elim[seq & mask])

        # -- renaming --------------------------------------------------
        renamer = pipeline.renamer
        head, length = sc[SC["FREE_HEAD"]], sc[SC["FREE_LEN"]]
        ring = a["FREE_RING"]
        cap = len(ring)
        free_pregs = [ring[(head + k) % cap] for k in range(length)]
        if not self.reno:
            renamer.allocations += sc[SC["D_ALLOC_BASE"]]
            renamer.map_table[:] = a["BMAP"][:32].tolist()
            renamer.free_list.clear()
            renamer.free_list.extend(free_pregs)
        else:
            rn_stats = renamer.stats
            for name, key in zip(_RN_SCALARS, _RN_STAT_KEYS):
                rn_stats[key] = sc[SC[name]]
            rc = renamer.refcounts
            rc.counts[:] = a["RC_COUNTS"].tolist()
            rc.max_observed_count = sc[SC["RC_MAXOBS"]]
            rc.total_allocations = sc[SC["RC_ALLOCS"]]
            rc.total_shares = sc[SC["RC_SHARES"]]
            rc._free.clear()  # renamer._free_list aliases this deque
            rc._free.extend(free_pregs)
            map_entries = renamer.map_table._entries
            zero_maps = renamer._zero_maps
            rn_preg, rn_disp = a["RN_PREG"], a["RN_DISP"]
            for i in range(len(map_entries)):
                preg, disp = rn_preg[i], rn_disp[i]
                map_entries[i] = (zero_maps[preg] if disp == 0
                                  else Mapping(preg, disp))
            group = renamer._group_eliminated_logicals
            group.clear()
            group_mask = sc[SC["GROUP_MASK"]]
            logical = 0
            while group_mask:
                if group_mask & 1:
                    group.add(logical)
                group_mask >>= 1
                logical += 1
            if renamer.integration_table is not None:
                self._marshal_out_it(renamer.integration_table)

        # -- branch prediction -----------------------------------------
        predictor = branch.direction
        predictor.bimodal._counters[:] = a["BP_BIM"].tolist()
        predictor.gshare._counters[:] = a["BP_GSH"].tolist()
        predictor.chooser._counters[:] = a["BP_CHOOSER"].tolist()
        predictor.history = sc[SC["BP_HIST"]]
        btb_tag, btb_tgt, btb_thas = a["BTB_TAG"], a["BTB_TGT"], a["BTB_THAS"]
        btb_len = a["BTB_LEN"]
        assoc = self.btb_assoc
        for set_index, ways in enumerate(branch.btb._sets):
            base = set_index * assoc
            ways[:] = [
                (btb_tag[base + way],
                 btb_tgt[base + way] if btb_thas[base + way] else None)
                for way in range(btb_len[set_index])
            ]
        branch.ras._stack[:] = a["RAS_STACK"][:sc[SC["RAS_LEN"]]].tolist()

        # -- caches + MSHR ---------------------------------------------
        for short, cache, cfg in self._cache_map(pipeline):
            tags, lens = a[f"CT_{short}"], a[f"CL_{short}"]
            cassoc = cfg.associativity
            for set_index, ways in enumerate(cache._sets):
                base = set_index * cassoc
                ways[:] = tags[base:base + lens[set_index]].tolist()
        mshr = pipeline.caches._mshr
        mshr.completion_times[:] = a["MSHR_T"][:sc[SC["MSHR_LEN"]]].tolist()

        # -- store sets / violation log --------------------------------
        store_sets._ssit[:] = [
            None if entry < 0 else entry for entry in a["SSIT"]]
        vio_log = a["VIO_LOG"]
        pipeline._violated_loads.update(
            vio_log[i] for i in range(sc[SC["VIO_LEN"]]))

        # -- memory page write-back ------------------------------------
        pages = pipeline.memory._pages
        page_num, page_dirty = a["PAGE_NUM"], a["PAGE_DIRTY"]
        buf = self._pages_buf
        for i in range(sc[SC["NPOOL"]]):
            if not page_dirty[i]:
                continue
            page = page_num[i]
            data = buf[i * 4096:(i + 1) * 4096]
            existing = pages.get(page)
            if existing is None:
                pages[page] = bytearray(data)
            else:
                existing[:] = data

        # -- occupancy -------------------------------------------------
        if self.record_stats:
            occ = stats.occupancy
            occ.cycles = cycle
            occ.rob[:] = a["OC_ROB"].tolist()
            occ.iq[:] = a["OC_IQ"].tolist()
            occ.prf[:] = a["OC_PRF"].tolist()
            occ.sq[:] = a["OC_SQ"].tolist()
            occ.lq[:] = a["OC_LQ"].tolist()
            oc_ready = a["OC_READY"]
            hist_len = len(occ.ready[0])
            for cls in range(4):
                base = cls * self.rstride
                occ.ready[cls][:] = oc_ready[base:base + hist_len].tolist()
            occ.issued[:] = a["OC_ISSUED"].tolist()
            occ.issued_by_class[:] = a["OC_CLASS"].tolist()
            occ.fetch_stall_reasons[:] = a["OC_STALL"].tolist()

    def _marshal_out_it(self, table) -> None:
        """Rebuild the integration table object graph from the flat arrays."""
        sc, a = self.sc, self.arr
        assoc = self.it_assoc
        it_len = a["IT_LEN"]
        kop_a, imm_a, n_a = a["IT_KOP"], a["IT_IMM"], a["IT_N"]
        p0_a, d0_a = a["IT_P0"], a["IT_D0"]
        p1_a, d1_a = a["IT_P1"], a["IT_D1"]
        outp_a, outd_a, orig_a = a["IT_OUTP"], a["IT_OUTD"], a["IT_ORIG"]
        val_a, vhas_a = a["IT_VAL"], a["IT_VHAS"]
        for set_index, ways in enumerate(table._sets):
            base = set_index * assoc
            rebuilt = []
            for way in range(it_len[set_index]):
                j = base + way
                n = n_a[j]
                if n == 0:
                    inputs = ()
                elif n == 1:
                    inputs = ((p0_a[j], d0_a[j]),)
                else:
                    inputs = ((p0_a[j], d0_a[j]), (p1_a[j], d1_a[j]))
                rebuilt.append(IntegrationEntry(
                    key=(emit.OPCODES[kop_a[j]].value, imm_a[j], inputs),
                    out_preg=outp_a[j], out_disp=outd_a[j],
                    origin=_ORIGINS[orig_a[j]],
                    value=val_a[j] if vhas_a[j] else None,
                ))
            ways[:] = rebuilt
        index = table._preg_index
        index.clear()
        phas, pbits = a["IT_PHAS"], a["IT_PBITS"]
        pbw = self.it_pbw
        for preg in range(self.num_pregs):
            if not phas[preg]:
                continue
            indices = set()
            base = preg * pbw
            for word in range(pbw):
                bits = pbits[base + word]
                while bits:
                    low = bits & -bits
                    indices.add((word << 6) + low.bit_length() - 1)
                    bits ^= low
            index[preg] = indices
        table.lookups = sc[SC["ITC_LOOKUPS"]]
        table.hits = sc[SC["ITC_HITS"]]
        table.insertions = sc[SC["ITC_INS"]]
        table.invalidations = sc[SC["ITC_INVAL"]]

    @staticmethod
    def _cache_map(pipeline):
        """(short name, live cache, config) triples, fetched per call.

        Component objects are looked up through the pipeline on every
        marshal because a snapshot restore replaces them wholesale; only
        the geometry (fixed by the config digest) is safe to cache.
        """
        caches = pipeline.caches
        config = pipeline.config
        return (("L1I", caches.l1i, config.l1i),
                ("L1D", caches.l1d, config.l1d),
                ("L2", caches.l2, config.l2))
