"""The compiled cycle-loop backend (generated C over the SoA state).

Package layout:

* :mod:`repro.uarch.compiled.emit` — the C-source template and the shared
  field tables (the ``backend_parity`` lint rule checks them against
  :class:`~repro.uarch.inflight.InFlightWindow`).
* :mod:`repro.uarch.compiled.build` — toolchain discovery and the
  digest-cached build of the shared object.
* :mod:`repro.uarch.compiled.marshal` — flat-buffer marshalling between
  the pipeline's Python objects and the kernel's int64 arrays.
* :mod:`repro.uarch.compiled.backend` — the
  :class:`~repro.uarch.backend.CycleLoopBackend` implementation that ties
  the above together and registers itself as ``compiled``.
"""
