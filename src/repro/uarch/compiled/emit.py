"""C source emission for the compiled cycle-loop backend.

This module is the single source of truth for the compiled kernel's ABI:

* :data:`SCALARS` / :data:`POINTERS` name every slot of the two flat
  parameter blocks the kernel receives (``int64_t *sc`` and
  ``int64_t **pt``).  The generated ``#define`` prelude gives the C side
  the same indices, so Python and C can never disagree about layout.
* :data:`WINDOW_FIELDS` mirrors the
  :class:`repro.uarch.inflight.InFlightWindow` structure-of-arrays field
  order; the ``backend-parity`` lint checker cross-checks it against the
  class's ``__init__`` so a new window field cannot silently bypass the
  compiled backend (fields in :data:`WINDOW_EXEMPT` are intentionally not
  marshalled — see each entry's justification below).
* :func:`kernel_source` returns the complete C translation unit: a
  generated prelude of index/constant defines followed by the
  hand-written kernel, a cycle-exact port of
  :meth:`repro.uarch.core.Pipeline._run_cycles`.

The kernel never mutates Python state and never allocates: every buffer
is provided by :mod:`repro.uarch.compiled.marshal`.  On any error it
returns a nonzero code *without* side effects visible to Python, so the
backend can replay the slice through the reference loop to reproduce the
exact Python behaviour (including exception messages).
"""

from __future__ import annotations

import zlib

from repro.isa.opcodes import Opcode, OpClass, spec_for

#: Stable opcode numbering used by the kernel (position in declaration order).
OPCODES: tuple[Opcode, ...] = tuple(Opcode)

#: Opcode -> kernel id.
OP_ID: dict[Opcode, int] = {op: i for i, op in enumerate(OPCODES)}

#: Opcode value string -> kernel id (integration-table keys store strings).
VALUE_TO_ID: dict[str, int] = {op.value: i for op, i in OP_ID.items()}

#: The InFlightWindow structure-of-arrays fields, in ``__init__`` order.
#: The backend-parity linter checks this against the class source.
WINDOW_FIELDS: tuple[str, ...] = (
    "capacity", "size", "mask", "dispatch_cycle", "issue_cycle",
    "complete_cycle", "retire_cycle", "latency", "value", "eff_addr",
    "dcache_latency", "replayed", "mispredicted", "class_id", "waiting_ops",
    "rename", "decoded", "dest_preg", "prev_dest", "elim_info",
    "fusion_extra", "nsrc", "src0_preg", "src0_disp", "src1_preg",
    "src1_disp",
)

#: Window fields the compiled backend intentionally does not marshal:
#: * ``capacity``/``size``/``mask`` are scalars fixed at construction;
#: * ``issue_cycle``/``retire_cycle`` are written only under
#:   ``collect_timing``, which the compiled backend does not support
#:   (such pipelines run on the python reference);
#: * ``rename`` holds RenameResult objects, rebuilt field-by-field from
#:   the flattened arrays at marshal-out;
#: * ``decoded`` holds decoded-op tuples, re-pointed from the pipeline's
#:   static ``_trace_ops`` at marshal-out.
WINDOW_EXEMPT: frozenset[str] = frozenset({
    "capacity", "size", "mask", "issue_cycle", "retire_cycle",
    "rename", "decoded",
})

#: Kernel error codes (return value of ``repro_run``).  Any nonzero code
#: makes the backend discard the C state and replay the slice in Python.
ERR_OK = 0
ERR_MAX_CYCLES = 1
ERR_LOAD_ADDR = 2
ERR_STORE_ADDR = 3
ERR_BRANCH_DIR = 4
ERR_VALUE_CHECK = 5
ERR_INTERNAL = 6

#: Scalar block layout (``int64_t *sc``).  Three groups: static geometry
#: and configuration, loop cursors (read and written), and statistics
#: (D_* are deltas seeded with zero, the rest absolute values seeded from
#: the live objects and written back on success).
SCALARS: tuple[str, ...] = (
    # -- geometry / static configuration ------------------------------
    "TOTAL", "WSIZE", "WMASK", "NUM_PREGS", "COMMIT_WIDTH", "RENAME_WIDTH",
    "RETIRE_PORTS", "TAKEN_LIMIT", "SCHED_LAT", "FE_DEPTH", "VIO_PENALTY",
    "MAX_CYCLES", "STOP", "MODE", "RECORD_STATS", "FB_SHIFT",
    "TOTAL_ISSUE", "W_INT", "W_LOAD", "W_STORE", "W_FP",
    "IQ_CAP", "SQ_CAP", "LQ_CAP", "RSTRIDE",
    "L1I_SETS", "L1I_ASSOC", "L1I_LAT", "L1I_BSHIFT",
    "L1D_SETS", "L1D_ASSOC", "L1D_LAT", "L1D_BSHIFT",
    "L2_SETS", "L2_ASSOC", "L2_LAT", "L2_BSHIFT",
    "MEM_LAT", "MSHR_CAP",
    "BP_MASK", "BTB_SETS", "BTB_ASSOC", "RAS_CAP", "SS_MASK",
    "IT_SETS", "IT_ASSOC", "IT_PBW", "IT_ON",
    "ELIG_MASK", "FOLD_MOVES", "FOLD_ADDS", "ALLOW_DEP", "DISP_BITS",
    "POLICY_FULL", "FUSE_ALL", "FUSE_NONADD", "FUSE_DDISP",
    "NODE_CAP", "WK_MASK", "HEAP_CAP", "VIO_CAP", "NPOOL", "PH_MASK",
    # -- loop cursors (mirrored back on success) ----------------------
    "CYCLE", "COMMITTED", "FETCH_INDEX", "FETCH_RESUME", "WAITING_BRANCH",
    "LAST_FETCH_BLOCK", "STALL_REASON", "IQ_COUNT", "IQ_READY_TOTAL",
    "SQ_HEAD", "SQ_LEN", "LQ_LEN", "FREE_HEAD", "FREE_LEN", "HEAP_LEN",
    "NODE_FREE", "RAS_LEN", "MSHR_LEN", "BP_HIST", "SS_NEXT_ID",
    "VIO_LEN", "GROUP_MASK",
    # -- delta statistics (seeded 0, applied with "+=" on success) ----
    "D_ISSUED", "D_FETCHED", "D_FETCH_STALLS", "D_PREGS_ALLOC", "D_FUSED",
    "D_FUSE_PEN", "D_STORE_FWD", "D_ELIM_MOVES", "D_ELIM_FOLDS",
    "D_ELIM_CSE", "D_ELIM_RA", "D_ALLOC_BASE",
    # -- absolute statistics (seeded live, written back on success) ---
    "ROB_STALL", "IQ_STALL", "LSQ_STALL", "RENAME_STALL",
    "MEM_ORDER_VIO", "LOAD_REPLAYS", "REEXEC_LOADS", "INT_VAL_MISMATCH",
    "MAX_PREGS",
    "BR_COND", "BR_MISPRED", "BTB_MISSES", "RAS_MISPRED",
    "L1I_HITS", "L1I_MISSES", "L1D_HITS", "L1D_MISSES",
    "L2_HITS", "L2_MISSES",
    "RN_MOVES", "RN_FOLDS", "RN_CSE", "RN_RA", "RN_OVERFLOW",
    "RN_DEP_BLOCKS", "RN_IT_LOOKUPS", "RN_IT_HITS", "RN_IT_INS",
    "RN_IT_VALMIS",
    "ITC_LOOKUPS", "ITC_HITS", "ITC_INS", "ITC_INVAL",
    "RC_MAXOBS", "RC_ALLOCS", "RC_SHARES", "SS_TRAINED",
)

SC: dict[str, int] = {name: i for i, name in enumerate(SCALARS)}

#: Pointer block layout (``int64_t **pt``).  All arrays are int64 (values
#: that are semantically unsigned 64-bit are stored two's-complement).
POINTERS: tuple[str, ...] = (
    # -- in-flight window (structure-of-arrays) -----------------------
    "W_DISPATCH", "W_COMPLETE", "W_LATENCY", "W_VALUE", "W_EFF",
    "W_DCACHE", "W_REPLAYED", "W_MISPRED", "W_CLASS", "W_WAITING",
    "W_DEST", "W_PREV", "W_ELIM", "W_FEXTRA", "W_NSRC",
    "W_S0P", "W_S0D", "W_S1P", "W_S1D",
    # Eliminated-slot shared destination mapping (RenameResult.dest_preg
    # / dest_disp, flattened so commit/re-execute stay object-free).
    "RRE_P", "RRE_D",
    # -- physical register file --------------------------------------
    "PRF_VAL", "PRF_RDY",
    # -- scheduler: ready lists, wakeup ring, waiter chains -----------
    "READY", "RLEN", "WK_CYCLE", "WK_HEAD", "WK_TAIL",
    "WT_HEAD", "WT_TAIL", "NODE_SEQ", "NODE_NEXT", "HEAP",
    "SELBUF", "KEPTBUF",
    # -- store queue (ring of field arrays) ---------------------------
    "SQ_SEQ", "SQ_PC", "SQ_SIZE", "SQ_TADDR", "SQ_ADDR", "SQ_AHAS",
    "SQ_VAL", "SQ_EXEC", "SQ_COMP",
    # -- renaming -----------------------------------------------------
    "FREE_RING", "BMAP", "RN_PREG", "RN_DISP", "RC_COUNTS",
    # -- integration table --------------------------------------------
    "IT_KOP", "IT_IMM", "IT_N", "IT_P0", "IT_D0", "IT_P1", "IT_D1",
    "IT_OUTP", "IT_OUTD", "IT_ORIG", "IT_VAL", "IT_VHAS", "IT_LEN",
    "IT_PBITS", "IT_PHAS",
    # -- branch prediction --------------------------------------------
    "BP_BIM", "BP_GSH", "BP_CHOOSER",
    "BTB_TAG", "BTB_TGT", "BTB_THAS", "BTB_LEN", "RAS_STACK",
    # -- caches + MSHR ------------------------------------------------
    "CT_L1I", "CL_L1I", "CT_L1D", "CL_L1D", "CT_L2", "CL_L2", "MSHR_T",
    # -- store sets / violation log -----------------------------------
    "SSIT", "VIO_LOG",
    # -- memory page pool ---------------------------------------------
    "PAGE_NUM", "PAGE_DIRTY", "PH_KEY", "PH_VAL",
    # -- trace arrays (static per pipeline) ---------------------------
    "T_PC", "T_SIDX", "T_RES", "T_RHAS", "T_EFF", "T_SV", "T_SVHAS",
    "T_RS1", "T_RS1HAS", "T_TAKEN", "T_TGT", "T_THAS",
    # -- decoded-op arrays (static per program) -----------------------
    "S_FLAGS", "S_CLASS", "S_LAT", "S_MEMB", "S_DEST", "S_IMM", "S_OPC",
    "S_FOLD", "S_MMASK", "S_NSRC", "S_SRC0", "S_SRC1",
    # -- per-opcode static tables -------------------------------------
    "O_CRC", "O_FUSECAT", "O_S2L", "O_BRANCH", "O_CTL",
    # -- occupancy histograms (1-element dummies when record_stats off)
    "OC_ROB", "OC_IQ", "OC_PRF", "OC_SQ", "OC_LQ", "OC_READY",
    "OC_ISSUED", "OC_CLASS", "OC_STALL",
)

PT: dict[str, int] = {name: i for i, name in enumerate(POINTERS)}

#: Conditional-branch kernel kinds, in :data:`O_BRANCH` encoding order.
_BRANCH_KINDS = (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                 Opcode.BLE, Opcode.BGT)

#: Non-conditional control kinds for :data:`O_CTL`.
_CTL_KINDS = {OpClass.JUMP: 1, OpClass.CALL: 2, OpClass.RET: 3}


def opcode_tables() -> dict[str, list[int]]:
    """Per-opcode static tables, indexed by kernel opcode id.

    Returns:
        ``crc``: zlib.crc32 of the opcode value string (the integration
        table's key hash seed); ``fusecat``: fusion category
        (0 free / 1 non-additive / 2 additive); ``s2l``: matching load
        opcode id for store opcodes (-1 otherwise); ``branch``:
        conditional-branch kind (0..5, -1 otherwise); ``ctl``:
        non-conditional control kind (1 jump / 2 call / 3 ret, else 0).
    """
    from repro.core.fusion import _CATEGORIES
    from repro.core.renamer import _STORE_TO_LOAD

    crc, fusecat, s2l, branch, ctl = [], [], [], [], []
    branch_kind = {op: i for i, op in enumerate(_BRANCH_KINDS)}
    for op in OPCODES:
        crc.append(zlib.crc32(op.value.encode("ascii")))
        fusecat.append(_CATEGORIES.get(op, 0))
        load_op = _STORE_TO_LOAD.get(op)
        s2l.append(-1 if load_op is None else OP_ID[load_op])
        branch.append(branch_kind.get(op, -1))
        ctl.append(_CTL_KINDS.get(spec_for(op).op_class, 0))
    return {"crc": crc, "fusecat": fusecat, "s2l": s2l, "branch": branch,
            "ctl": ctl}


def _prelude() -> str:
    """The generated ``#define`` prelude binding indices and constants."""
    from repro.isa.instruction import (
        CLASS_FP, CLASS_INT, CLASS_LOAD, CLASS_STORE, DF_CALL,
        DF_COND_BRANCH, DF_CONTROL, DF_IT_ALU, DF_LOAD, DF_MEM_SIGNED,
        DF_MOVE, DF_NO_EXECUTE, DF_REG_IMM_ADD, DF_STORE,
    )

    lines = ["/* Generated prelude -- do not edit; see repro.uarch."
             "compiled.emit */"]
    for name, index in SC.items():
        lines.append(f"#define SC_{name} {index}")
    for name, index in PT.items():
        lines.append(f"#define PT_{name} {index}")
    for op, opid in OP_ID.items():
        lines.append(f"#define OPID_{op.name} {opid}")
    consts = {
        "DF_LOAD": DF_LOAD, "DF_STORE": DF_STORE,
        "DF_COND_BRANCH": DF_COND_BRANCH, "DF_CONTROL": DF_CONTROL,
        "DF_CALL": DF_CALL, "DF_NO_EXECUTE": DF_NO_EXECUTE,
        "DF_MEM_SIGNED": DF_MEM_SIGNED, "DF_MOVE": DF_MOVE,
        "DF_REG_IMM_ADD": DF_REG_IMM_ADD, "DF_IT_ALU": DF_IT_ALU,
        "CLASS_INT": CLASS_INT, "CLASS_LOAD": CLASS_LOAD,
        "CLASS_STORE": CLASS_STORE, "CLASS_FP": CLASS_FP,
        "ERR_OK": ERR_OK,
        "ERR_MAX_CYCLES": ERR_MAX_CYCLES, "ERR_LOAD_ADDR": ERR_LOAD_ADDR,
        "ERR_STORE_ADDR": ERR_STORE_ADDR, "ERR_BRANCH_DIR": ERR_BRANCH_DIR,
        "ERR_VALUE_CHECK": ERR_VALUE_CHECK, "ERR_INTERNAL": ERR_INTERNAL,
    }
    for name, value in consts.items():
        lines.append(f"#define {name} {value}")
    return "\n".join(lines) + "\n"


def kernel_source() -> str:
    """The complete C translation unit for the compiled cycle loop."""
    return _prelude() + _KERNEL


_KERNEL = r"""
#include <stdint.h>
#include <string.h>

typedef int64_t i64;
typedef uint64_t u64;
typedef __int128 i128;
typedef unsigned __int128 u128;

#define NOT_READY   ((i64)1 << 60)
#define NO_COMPLETE ((i64)1 << 60)
#define STALLED_SENTINEL ((i64)1 << 60)
#define NO_BRANCH   (-1)
#define STALL_BRANCH 0
#define STALL_ICACHE 1
#define STALL_FRONTEND 2
#define ELIM_REEXEC 16

typedef struct {
    i64 *sc;
    i64 **pt;
    uint8_t *pages;
} Ctx;

#define SC(f) (c->sc[SC_##f])
#define P(f)  (c->pt[PT_##f])

static inline u64 sextb(u64 v, int bits) {
    int sh = 64 - bits;
    return (u64)(((i64)(v << sh)) >> sh);
}

static inline int bitlen64(u64 x) {
    return x ? 64 - __builtin_clzll(x) : 0;
}

/* ---------------- memory page pool ---------------- */

static inline i64 pool_find(Ctx *c, i64 page) {
    i64 mask = SC(PH_MASK);
    i64 *keys = P(PH_KEY);
    i64 *vals = P(PH_VAL);
    i64 h = (i64)((((u64)page * 0x9E3779B97F4A7C15ULL) >> 40) & (u64)mask);
    for (;;) {
        i64 k = keys[h];
        if (k == page) return vals[h];
        if (k == -1) return -1;
        h = (h + 1) & mask;
    }
}

static inline u64 mem_read(Ctx *c, u64 addr, i64 size) {
    i64 off = (i64)(addr & 4095);
    if (off + size <= 4096) {
        i64 idx = pool_find(c, (i64)(addr >> 12));
        if (idx < 0) return 0;
        const uint8_t *p = c->pages + idx * 4096 + off;
        u64 v = 0;
        for (i64 i = size - 1; i >= 0; i--) v = (v << 8) | p[i];
        return v;
    }
    u64 v = 0;
    for (i64 i = 0; i < size; i++) {
        u64 a = addr + (u64)i;
        i64 idx = pool_find(c, (i64)(a >> 12));
        u64 byte = idx < 0 ? 0 : c->pages[idx * 4096 + (i64)(a & 4095)];
        v |= byte << (8 * i);
    }
    return v;
}

static inline int mem_write(Ctx *c, u64 addr, i64 size, u64 value) {
    i64 off = (i64)(addr & 4095);
    if (off + size <= 4096) {
        i64 idx = pool_find(c, (i64)(addr >> 12));
        if (idx < 0) return 1;
        uint8_t *p = c->pages + idx * 4096 + off;
        for (i64 i = 0; i < size; i++) p[i] = (uint8_t)(value >> (8 * i));
        P(PAGE_DIRTY)[idx] = 1;
        return 0;
    }
    for (i64 i = 0; i < size; i++) {
        u64 a = addr + (u64)i;
        i64 idx = pool_find(c, (i64)(a >> 12));
        if (idx < 0) return 1;
        c->pages[idx * 4096 + (i64)(a & 4095)] = (uint8_t)(value >> (8 * i));
        P(PAGE_DIRTY)[idx] = 1;
    }
    return 0;
}

/* ---------------- 64-bit signed division, Python float semantics -----
 * Python computes int(to_signed(a) / sb): the exact rational quotient,
 * correctly rounded to the nearest IEEE double (ties to even), then
 * truncated toward zero.  Reproduced in integer arithmetic: build the
 * 53-bit round-to-nearest-even mantissa with a sticky bit, then shift.
 */
static u64 alu_div(u64 a, u64 b) {
    i64 sb = (i64)b;
    if (sb == 0) return 0;
    i64 sa = (i64)a;
    int neg = (sa < 0) != (sb < 0);
    u64 ua = sa < 0 ? (u64)0 - (u64)sa : (u64)sa;
    u64 ub = sb < 0 ? (u64)0 - (u64)sb : (u64)sb;
    if (!ua) return 0;
    int n = bitlen64(ua), m = bitlen64(ub);
    u64 q;
    int sticky;
    i64 e;
    int s = m - n + 54;
    if (s >= 0) {
        u128 t = (u128)ua << s;
        q = (u64)(t / ub);
        sticky = (t % ub) != 0;
        e = -(i64)s;
    } else {
        q = ua / ub;
        sticky = (ua % ub) != 0;
        e = 0;
    }
    int drop = bitlen64(q) - 53;          /* >= 1 by construction */
    u64 rem = q & (((u64)1 << drop) - 1);
    u64 half = (u64)1 << (drop - 1);
    u64 r = q >> drop;
    e += drop;
    if (rem > half || (rem == half && (sticky || (r & 1)))) r += 1;
    if (r >> 53) { r >>= 1; e += 1; }
    u64 mag;
    if (e >= 0) mag = (u64)((u128)r << e);
    else {
        i64 sh = -e;
        mag = sh >= 64 ? 0 : (r >> sh);
    }
    return neg ? (u64)0 - mag : mag;
}

static inline u64 alu_eval_c(i64 opid, u64 a, u64 b, i64 imm) {
    switch (opid) {
    case OPID_ADDI:   return a + (u64)imm;
    case OPID_ADD:    return a + b;
    case OPID_MOV:    return a;
    case OPID_SUBI:   return a - (u64)imm;
    case OPID_SUB:    return a - b;
    case OPID_AND:    return a & b;
    case OPID_OR:     return a | b;
    case OPID_XOR:    return a ^ b;
    case OPID_SLL:    return a << (b & 63);
    case OPID_SRL:    return a >> (b & 63);
    case OPID_SRA:    return (u64)((i64)a >> (b & 63));
    case OPID_MUL:    return a * b;
    case OPID_DIV:    return alu_div(a, b);
    case OPID_CMPEQ:  return a == b;
    case OPID_CMPLT:  return (i64)a < (i64)b;
    case OPID_CMPLE:  return (i64)a <= (i64)b;
    case OPID_CMPULT: return a < b;
    case OPID_ANDI:   return a & (u64)imm;
    case OPID_ORI:    return a | (u64)imm;
    case OPID_XORI:   return a ^ (u64)imm;
    case OPID_SLLI:   return a << (imm & 63);
    case OPID_SRLI:   return a >> (imm & 63);
    case OPID_SRAI:   return (u64)((i64)a >> (imm & 63));
    case OPID_MULI:   return a * (u64)imm;
    case OPID_CMPEQI: return (i64)a == imm;
    case OPID_CMPLTI: return (i64)a < imm;
    case OPID_CMPLEI: return (i64)a <= imm;
    case OPID_CMPULTI:return a < (u64)imm;
    case OPID_LDAH:   return a + ((u64)imm << 16);
    default:          return 0;   /* unreachable for executed ALU ops */
    }
}

static inline int branch_taken_c(i64 kind, u64 a) {
    i64 sa = (i64)a;
    switch (kind) {
    case 0: return sa == 0;   /* beq */
    case 1: return sa != 0;   /* bne */
    case 2: return sa < 0;    /* blt */
    case 3: return sa >= 0;   /* bge */
    case 4: return sa <= 0;   /* ble */
    case 5: return sa > 0;    /* bgt */
    }
    return 0;
}
"""

_KERNEL += r"""
/* ---------------- caches + MSHR ---------------- */

/* One set-associative lookup: MRU-ordered tag list per set, python's
 * Cache.lookup inlined (tag = block // num_sets, set = block % num_sets,
 * both via shifts because set counts are validated powers of two). */
static inline int cache_access_c(i64 *tags, i64 *lens, i64 nsets,
                                 i64 assoc, i64 block) {
    i64 set = block & (nsets - 1);
    i64 tag = block >> __builtin_ctzll((u64)nsets);
    i64 *ways = tags + set * assoc;
    i64 len = lens[set];
    if (len && ways[0] == tag) return 1;
    for (i64 i = 1; i < len; i++) {
        if (ways[i] == tag) {
            memmove(ways + 1, ways, (size_t)i * sizeof(i64));
            ways[0] = tag;
            return 1;
        }
    }
    i64 nl = len < assoc ? len + 1 : assoc;
    memmove(ways + 1, ways, (size_t)(nl - 1) * sizeof(i64));
    ways[0] = tag;
    lens[set] = nl;
    return 0;
}

/* CacheHierarchy._access: L1 (instruction or data), then L2, then the
 * MSHR-throttled memory path.  Returns the latency; *l1_hit mirrors the
 * MemoryAccessResult field the dispatch stage consults. */
static i64 hier_access(Ctx *c, int is_l1i, u64 addr, i64 now, int *l1_hit) {
    i64 lat, hit;
    if (is_l1i) {
        hit = cache_access_c(P(CT_L1I), P(CL_L1I), SC(L1I_SETS),
                             SC(L1I_ASSOC), (i64)(addr >> SC(L1I_BSHIFT)));
        lat = SC(L1I_LAT);
        if (hit) { SC(L1I_HITS)++; *l1_hit = 1; return lat; }
        SC(L1I_MISSES)++;
    } else {
        hit = cache_access_c(P(CT_L1D), P(CL_L1D), SC(L1D_SETS),
                             SC(L1D_ASSOC), (i64)(addr >> SC(L1D_BSHIFT)));
        lat = SC(L1D_LAT);
        if (hit) { SC(L1D_HITS)++; *l1_hit = 1; return lat; }
        SC(L1D_MISSES)++;
    }
    *l1_hit = 0;
    hit = cache_access_c(P(CT_L2), P(CL_L2), SC(L2_SETS), SC(L2_ASSOC),
                         (i64)(addr >> SC(L2_BSHIFT)));
    if (hit) { SC(L2_HITS)++; return lat + SC(L2_LAT); }
    SC(L2_MISSES)++;
    i64 miss_lat = SC(L2_LAT) + SC(MEM_LAT);
    /* _Mshr.acquire: drop completed, if full wait for (and retire) the
     * earliest outstanding miss, then register our completion time. */
    i64 *mt = P(MSHR_T);
    i64 ml = SC(MSHR_LEN), w = 0;
    for (i64 i = 0; i < ml; i++) if (mt[i] > now) mt[w++] = mt[i];
    ml = w;
    i64 stall = 0;
    if (ml >= SC(MSHR_CAP)) {
        i64 ei = 0;
        for (i64 i = 1; i < ml; i++) if (mt[i] < mt[ei]) ei = i;
        stall = mt[ei] - now;
        if (stall < 0) stall = 0;
        memmove(mt + ei, mt + ei + 1, (size_t)(ml - 1 - ei) * sizeof(i64));
        ml--;
    }
    mt[ml++] = now + stall + miss_lat;
    SC(MSHR_LEN) = ml;
    return lat + miss_lat + stall;
}

/* ---------------- branch prediction ---------------- */

/* HybridPredictor.predict_and_update, exactly: chooser picks bimodal vs
 * gshare, counters train toward the outcome, 16-bit global history. */
static int bp_predict_update(Ctx *c, u64 pc, int taken) {
    i64 mask = SC(BP_MASK);
    i64 history = SC(BP_HIST);
    i64 base = (i64)((pc >> 2) & (u64)mask);
    i64 gidx = base ^ (history & mask);
    i64 *bim = P(BP_BIM), *gsh = P(BP_GSH), *cho = P(BP_CHOOSER);
    i64 bc = bim[base], gc = gsh[gidx], cc = cho[base];
    int bim_taken = bc >= 2, gsh_taken = gc >= 2;
    int predicted = cc >= 2 ? gsh_taken : bim_taken;
    int bim_ok = bim_taken == taken, gsh_ok = gsh_taken == taken;
    if (bim_ok != gsh_ok) {
        if (gsh_ok) { if (cc < 3) cho[base] = cc + 1; }
        else        { if (cc > 0) cho[base] = cc - 1; }
    }
    if (taken) {
        if (bc < 3) bim[base] = bc + 1;
        if (gc < 3) gsh[gidx] = gc + 1;
    } else {
        if (bc > 0) bim[base] = bc - 1;
        if (gc > 0) gsh[gidx] = gc - 1;
    }
    SC(BP_HIST) = ((history << 1) | taken) & 0xFFFF;
    return predicted;
}

/* BTB predict-then-update (_check_target): returns 0 when the predicted
 * target (or its absence) matched the actual one.  Counts btb_misses. */
static int btb_check_target(Ctx *c, u64 pc, i64 tgt, int tgt_has) {
    i64 nsets = SC(BTB_SETS), assoc = SC(BTB_ASSOC);
    i64 set = (i64)((pc >> 2) % (u64)nsets);
    i64 *tags = P(BTB_TAG) + set * assoc;
    i64 *tgts = P(BTB_TGT) + set * assoc;
    i64 *thas = P(BTB_THAS) + set * assoc;
    i64 len = P(BTB_LEN)[set];
    i64 pred = 0;
    int pred_has = 0, found = 0;
    for (i64 i = 0; i < len; i++) {
        if (tags[i] == (i64)pc) {
            pred = tgts[i];
            pred_has = (int)thas[i];
            found = 1;
            /* MRU move (predict side). */
            memmove(tags + 1, tags, (size_t)i * sizeof(i64));
            memmove(tgts + 1, tgts, (size_t)i * sizeof(i64));
            memmove(thas + 1, thas, (size_t)i * sizeof(i64));
            tags[0] = (i64)pc; tgts[0] = pred; thas[0] = pred_has;
            break;
        }
    }
    /* BTB.update: drop any entry for pc, insert MRU, clip to assoc. */
    for (i64 i = 0; i < len; i++) {
        if (tags[i] == (i64)pc) {
            memmove(tags + i, tags + i + 1, (size_t)(len - 1 - i) * sizeof(i64));
            memmove(tgts + i, tgts + i + 1, (size_t)(len - 1 - i) * sizeof(i64));
            memmove(thas + i, thas + i + 1, (size_t)(len - 1 - i) * sizeof(i64));
            len--;
            break;
        }
    }
    i64 nl = len < assoc ? len + 1 : assoc;
    memmove(tags + 1, tags, (size_t)(nl - 1) * sizeof(i64));
    memmove(tgts + 1, tgts, (size_t)(nl - 1) * sizeof(i64));
    memmove(thas + 1, thas, (size_t)(nl - 1) * sizeof(i64));
    tags[0] = (i64)pc; tgts[0] = tgt; thas[0] = tgt_has;
    P(BTB_LEN)[set] = nl;
    int mismatch = !found ? tgt_has || 0
                 : (pred_has != tgt_has) || (pred_has && pred != tgt);
    if (!found && !tgt_has) mismatch = 0;
    if (!found && tgt_has) mismatch = 1;
    if (mismatch) SC(BTB_MISSES)++;
    return mismatch;
}

/* ---------------- integration table ---------------- */

/* Incremental floor-mod port of IntegrationTable._set_index's unbounded
 * Python integer hash: mixed = crc; mixed = mixed*1000003 + imm; then
 * per operand mixed = mixed*1000003 + preg*8191 + disp; mod num_sets. */
static inline i64 it_set_index(Ctx *c, i64 kop, i64 imm, i64 n,
                               i64 p0, i64 d0, i64 p1, i64 d1) {
    i64 S = SC(IT_SETS);
    i64 m = P(O_CRC)[kop] % S;
    i128 acc = (i128)m * 1000003 + imm;
    m = (i64)(acc % S); if (m < 0) m += S;
    if (n > 0) {
        acc = (i128)m * 1000003 + (i128)p0 * 8191 + d0;
        m = (i64)(acc % S); if (m < 0) m += S;
    }
    if (n > 1) {
        acc = (i128)m * 1000003 + (i128)p1 * 8191 + d1;
        m = (i64)(acc % S); if (m < 0) m += S;
    }
    return m;
}

static inline void it_register_preg(Ctx *c, i64 preg, i64 set) {
    i64 pbw = SC(IT_PBW);
    P(IT_PBITS)[preg * pbw + (set >> 6)] |= (i64)((u64)1 << (set & 63));
    P(IT_PHAS)[preg] = 1;
}

/* IntegrationTable.lookup: count the probe, compare full keys in MRU
 * order, refresh MRU on hit.  Returns the way index or -1. */
static i64 it_lookup(Ctx *c, i64 set, i64 kop, i64 imm, i64 n,
                     i64 p0, i64 d0, i64 p1, i64 d1) {
    SC(ITC_LOOKUPS)++;
    i64 assoc = SC(IT_ASSOC);
    i64 base = set * assoc;
    i64 len = P(IT_LEN)[set];
    for (i64 i = 0; i < len; i++) {
        i64 j = base + i;
        if (P(IT_KOP)[j] != kop || P(IT_IMM)[j] != imm || P(IT_N)[j] != n)
            continue;
        if (n > 0 && (P(IT_P0)[j] != p0 || P(IT_D0)[j] != d0)) continue;
        if (n > 1 && (P(IT_P1)[j] != p1 || P(IT_D1)[j] != d1)) continue;
        if (i) {
            /* MRU move: rotate ways [0, i] right by one. */
            i64 kop_, imm_, n_, p0_, d0_, p1_, d1_, op_, od_, or_, v_, vh_;
            kop_ = P(IT_KOP)[j]; imm_ = P(IT_IMM)[j]; n_ = P(IT_N)[j];
            p0_ = P(IT_P0)[j]; d0_ = P(IT_D0)[j];
            p1_ = P(IT_P1)[j]; d1_ = P(IT_D1)[j];
            op_ = P(IT_OUTP)[j]; od_ = P(IT_OUTD)[j]; or_ = P(IT_ORIG)[j];
            v_ = P(IT_VAL)[j]; vh_ = P(IT_VHAS)[j];
            for (i64 k = i; k > 0; k--) {
                i64 dst = base + k, src = base + k - 1;
                P(IT_KOP)[dst] = P(IT_KOP)[src];
                P(IT_IMM)[dst] = P(IT_IMM)[src];
                P(IT_N)[dst] = P(IT_N)[src];
                P(IT_P0)[dst] = P(IT_P0)[src];
                P(IT_D0)[dst] = P(IT_D0)[src];
                P(IT_P1)[dst] = P(IT_P1)[src];
                P(IT_D1)[dst] = P(IT_D1)[src];
                P(IT_OUTP)[dst] = P(IT_OUTP)[src];
                P(IT_OUTD)[dst] = P(IT_OUTD)[src];
                P(IT_ORIG)[dst] = P(IT_ORIG)[src];
                P(IT_VAL)[dst] = P(IT_VAL)[src];
                P(IT_VHAS)[dst] = P(IT_VHAS)[src];
            }
            P(IT_KOP)[base] = kop_; P(IT_IMM)[base] = imm_;
            P(IT_N)[base] = n_;
            P(IT_P0)[base] = p0_; P(IT_D0)[base] = d0_;
            P(IT_P1)[base] = p1_; P(IT_D1)[base] = d1_;
            P(IT_OUTP)[base] = op_; P(IT_OUTD)[base] = od_;
            P(IT_ORIG)[base] = or_;
            P(IT_VAL)[base] = v_; P(IT_VHAS)[base] = vh_;
        }
        SC(ITC_HITS)++;
        return base;
    }
    return -1;
}
"""

_KERNEL += r"""
/* ---------------- scheduler plumbing ---------------- */

#define ELIM_MOVE 1
#define ELIM_CF   2
#define ELIM_CSE  3
#define ELIM_RA   4

#define ORIGIN_LOAD  0
#define ORIGIN_STORE 1
#define ORIGIN_ALU   2

/* Pending-cycle "heap" kept as a sorted ascending array; python's heapq
 * contract is behavioural (pop-min / push), so this is equivalent. */
static int heap_insert(Ctx *c, i64 cyc) {
    i64 len = SC(HEAP_LEN);
    if (len >= SC(HEAP_CAP)) return 1;
    i64 *h = P(HEAP);
    i64 lo = 0, hi = len;
    while (lo < hi) { i64 mid = (lo + hi) >> 1; if (h[mid] < cyc) lo = mid + 1; else hi = mid; }
    memmove(h + lo + 1, h + lo, (size_t)(len - lo) * sizeof(i64));
    h[lo] = cyc;
    SC(HEAP_LEN) = len + 1;
    return 0;
}

static inline i64 node_alloc(Ctx *c) {
    i64 n = SC(NODE_FREE);
    if (n >= 0) SC(NODE_FREE) = P(NODE_NEXT)[n];
    return n;  /* -1 when exhausted: caller bails with ERR_INTERNAL */
}

static inline void node_free(Ctx *c, i64 n) {
    P(NODE_NEXT)[n] = SC(NODE_FREE);
    SC(NODE_FREE) = n;
}

/* Append one seq to the wakeup bucket for `cyc` (IssueQueue._schedule /
 * wakeup): claim the ring slot and push the cycle on the heap when the
 * bucket is new, else append to the existing chain. */
static int wakeup_push(Ctx *c, i64 cyc, i64 seq) {
    i64 idx = cyc & SC(WK_MASK);
    i64 n = node_alloc(c);
    if (n < 0) return 1;
    P(NODE_SEQ)[n] = seq;
    P(NODE_NEXT)[n] = -1;
    if (P(WK_CYCLE)[idx] == cyc) {
        P(NODE_NEXT)[P(WK_TAIL)[idx]] = n;
        P(WK_TAIL)[idx] = n;
        return 0;
    }
    if (P(WK_CYCLE)[idx] != -1) return 1;  /* ring collision */
    P(WK_CYCLE)[idx] = cyc;
    P(WK_HEAD)[idx] = n;
    P(WK_TAIL)[idx] = n;
    return heap_insert(c, cyc);
}

/* Move a whole waiter chain into the wakeup bucket for `ready`
 * (the "dest in waiters" branch after a register write).  Order is
 * preserved exactly as python's list extend. */
static int waiter_chain_to_wakeups(Ctx *c, i64 dest, i64 ready) {
    i64 head = P(WT_HEAD)[dest];
    if (head < 0) return 0;
    i64 tail = P(WT_TAIL)[dest];
    P(WT_HEAD)[dest] = -1;
    P(WT_TAIL)[dest] = -1;
    i64 idx = ready & SC(WK_MASK);
    if (P(WK_CYCLE)[idx] == ready) {
        P(NODE_NEXT)[P(WK_TAIL)[idx]] = head;
        P(WK_TAIL)[idx] = tail;
        return 0;
    }
    if (P(WK_CYCLE)[idx] != -1) return 1;
    P(WK_CYCLE)[idx] = ready;
    P(WK_HEAD)[idx] = head;
    P(WK_TAIL)[idx] = tail;
    return heap_insert(c, ready);
}

static int waiter_append(Ctx *c, i64 preg, i64 seq) {
    i64 n = node_alloc(c);
    if (n < 0) return 1;
    P(NODE_SEQ)[n] = seq;
    P(NODE_NEXT)[n] = -1;
    if (P(WT_HEAD)[preg] < 0) P(WT_HEAD)[preg] = n;
    else P(NODE_NEXT)[P(WT_TAIL)[preg]] = n;
    P(WT_TAIL)[preg] = n;
    return 0;
}

/* Insert seq into its class's sorted ready list (python appends when the
 * seq is larger than the current tail, else bisect-inserts). */
static int ready_push(Ctx *c, i64 cls, i64 seq) {
    i64 *lst = P(READY) + cls * SC(RSTRIDE);
    i64 len = P(RLEN)[cls];
    if (len >= SC(RSTRIDE)) return 1;
    if (len == 0 || seq > lst[len - 1]) {
        lst[len] = seq;
    } else {
        i64 lo = 0, hi = len;
        while (lo < hi) { i64 mid = (lo + hi) >> 1; if (lst[mid] < seq) lo = mid + 1; else hi = mid; }
        memmove(lst + lo + 1, lst + lo, (size_t)(len - lo) * sizeof(i64));
        lst[lo] = seq;
    }
    P(RLEN)[cls] = len + 1;
    SC(IQ_READY_TOTAL)++;
    return 0;
}

/* IssueQueue._drain_wakeups: retire every bucket whose cycle has come,
 * decrementing waiting counts and promoting finished ops to ready. */
static int drain_wakeups(Ctx *c, i64 cycle) {
    while (SC(HEAP_LEN) && P(HEAP)[0] <= cycle) {
        i64 cyc = P(HEAP)[0];
        SC(HEAP_LEN)--;
        memmove(P(HEAP), P(HEAP) + 1, (size_t)SC(HEAP_LEN) * sizeof(i64));
        i64 idx = cyc & SC(WK_MASK);
        i64 n = P(WK_HEAD)[idx];
        P(WK_CYCLE)[idx] = -1;
        P(WK_HEAD)[idx] = -1;
        P(WK_TAIL)[idx] = -1;
        while (n >= 0) {
            i64 seq = P(NODE_SEQ)[n];
            i64 nx = P(NODE_NEXT)[n];
            node_free(c, n);
            n = nx;
            i64 slot = seq & SC(WMASK);
            i64 w = P(W_WAITING)[slot] - 1;
            P(W_WAITING)[slot] = w;
            if (w == 0 && ready_push(c, P(W_CLASS)[slot], seq)) return 1;
        }
    }
    return 0;
}

/* ---------------- store sets + load/store disambiguation ------------ */

/* StoreSets.train_violation. */
static void train_violation(Ctx *c, u64 load_pc, u64 store_pc) {
    SC(SS_TRAINED)++;
    i64 li = (i64)((load_pc >> 2) & (u64)SC(SS_MASK));
    i64 si = (i64)((store_pc >> 2) & (u64)SC(SS_MASK));
    i64 a = P(SSIT)[li], b = P(SSIT)[si];
    if (a < 0 && b < 0) {
        i64 nid = SC(SS_NEXT_ID);
        P(SSIT)[li] = nid;
        P(SSIT)[si] = nid;
        SC(SS_NEXT_ID) = nid + 1;
    } else if (a < 0) {
        P(SSIT)[li] = b;
    } else if (b < 0) {
        P(SSIT)[si] = a;
    } else {
        i64 m = a < b ? a : b;
        P(SSIT)[li] = m;
        P(SSIT)[si] = m;
    }
}

#define LSQ_MEMORY    0
#define LSQ_FORWARD   1
#define LSQ_VIOLATION 2
#define LSQ_WAIT      3

/* StoreQueue.check_load: newest-to-oldest walk over older stores. */
static int check_load_c(Ctx *c, i64 load_seq, u64 addr, i64 size,
                        i64 *fwd_value, i64 *viol_pos) {
    u128 end = (u128)addr + (u64)size;
    i64 head = SC(SQ_HEAD), len = SC(SQ_LEN), cap = SC(SQ_CAP);
    for (i64 k = len - 1; k >= 0; k--) {
        i64 pos = (head + k) % cap;
        if (P(SQ_SEQ)[pos] >= load_seq) continue;
        if (!P(SQ_EXEC)[pos]) {
            u64 ta = (u64)P(SQ_TADDR)[pos];
            u128 tend = (u128)ta + (u64)P(SQ_SIZE)[pos];
            if (!(tend <= (u128)addr || (u128)ta >= end)) {
                *viol_pos = pos;
                return LSQ_VIOLATION;
            }
            continue;
        }
        if (!P(SQ_AHAS)[pos]) continue;
        u64 ea = (u64)P(SQ_ADDR)[pos];
        u128 eend = (u128)ea + (u64)P(SQ_SIZE)[pos];
        if (eend <= (u128)addr || (u128)ea >= end) continue;
        if (ea <= addr && eend >= end) {
            u64 v = (u64)P(SQ_VAL)[pos] >> (8 * (addr - ea));
            if (size < 8) v &= ((u64)1 << (8 * size)) - 1;
            *fwd_value = (i64)v;
            return LSQ_FORWARD;
        }
        return LSQ_WAIT;
    }
    return LSQ_MEMORY;
}

/* Pipeline._load_can_issue, the select-stage gate for loads.  Returns
 * 1 issueable, 0 blocked, -1 internal error (violation log full). */
static int load_gate(Ctx *c, i64 seq, i64 cycle) {
    (void)cycle;
    if (!SC(SQ_LEN)) return 1;
    u64 pc = (u64)P(T_PC)[seq];
    i64 ls = P(SSIT)[(pc >> 2) & (u64)SC(SS_MASK)];
    if (ls >= 0) {
        i64 head = SC(SQ_HEAD), len = SC(SQ_LEN), cap = SC(SQ_CAP);
        for (i64 k = 0; k < len; k++) {
            i64 pos = (head + k) % cap;
            if (P(SQ_SEQ)[pos] < seq && !P(SQ_EXEC)[pos]
                && P(SSIT)[(((u64)P(SQ_PC)[pos]) >> 2) & (u64)SC(SS_MASK)] == ls)
                return 0;
        }
    }
    i64 fwd = 0, vpos = -1;
    i64 sidx = P(T_SIDX)[seq];
    int r = check_load_c(c, seq, (u64)P(T_EFF)[seq], P(S_MEMB)[sidx],
                         &fwd, &vpos);
    if (r == LSQ_MEMORY || r == LSQ_FORWARD) return 1;
    if (r == LSQ_VIOLATION) {
        i64 slot = seq & SC(WMASK);
        if (!P(W_REPLAYED)[slot]) {   /* seq not in _violated_loads */
            if (SC(VIO_LEN) >= SC(VIO_CAP)) return -1;
            P(VIO_LOG)[SC(VIO_LEN)] = seq;
            SC(VIO_LEN)++;
            SC(MEM_ORDER_VIO)++;
            SC(LOAD_REPLAYS)++;
            P(W_REPLAYED)[slot] = 1;
            train_violation(c, pc, (u64)P(SQ_PC)[vpos]);
        }
        return 0;
    }
    return 0;  /* wait_store */
}
"""

_KERNEL += r"""
/* ---------------- integration table: insert / invalidate ------------ */

static inline void it_copy(Ctx *c, i64 dst, i64 src) {
    P(IT_KOP)[dst] = P(IT_KOP)[src];
    P(IT_IMM)[dst] = P(IT_IMM)[src];
    P(IT_N)[dst] = P(IT_N)[src];
    P(IT_P0)[dst] = P(IT_P0)[src];
    P(IT_D0)[dst] = P(IT_D0)[src];
    P(IT_P1)[dst] = P(IT_P1)[src];
    P(IT_D1)[dst] = P(IT_D1)[src];
    P(IT_OUTP)[dst] = P(IT_OUTP)[src];
    P(IT_OUTD)[dst] = P(IT_OUTD)[src];
    P(IT_ORIG)[dst] = P(IT_ORIG)[src];
    P(IT_VAL)[dst] = P(IT_VAL)[src];
    P(IT_VHAS)[dst] = P(IT_VHAS)[src];
}

/* IntegrationTable.insert + RenoRenamer._insert (both counters bump on
 * every insertion): evict same-key, insert MRU, clip to assoc, then
 * register the output preg and the input pregs in the per-preg index. */
static void it_insert(Ctx *c, i64 kop, i64 imm, i64 n, i64 p0, i64 d0,
                      i64 p1, i64 d1, i64 outp, i64 outd, i64 orig,
                      i64 val, i64 vhas) {
    i64 set = it_set_index(c, kop, imm, n, p0, d0, p1, d1);
    SC(ITC_INS)++;
    SC(RN_IT_INS)++;
    i64 assoc = SC(IT_ASSOC), base = set * assoc;
    i64 len = P(IT_LEN)[set];
    for (i64 i = 0; i < len; i++) {
        i64 j = base + i;
        if (P(IT_KOP)[j] != kop || P(IT_IMM)[j] != imm || P(IT_N)[j] != n)
            continue;
        if (n > 0 && (P(IT_P0)[j] != p0 || P(IT_D0)[j] != d0)) continue;
        if (n > 1 && (P(IT_P1)[j] != p1 || P(IT_D1)[j] != d1)) continue;
        for (i64 k = i; k < len - 1; k++) it_copy(c, base + k, base + k + 1);
        len--;
        break;
    }
    i64 nl = len < assoc ? len + 1 : assoc;
    for (i64 k = nl - 1; k > 0; k--) it_copy(c, base + k, base + k - 1);
    P(IT_KOP)[base] = kop; P(IT_IMM)[base] = imm; P(IT_N)[base] = n;
    P(IT_P0)[base] = p0; P(IT_D0)[base] = d0;
    P(IT_P1)[base] = p1; P(IT_D1)[base] = d1;
    P(IT_OUTP)[base] = outp; P(IT_OUTD)[base] = outd;
    P(IT_ORIG)[base] = orig;
    P(IT_VAL)[base] = val; P(IT_VHAS)[base] = vhas;
    P(IT_LEN)[set] = nl;
    it_register_preg(c, outp, set);
    if (n > 0 && p0 != outp) it_register_preg(c, p0, set);
    if (n > 1 && p1 != outp) it_register_preg(c, p1, set);
}

/* IntegrationTable.invalidate_preg: drop every entry in the preg's
 * registered sets that names it (output or key input). */
static void it_invalidate(Ctx *c, i64 preg) {
    if (!SC(IT_ON) || !P(IT_PHAS)[preg]) return;
    P(IT_PHAS)[preg] = 0;
    i64 pbw = SC(IT_PBW), assoc = SC(IT_ASSOC);
    i64 *bits = P(IT_PBITS) + preg * pbw;
    for (i64 w = 0; w < pbw; w++) {
        u64 word = (u64)bits[w];
        if (!word) continue;
        bits[w] = 0;
        while (word) {
            i64 set = w * 64 + __builtin_ctzll(word);
            word &= word - 1;
            i64 base = set * assoc, len = P(IT_LEN)[set], wpos = 0;
            for (i64 i = 0; i < len; i++) {
                i64 j = base + i;
                int names = P(IT_OUTP)[j] == preg
                    || (P(IT_N)[j] > 0 && P(IT_P0)[j] == preg)
                    || (P(IT_N)[j] > 1 && P(IT_P1)[j] == preg);
                if (names) { SC(ITC_INVAL)++; continue; }
                if (wpos != i) it_copy(c, base + wpos, j);
                wpos++;
            }
            P(IT_LEN)[set] = wpos;
        }
    }
}

/* ---------------- RENO elimination ---------------- */

/* RenoRenamer._try_integrate.  Outputs (kind, preg, disp, reexec). */
static int try_integrate(Ctx *c, i64 seq, i64 sidx, i64 n,
                         i64 p0, i64 d0, i64 p1, i64 d1,
                         i64 *okind, i64 *opreg, i64 *odisp, i64 *oreexec) {
    i64 flags = P(S_FLAGS)[sidx];
    i64 kop, imm;
    if (flags & DF_REG_IMM_ADD) { kop = OPID_ADDI; imm = P(S_FOLD)[sidx]; }
    else { kop = P(S_OPC)[sidx]; imm = P(S_IMM)[sidx]; }
    SC(RN_IT_LOOKUPS)++;
    i64 set = it_set_index(c, kop, imm, n, p0, d0, p1, d1);
    i64 j = it_lookup(c, set, kop, imm, n, p0, d0, p1, d1);
    if (j < 0) return 0;
    if (P(RC_COUNTS)[P(IT_OUTP)[j]] <= 0) return 0;
    if (!P(IT_VHAS)[j] || !P(T_RHAS)[seq] || P(IT_VAL)[j] != P(T_RES)[seq]) {
        SC(RN_IT_VALMIS)++;
        return 0;
    }
    SC(RN_IT_HITS)++;
    *okind = P(IT_ORIG)[j] == ORIGIN_STORE ? ELIM_RA : ELIM_CSE;
    *opreg = P(IT_OUTP)[j];
    *odisp = P(IT_OUTD)[j];
    *oreexec = (flags & DF_LOAD) ? 1 : 0;
    return 1;
}

/* RenoRenamer._try_eliminate: move/fold first, integration fallback. */
static int try_eliminate(Ctx *c, i64 seq, i64 sidx, i64 n,
                         i64 p0, i64 d0, i64 p1, i64 d1, i64 arch_src0,
                         i64 *okind, i64 *opreg, i64 *odisp, i64 *oreexec) {
    i64 flags = P(S_FLAGS)[sidx];
    if (flags & DF_REG_IMM_ADD) {
        i64 fold_ok = (flags & DF_MOVE) ? SC(FOLD_MOVES) : SC(FOLD_ADDS);
        if (fold_ok) {
            if (((SC(GROUP_MASK) >> arch_src0) & 1) && !SC(ALLOW_DEP)) {
                SC(RN_DEP_BLOCKS)++;
            } else {
                i64 nd = d0 + P(S_FOLD)[sidx];
                i64 lim = (i64)1 << (SC(DISP_BITS) - 1);
                if (nd >= -lim && nd < lim) {
                    *okind = (flags & DF_MOVE) ? ELIM_MOVE : ELIM_CF;
                    *opreg = p0;
                    *odisp = nd;
                    *oreexec = 0;
                    return 1;
                }
                SC(RN_OVERFLOW)++;
            }
        }
    }
    if (SC(IT_ON)
        && ((flags & DF_LOAD) || (SC(POLICY_FULL) && (flags & DF_IT_ALU))))
        return try_integrate(c, seq, sidx, n, p0, d0, p1, d1,
                             okind, opreg, odisp, oreexec);
    return 0;
}

/* RenoRenamer._insert_it_entries (non-eliminated dispatch path). */
static void it_insert_entries(Ctx *c, i64 seq, i64 sidx, i64 n,
                              i64 p0, i64 d0, i64 p1, i64 d1,
                              i64 dest_preg) {
    i64 flags = P(S_FLAGS)[sidx];
    if (flags & DF_STORE) {
        it_insert(c, P(O_S2L)[P(S_OPC)[sidx]], P(S_IMM)[sidx], 1,
                  p0, d0, 0, 0, p1, d1, ORIGIN_STORE,
                  P(T_SV)[seq], P(T_SVHAS)[seq]);
        return;
    }
    i64 kop, imm;
    if (flags & DF_REG_IMM_ADD) { kop = OPID_ADDI; imm = P(S_FOLD)[sidx]; }
    else { kop = P(S_OPC)[sidx]; imm = P(S_IMM)[sidx]; }
    if ((flags & DF_LOAD) && dest_preg >= 0) {
        it_insert(c, kop, imm, n, p0, d0, p1, d1, dest_preg, 0,
                  ORIGIN_LOAD, P(T_RES)[seq], P(T_RHAS)[seq]);
        return;
    }
    if (!SC(POLICY_FULL) || dest_preg < 0) return;
    if (!(flags & DF_IT_ALU)) return;
    it_insert(c, kop, imm, n, p0, d0, p1, d1, dest_preg, 0,
              ORIGIN_ALU, P(T_RES)[seq], P(T_RHAS)[seq]);
    if (flags & DF_REG_IMM_ADD)
        it_insert(c, OPID_ADDI, -P(S_FOLD)[sidx], 1, dest_preg, 0, 0, 0,
                  p0, d0, ORIGIN_ALU, P(T_RS1)[seq], P(T_RS1HAS)[seq]);
}
"""

_KERNEL += r"""
/* ---------------- branch unit: non-conditional control -------------- */

/* BranchUnit.process for JUMP (1) / CALL (2) / RET (3).
 * Returns 0 correct, 1 btb bubble, 2 full mispredict (ras). */
static int branch_process_c(Ctx *c, i64 ctl, u64 pc, i64 tgt, int tgt_has) {
    if (ctl == 3) {
        i64 len = SC(RAS_LEN);
        i64 pred = 0;
        int pred_has = 0;
        if (len) {
            pred = P(RAS_STACK)[len - 1];
            SC(RAS_LEN) = len - 1;
            pred_has = 1;
        }
        if ((pred_has != tgt_has) || (pred_has && pred != tgt)) {
            SC(RAS_MISPRED)++;
            return 2;
        }
        return 0;
    }
    int mis = btb_check_target(c, pc, tgt, tgt_has);
    if (ctl == 2) {
        /* ReturnAddressStack.push: append, drop the oldest past capacity. */
        i64 len = SC(RAS_LEN), cap = SC(RAS_CAP);
        if (len >= cap) {
            memmove(P(RAS_STACK), P(RAS_STACK) + 1,
                    (size_t)(cap - 1) * sizeof(i64));
            P(RAS_STACK)[cap - 1] = (i64)(pc + 4);
        } else {
            P(RAS_STACK)[len] = (i64)(pc + 4);
            SC(RAS_LEN) = len + 1;
        }
    }
    return mis ? 1 : 0;
}

/* Store-queue lookup by seq (ring is seq-sorted: program order). */
static i64 sq_find(Ctx *c, i64 seq) {
    i64 head = SC(SQ_HEAD), len = SC(SQ_LEN), cap = SC(SQ_CAP);
    i64 lo = 0, hi = len - 1;
    while (lo <= hi) {
        i64 mid = (lo + hi) >> 1;
        i64 pos = (head + mid) % cap;
        i64 s = P(SQ_SEQ)[pos];
        if (s == seq) return pos;
        if (s < seq) lo = mid + 1; else hi = mid - 1;
    }
    return -1;
}

/* ---------------- the cycle loop ---------------- */

/* Cycle-exact port of Pipeline._run_cycles.  Returns 0 on success with
 * the cursor/stat scalars updated; any nonzero return leaves no
 * Python-visible state change (the backend replays the slice). */
__attribute__((visibility("default")))
i64 repro_run(i64 *sc_blk, i64 **pt_blk, uint8_t *pages_blk) {
    Ctx ctx = { sc_blk, pt_blk, pages_blk };
    Ctx *c = &ctx;
    const i64 total = SC(TOTAL);
    const i64 wmask = SC(WMASK);
    const i64 stop = SC(STOP);
    const i64 max_cycles = SC(MAX_CYCLES);
    const int reno = (int)SC(MODE);
    const int record = (int)SC(RECORD_STATS);
    i64 cycle = SC(CYCLE);
    i64 committed = SC(COMMITTED);
    i64 fetch_index = SC(FETCH_INDEX);
    i64 fetch_resume = SC(FETCH_RESUME);
    i64 waiting_branch = SC(WAITING_BRANCH);
    i64 last_fetch_block = SC(LAST_FETCH_BLOCK);
    i64 stall_reason = SC(STALL_REASON);
    i64 iq_count = SC(IQ_COUNT);

    while (committed < total) {
        if (cycle >= max_cycles) return ERR_MAX_CYCLES;
        if (cycle >= stop) break;

        /* ---------------- Commit ---------------- */
        i64 slot = committed & wmask;
        if (P(W_COMPLETE)[slot] < cycle) {
            i64 budget = SC(COMMIT_WIDTH);
            i64 ports = SC(RETIRE_PORTS);
            for (;;) {
                i64 sidx = P(T_SIDX)[committed];
                i64 flags = P(S_FLAGS)[sidx];
                i64 elim = P(W_ELIM)[slot];
                if (flags & DF_STORE) {
                    if (!ports) break;
                    u64 addr = (u64)P(W_EFF)[slot];
                    if (mem_write(c, addr, P(S_MEMB)[sidx],
                                  (u64)P(W_VALUE)[slot]))
                        return ERR_INTERNAL;
                    int hit;
                    hier_access(c, 0, addr, cycle, &hit);
                    if (!SC(SQ_LEN) || P(SQ_SEQ)[SC(SQ_HEAD)] != committed)
                        return ERR_INTERNAL;
                    SC(SQ_HEAD) = (SC(SQ_HEAD) + 1) % SC(SQ_CAP);
                    SC(SQ_LEN)--;
                    ports--;
                } else if (elim & ELIM_REEXEC) {
                    if (!ports) break;
                    u64 eff = (u64)P(T_EFF)[committed];
                    i64 mb = P(S_MEMB)[sidx];
                    u64 raw = mem_read(c, eff, mb);
                    u64 val = (flags & DF_MEM_SIGNED)
                        ? sextb(raw, (int)(8 * mb)) : raw;
                    u64 shared = (u64)P(PRF_VAL)[P(RRE_P)[slot]]
                        + (u64)P(RRE_D)[slot];
                    if (val != shared) SC(INT_VAL_MISMATCH)++;
                    SC(REEXEC_LOADS)++;
                    int hit;
                    hier_access(c, 0, eff, cycle, &hit);
                    ports--;
                }
                if (P(S_DEST)[sidx] >= 0 && P(T_RHAS)[committed]) {
                    if (elim) {
                        u64 produced = (u64)P(PRF_VAL)[P(RRE_P)[slot]]
                            + (u64)P(RRE_D)[slot];
                        if (produced != (u64)P(T_RES)[committed])
                            return ERR_VALUE_CHECK;
                    } else if ((u64)P(W_VALUE)[slot]
                               != (u64)P(T_RES)[committed]) {
                        return ERR_VALUE_CHECK;
                    }
                }
                if ((flags & DF_LOAD) && !elim) SC(LQ_LEN)--;
                i64 prev = P(W_PREV)[slot];
                if (prev >= 0) {
                    if (!reno) {
                        P(FREE_RING)[(SC(FREE_HEAD) + SC(FREE_LEN))
                                     % SC(NUM_PREGS)] = prev;
                        SC(FREE_LEN)++;
                    } else {
                        i64 cnt = P(RC_COUNTS)[prev];
                        if (cnt == 1) {
                            P(RC_COUNTS)[prev] = 0;
                            P(FREE_RING)[(SC(FREE_HEAD) + SC(FREE_LEN))
                                         % SC(NUM_PREGS)] = prev;
                            SC(FREE_LEN)++;
                            it_invalidate(c, prev);
                        } else if (cnt > 1) {
                            P(RC_COUNTS)[prev] = cnt - 1;
                        } else {
                            return ERR_INTERNAL;  /* refcount underflow */
                        }
                    }
                }
                if (elim) {
                    switch (elim & 15) {
                    case ELIM_MOVE: SC(D_ELIM_MOVES)++; break;
                    case ELIM_CF:   SC(D_ELIM_FOLDS)++; break;
                    case ELIM_CSE:  SC(D_ELIM_CSE)++; break;
                    case ELIM_RA:   SC(D_ELIM_RA)++; break;
                    }
                }
                P(W_COMPLETE)[slot] = NO_COMPLETE;
                committed++;
                if (!--budget || committed >= fetch_index) break;
                slot = committed & wmask;
                if (P(W_COMPLETE)[slot] >= cycle) break;
            }
        }

        /* ---------------- Wakeup + select ---------------- */
        i64 nsel = 0;
        i64 *sel = P(SELBUF);
        if (drain_wakeups(c, cycle)) return ERR_INTERNAL;
        if (SC(IQ_READY_TOTAL)) {
            i64 idx4[4] = {0, 0, 0, 0}, klen4[4] = {0, 0, 0, 0};
            i64 lim4[4] = { SC(W_INT), SC(W_LOAD), SC(W_STORE), SC(W_FP) };
            int act[4], nact = 0;
            for (int k = 0; k < 4; k++) {
                act[k] = lim4[k] && P(RLEN)[k];
                if (act[k]) nact++;
            }
            i64 remaining = SC(TOTAL_ISSUE);
            while (remaining && nact) {
                int bi = -1;
                i64 best = 0;
                for (int k = 0; k < 4; k++) {
                    if (!act[k]) continue;
                    i64 v = P(READY)[k * SC(RSTRIDE) + idx4[k]];
                    if (bi < 0 || v < best) { best = v; bi = k; }
                }
                i64 seq = best;
                idx4[bi]++;
                int veto = P(W_DISPATCH)[seq & wmask] >= cycle;
                if (!veto && bi == CLASS_LOAD) {
                    int g = load_gate(c, seq, cycle);
                    if (g < 0) return ERR_INTERNAL;
                    veto = !g;
                }
                if (veto) {
                    P(KEPTBUF)[bi * SC(RSTRIDE) + klen4[bi]++] = seq;
                } else {
                    sel[nsel++] = seq;
                    remaining--;
                    if (--lim4[bi] == 0) { act[bi] = 0; nact--; continue; }
                }
                if (idx4[bi] == P(RLEN)[bi]) { act[bi] = 0; nact--; }
            }
            for (int k = 0; k < 4; k++) {
                if (!idx4[k]) continue;
                i64 *lst = P(READY) + k * SC(RSTRIDE);
                i64 len = P(RLEN)[k], kl = klen4[k], ix = idx4[k];
                memmove(lst + kl, lst + ix, (size_t)(len - ix) * sizeof(i64));
                memcpy(lst, P(KEPTBUF) + k * SC(RSTRIDE),
                       (size_t)kl * sizeof(i64));
                P(RLEN)[k] = kl + (len - ix);
            }
            iq_count -= nsel;
            SC(IQ_READY_TOTAL) -= nsel;
        }
"""

_KERNEL += r"""
        /* ---------------- Execute ---------------- */
        if (nsel) {
            SC(D_ISSUED) += nsel;
            for (i64 i = 0; i < nsel; i++) {
                i64 seq = sel[i];
                i64 eslot = seq & wmask;
                i64 sidx = P(T_SIDX)[seq];
                i64 flags = P(S_FLAGS)[sidx];
                i64 cls = P(S_CLASS)[sidx];
                i64 ns = P(W_NSRC)[eslot];
                u64 value0 = 0, value1 = 0;
                i64 fextra = 0;
                if (reno) {
                    int fused = 0;
                    if (ns) {
                        value0 = (u64)P(PRF_VAL)[P(W_S0P)[eslot]];
                        i64 d = P(W_S0D)[eslot];
                        if (d) { value0 += (u64)d; fused = 1; }
                        if (ns > 1) {
                            value1 = (u64)P(PRF_VAL)[P(W_S1P)[eslot]];
                            d = P(W_S1D)[eslot];
                            if (d) { value1 += (u64)d; fused = 1; }
                        }
                    }
                    fextra = P(W_FEXTRA)[eslot];
                    if (fused) { SC(D_FUSED)++; SC(D_FUSE_PEN) += fextra; }
                } else if (ns) {
                    value0 = (u64)P(PRF_VAL)[P(W_S0P)[eslot]];
                    if (ns > 1) value1 = (u64)P(PRF_VAL)[P(W_S1P)[eslot]];
                }
                if (cls == CLASS_LOAD) {
                    u64 address = value0 + (u64)P(S_IMM)[sidx];
                    if (address != (u64)P(T_EFF)[seq]) return ERR_LOAD_ADDR;
                    P(W_EFF)[eslot] = (i64)address;
                    i64 mb = P(S_MEMB)[sidx];
                    u64 raw = 0;
                    int fwd = 0;
                    i64 dlat = 0;
                    if (SC(SQ_LEN)) {
                        i64 fv = 0, vp = -1;
                        if (check_load_c(c, seq, address, mb, &fv, &vp)
                                == LSQ_FORWARD) {
                            raw = (u64)fv;
                            dlat = SC(L1D_LAT);
                            SC(D_STORE_FWD)++;
                            fwd = 1;
                        }
                    }
                    if (!fwd) {
                        raw = mem_read(c, address, mb);
                        int hit;
                        dlat = hier_access(c, 0, address, cycle, &hit);
                    }
                    u64 value = (flags & DF_MEM_SIGNED)
                        ? sextb(raw, (int)(8 * mb)) : raw;
                    if (value != (u64)P(T_RES)[seq]) {
                        SC(MEM_ORDER_VIO)++;
                        SC(LOAD_REPLAYS)++;
                        value = (u64)P(T_RES)[seq];
                        dlat += SC(VIO_PENALTY);
                    }
                    if (P(W_REPLAYED)[eslot]) dlat += SC(VIO_PENALTY);
                    P(W_VALUE)[eslot] = (i64)value;
                    P(W_DCACHE)[eslot] = dlat;
                    i64 tot = P(S_LAT)[sidx] + fextra + dlat;
                    P(W_LATENCY)[eslot] = tot;
                    P(W_COMPLETE)[eslot] = cycle + tot;
                    i64 dst = P(W_DEST)[eslot];
                    if (dst >= 0) {
                        i64 ready = cycle
                            + (tot > SC(SCHED_LAT) ? tot : SC(SCHED_LAT));
                        P(PRF_VAL)[dst] = (i64)value;
                        P(PRF_RDY)[dst] = ready;
                        if (waiter_chain_to_wakeups(c, dst, ready))
                            return ERR_INTERNAL;
                    }
                    continue;
                }
                if (cls == CLASS_STORE) {
                    u64 address = value0 + (u64)P(S_IMM)[sidx];
                    if (address != (u64)P(T_EFF)[seq]) return ERR_STORE_ADDR;
                    u64 value = value1 & (u64)P(S_MMASK)[sidx];
                    P(W_EFF)[eslot] = (i64)address;
                    P(W_VALUE)[eslot] = (i64)value;
                    i64 complete = cycle + P(S_LAT)[sidx] + fextra;
                    P(W_COMPLETE)[eslot] = complete;
                    i64 pos = sq_find(c, seq);
                    if (pos < 0) return ERR_INTERNAL;
                    P(SQ_ADDR)[pos] = (i64)address;
                    P(SQ_AHAS)[pos] = 1;
                    P(SQ_VAL)[pos] = (i64)value;
                    P(SQ_EXEC)[pos] = 1;
                    P(SQ_COMP)[pos] = complete;
                    continue;
                }
                i64 latency = P(S_LAT)[sidx] + fextra;
                i64 complete = cycle + latency;
                P(W_COMPLETE)[eslot] = complete;
                if (flags & DF_COND_BRANCH) {
                    int taken = branch_taken_c(P(O_BRANCH)[P(S_OPC)[sidx]],
                                               value0);
                    if (taken != (int)P(T_TAKEN)[seq]) return ERR_BRANCH_DIR;
                } else if (P(S_DEST)[sidx] >= 0) {
                    u64 value = (flags & DF_CALL)
                        ? (u64)P(T_PC)[seq] + 4
                        : alu_eval_c(P(S_OPC)[sidx], value0, value1,
                                     P(S_IMM)[sidx]);
                    P(W_VALUE)[eslot] = (i64)value;
                    i64 dst = P(W_DEST)[eslot];
                    if (dst >= 0) {
                        i64 ready = cycle
                            + (latency > SC(SCHED_LAT) ? latency
                               : SC(SCHED_LAT));
                        P(PRF_VAL)[dst] = (i64)value;
                        P(PRF_RDY)[dst] = ready;
                        if (waiter_chain_to_wakeups(c, dst, ready))
                            return ERR_INTERNAL;
                    }
                }
                if (P(W_MISPRED)[eslot] && waiting_branch == seq) {
                    fetch_resume = complete + SC(FE_DEPTH);
                    waiting_branch = NO_BRANCH;
                    stall_reason = STALL_BRANCH;
                }
            }
        }
"""

_KERNEL += r"""
        /* ---------------- Fetch + rename + dispatch ---------------- */
        if (fetch_index < total) {
            if (cycle < fetch_resume) {
                SC(D_FETCH_STALLS)++;
                if (record) P(OC_STALL)[stall_reason]++;
            } else {
                i64 rob_room = SC(WSIZE) - (fetch_index - committed);
                i64 iq_room = SC(IQ_CAP) - iq_count;
                i64 sq_room = SC(SQ_CAP) - SC(SQ_LEN);
                i64 lq_room = SC(LQ_CAP) - SC(LQ_LEN);
                i64 taken_branches = 0, dispatched = 0, pregs_allocated = 0;
                if (reno) SC(GROUP_MASK) = 0;   /* begin_group */
                while (dispatched < SC(RENAME_WIDTH) && fetch_index < total) {
                    i64 seq = fetch_index;
                    i64 sidx = P(T_SIDX)[seq];
                    i64 flags = P(S_FLAGS)[sidx];
                    if (!rob_room) { SC(ROB_STALL)++; break; }
                    if (!iq_room) { SC(IQ_STALL)++; break; }
                    if (flags & DF_STORE) {
                        if (!sq_room) { SC(LSQ_STALL)++; break; }
                    } else if ((flags & DF_LOAD) && !lq_room) {
                        SC(LSQ_STALL)++;
                        break;
                    }
                    u64 pc = (u64)P(T_PC)[seq];
                    i64 block = (i64)(pc >> SC(FB_SHIFT));
                    if (block != last_fetch_block) {
                        int hit;
                        i64 lat = hier_access(c, 1, pc, cycle, &hit);
                        last_fetch_block = block;
                        if (!hit) {
                            fetch_resume = cycle + lat;
                            stall_reason = STALL_ICACHE;
                            break;
                        }
                    }
                    int is_taken = (flags & DF_CONTROL)
                        && P(T_TAKEN)[seq] == 1;
                    if (is_taken && taken_branches >= SC(TAKEN_LIMIT)) break;
                    i64 dslot = seq & wmask;
                    i64 dest = P(S_DEST)[sidx];
                    i64 ns = P(S_NSRC)[sidx];
                    int eliminated = 0;
                    i64 p0 = -1, d0 = 0, p1 = -1, d1 = 0, fextra = 0;
                    i64 newp = -1;
                    if (!reno) {
                        /* Conventional renaming (BaselineRenamer). */
                        if (dest >= 0 && !SC(FREE_LEN)) {
                            SC(RENAME_STALL)++;
                            break;
                        }
                        if (ns) {
                            p0 = P(BMAP)[P(S_SRC0)[sidx]];
                            P(W_S0P)[dslot] = p0;
                            if (ns > 1) {
                                p1 = P(BMAP)[P(S_SRC1)[sidx]];
                                P(W_S1P)[dslot] = p1;
                            }
                        }
                        if (dest >= 0) {
                            newp = P(FREE_RING)[SC(FREE_HEAD)];
                            SC(FREE_HEAD) = (SC(FREE_HEAD) + 1)
                                % SC(NUM_PREGS);
                            SC(FREE_LEN)--;
                            SC(D_ALLOC_BASE)++;
                            P(W_PREV)[dslot] = P(BMAP)[dest];
                            P(BMAP)[dest] = newp;
                            P(PRF_RDY)[newp] = NOT_READY;
                            P(W_DEST)[dslot] = newp;
                            pregs_allocated++;
                        } else {
                            P(W_DEST)[dslot] = -1;
                            P(W_PREV)[dslot] = -1;
                        }
                    } else {
                        /* RENO renaming (inlined RenoRenamer.rename_next). */
                        if (ns) {
                            i64 a = P(S_SRC0)[sidx];
                            p0 = P(RN_PREG)[a];
                            d0 = P(RN_DISP)[a];
                            if (ns > 1) {
                                a = P(S_SRC1)[sidx];
                                p1 = P(RN_PREG)[a];
                                d1 = P(RN_DISP)[a];
                            }
                        }
                        i64 ekind = 0, epreg = 0, edisp = 0, ereex = 0;
                        int has_elim = 0;
                        if (dest >= 0) {
                            if (flags & SC(ELIG_MASK))
                                has_elim = try_eliminate(
                                    c, seq, sidx, ns, p0, d0, p1, d1,
                                    ns ? P(S_SRC0)[sidx] : 0,
                                    &ekind, &epreg, &edisp, &ereex);
                            if (!has_elim && !SC(FREE_LEN)) {
                                SC(RENAME_STALL)++;
                                break;
                            }
                        }
                        if (has_elim) {
                            i64 cnt = P(RC_COUNTS)[epreg];
                            if (cnt <= 0) return ERR_INTERNAL;
                            cnt++;
                            P(RC_COUNTS)[epreg] = cnt;
                            SC(RC_SHARES)++;
                            if (cnt > SC(RC_MAXOBS)) SC(RC_MAXOBS) = cnt;
                            i64 prevp = P(RN_PREG)[dest];
                            P(RN_PREG)[dest] = epreg;
                            P(RN_DISP)[dest] = edisp;
                            SC(GROUP_MASK) |= (i64)1 << dest;
                            switch (ekind) {
                            case ELIM_MOVE: SC(RN_MOVES)++; break;
                            case ELIM_CF:   SC(RN_FOLDS)++; break;
                            case ELIM_CSE:  SC(RN_CSE)++; break;
                            case ELIM_RA:   SC(RN_RA)++; break;
                            }
                            eliminated = 1;
                            P(W_PREV)[dslot] = prevp;
                            P(W_ELIM)[dslot] = ekind
                                | (ereex ? ELIM_REEXEC : 0);
                            P(W_DEST)[dslot] = -1;
                            P(RRE_P)[dslot] = epreg;
                            P(RRE_D)[dslot] = edisp;
                        } else {
                            if (dest >= 0) {
                                newp = P(FREE_RING)[SC(FREE_HEAD)];
                                SC(FREE_HEAD) = (SC(FREE_HEAD) + 1)
                                    % SC(NUM_PREGS);
                                SC(FREE_LEN)--;
                                if (P(RC_COUNTS)[newp] != 0)
                                    return ERR_INTERNAL;
                                P(RC_COUNTS)[newp] = 1;
                                SC(RC_ALLOCS)++;
                                i64 prevp = P(RN_PREG)[dest];
                                P(RN_PREG)[dest] = newp;
                                P(RN_DISP)[dest] = 0;
                                P(PRF_RDY)[newp] = NOT_READY;
                                P(W_DEST)[dslot] = newp;
                                P(W_PREV)[dslot] = prevp;
                                pregs_allocated++;
                            } else {
                                P(W_DEST)[dslot] = -1;
                                P(W_PREV)[dslot] = -1;
                            }
                            P(W_ELIM)[dslot] = 0;
                            if ((ns && d0) || (ns > 1 && d1)) {
                                if (SC(FUSE_ALL)) {
                                    fextra = SC(FUSE_ALL);
                                } else {
                                    i64 cat =
                                        P(O_FUSECAT)[P(S_OPC)[sidx]];
                                    if (cat == 1) {
                                        fextra = SC(FUSE_NONADD);
                                    } else if (cat == 2) {
                                        int displaced = (ns && d0 != 0)
                                            + (ns > 1 && d1 != 0);
                                        fextra = displaced >= 2
                                            ? SC(FUSE_DDISP) : 0;
                                    }
                                }
                            }
                            if (SC(IT_ON)
                                && ((flags & (DF_LOAD | DF_STORE))
                                    || SC(POLICY_FULL)))
                                it_insert_entries(c, seq, sidx, ns,
                                                  p0, d0, p1, d1, newp);
                        }
                    }
                    P(W_DISPATCH)[dslot] = cycle;
                    if (is_taken) taken_branches++;

                    /* Branch prediction (inlined BranchUnit.process). */
                    int stop_after = 0;
                    if (flags & DF_CONTROL) {
                        if (flags & DF_COND_BRANCH) {
                            SC(BR_COND)++;
                            int predicted = bp_predict_update(c, pc,
                                                              is_taken);
                            if (predicted != is_taken) {
                                SC(BR_MISPRED)++;
                                P(W_MISPRED)[dslot] = 1;
                                waiting_branch = seq;
                                fetch_resume = STALLED_SENTINEL;
                                stall_reason = STALL_BRANCH;
                                stop_after = 1;
                            } else if (is_taken) {
                                if (btb_check_target(c, pc, P(T_TGT)[seq],
                                                     (int)P(T_THAS)[seq])) {
                                    fetch_resume = cycle + 2;
                                    stall_reason = STALL_FRONTEND;
                                    stop_after = 1;
                                }
                            }
                        } else {
                            int r = branch_process_c(
                                c, P(O_CTL)[P(S_OPC)[sidx]], pc,
                                P(T_TGT)[seq], (int)P(T_THAS)[seq]);
                            if (r == 1) {
                                fetch_resume = cycle + 2;
                                stall_reason = STALL_FRONTEND;
                                stop_after = 1;
                            } else if (r == 2) {
                                P(W_MISPRED)[dslot] = 1;
                                waiting_branch = seq;
                                fetch_resume = STALLED_SENTINEL;
                                stall_reason = STALL_BRANCH;
                                stop_after = 1;
                            }
                        }
                    }

                    /* Insertion. */
                    rob_room--;
                    if (eliminated || (flags & DF_NO_EXECUTE)) {
                        P(W_COMPLETE)[dslot] = cycle;
                    } else {
                        i64 cls = P(S_CLASS)[sidx];
                        P(W_CLASS)[dslot] = cls;
                        if (reno) {
                            P(W_FEXTRA)[dslot] = fextra;
                            if (ns) {
                                P(W_S0P)[dslot] = p0;
                                P(W_S0D)[dslot] = d0;
                                if (ns > 1) {
                                    P(W_S1P)[dslot] = p1;
                                    P(W_S1D)[dslot] = d1;
                                }
                            }
                        }
                        P(W_NSRC)[dslot] = ns;
                        i64 pending = 0;
                        for (i64 si = 0; si < ns; si++) {
                            i64 preg = si ? p1 : p0;
                            i64 ra = P(PRF_RDY)[preg];
                            if (ra <= cycle) continue;
                            pending++;
                            if (ra == NOT_READY) {
                                if (waiter_append(c, preg, seq))
                                    return ERR_INTERNAL;
                            } else if (wakeup_push(c, ra, seq)) {
                                return ERR_INTERNAL;
                            }
                        }
                        if (pending) P(W_WAITING)[dslot] = pending;
                        else if (ready_push(c, cls, seq)) return ERR_INTERNAL;
                        iq_count++;
                        if (cls == CLASS_STORE) {
                            i64 pos = (SC(SQ_HEAD) + SC(SQ_LEN)) % SC(SQ_CAP);
                            P(SQ_SEQ)[pos] = seq;
                            P(SQ_PC)[pos] = (i64)pc;
                            P(SQ_SIZE)[pos] = P(S_MEMB)[sidx];
                            P(SQ_TADDR)[pos] = P(T_EFF)[seq];
                            P(SQ_ADDR)[pos] = 0;
                            P(SQ_AHAS)[pos] = 0;
                            P(SQ_VAL)[pos] = 0;
                            P(SQ_EXEC)[pos] = 0;
                            P(SQ_COMP)[pos] = -1;
                            SC(SQ_LEN)++;
                            sq_room--;
                        } else if (cls == CLASS_LOAD) {
                            SC(LQ_LEN)++;
                            lq_room--;
                            P(W_REPLAYED)[dslot] = 0;
                        }
                        P(W_COMPLETE)[dslot] = NO_COMPLETE;
                        iq_room--;
                    }
                    fetch_index++;
                    dispatched++;
                    if (stop_after) break;
                }
                if (dispatched) SC(D_FETCHED) += dispatched;
                if (pregs_allocated) {
                    SC(D_PREGS_ALLOC) += pregs_allocated;
                    i64 in_use = SC(NUM_PREGS) - SC(FREE_LEN);
                    if (in_use > SC(MAX_PREGS)) SC(MAX_PREGS) = in_use;
                }
            }
        }

        /* ---------------- Observability (opt-in) ---------------- */
        if (record) {
            P(OC_ROB)[fetch_index - committed]++;
            P(OC_IQ)[iq_count]++;
            P(OC_PRF)[SC(NUM_PREGS) - SC(FREE_LEN)]++;
            P(OC_SQ)[SC(SQ_LEN)]++;
            P(OC_LQ)[SC(LQ_LEN)]++;
            for (int k = 0; k < 4; k++)
                P(OC_READY)[k * SC(RSTRIDE) + P(RLEN)[k]]++;
            P(OC_ISSUED)[nsel]++;
            for (i64 i = 0; i < nsel; i++)
                P(OC_CLASS)[P(W_CLASS)[sel[i] & wmask]]++;
        }
        cycle++;

        /* ---------------- Event-driven fast-forward ---------------- */
        if (committed >= total) continue;
        if (SC(IQ_READY_TOTAL)) continue;
        i64 idle = SC(HEAP_LEN) ? P(HEAP)[0] : NOT_READY;
        if (idle <= cycle) continue;
        i64 tgt = idle;
        int fetching = fetch_index < total;
        if (fetching) {
            if (fetch_resume <= cycle) continue;
            if (fetch_resume < tgt) tgt = fetch_resume;
        }
        i64 head_ready = P(W_COMPLETE)[committed & wmask] + 1;
        if (head_ready < tgt) tgt = head_ready;
        if (tgt > stop) tgt = stop;
        if (tgt <= cycle) continue;
        if (tgt > max_cycles) tgt = max_cycles;
        if (fetching) SC(D_FETCH_STALLS) += tgt - cycle;
        if (record) {
            i64 sk = tgt - cycle;
            if (fetching) P(OC_STALL)[stall_reason] += sk;
            P(OC_ROB)[fetch_index - committed] += sk;
            P(OC_IQ)[iq_count] += sk;
            P(OC_PRF)[SC(NUM_PREGS) - SC(FREE_LEN)] += sk;
            P(OC_SQ)[SC(SQ_LEN)] += sk;
            P(OC_LQ)[SC(LQ_LEN)] += sk;
            for (int k = 0; k < 4; k++) P(OC_READY)[k * SC(RSTRIDE)] += sk;
            P(OC_ISSUED)[0] += sk;
        }
        cycle = tgt;
    }

    SC(CYCLE) = cycle;
    SC(COMMITTED) = committed;
    SC(FETCH_INDEX) = fetch_index;
    SC(FETCH_RESUME) = fetch_resume;
    SC(WAITING_BRANCH) = waiting_branch;
    SC(LAST_FETCH_BLOCK) = last_fetch_block;
    SC(STALL_REASON) = stall_reason;
    SC(IQ_COUNT) = iq_count;
    return ERR_OK;
}
"""
