"""Checkpointable pipeline state: exact snapshot/restore of a timing run.

A :class:`PipelineSnapshot` captures every piece of *mutable* simulation
state of a :class:`~repro.uarch.core.Pipeline` — the in-flight window
arrays, renamer (map table, free list, refcounts, integration table),
branch predictors, cache hierarchy, store sets, load/store queues, issue
queue (waiters, wakeup heap, ready lists), physical register file, memory
image, statistics and the front-end cursors — as one deep copy whose
internal aliasing is preserved (the issue queue keeps pointing at *the
copied* window, the rename results keep sharing *the copied* map-table
mappings, and so on).

What a snapshot deliberately does **not** carry are the immutable run
inputs: the program, the dynamic trace, the machine configuration and the
decoded-op caches.  Restoring therefore requires a pipeline constructed
from the same (program, trace, config) triple; the snapshot records their
fingerprints and :meth:`PipelineSnapshot.validate_for` refuses a mismatch.
This keeps checkpoints proportional to the *architected state*, not the
trace length, which is what lets a long simulation be time-sliced by a
service and parked on disk between slices.

Exactness contract: ``run(max_cycles=k)`` → ``snapshot()`` → (new pipeline)
→ ``restore()`` → ``run()`` produces results byte-identical to a single
uninterrupted ``run()`` — the same statistics, final registers and timing
records.  The property tests in ``tests/uarch/test_snapshot_restore.py``
enforce this cycle-for-cycle on seeded random programs for both the
conventional and the RENO renamer.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass
from pathlib import Path

#: Bump whenever the snapshot payload layout changes incompatibly.
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """A snapshot cannot be applied: wrong version or mismatched run inputs."""


@dataclass
class PipelineSnapshot:
    """One checkpoint of a pipeline's mutable state (see module docstring).

    Attributes:
        state: Deep-copied attribute dictionary (internal aliasing intact).
        config_digest: :meth:`MachineConfig.digest` of the source pipeline.
        trace_length: Dynamic instruction count of the source trace.
        collect_timing: Whether the source run collected timing records.
        cycle: Simulated cycle count at capture time (informational).
        committed: Instructions retired at capture time (informational).
        version: :data:`SNAPSHOT_VERSION` at capture time.
        record_stats: Whether the source run recorded occupancy histograms
            (the histograms themselves travel inside ``state``).
        timeline_stride: The source run's timeline sampling stride
            (0 = no timeline recorder).
    """

    state: dict
    config_digest: str
    trace_length: int
    collect_timing: bool
    cycle: int
    committed: int
    version: int = SNAPSHOT_VERSION
    record_stats: bool = False
    timeline_stride: int = 0

    @property
    def finished(self) -> bool:
        """Whether the captured run had already retired every instruction."""
        return self.committed >= self.trace_length

    def validate_for(self, pipeline) -> None:
        """Raise :class:`SnapshotError` unless ``pipeline`` matches this
        snapshot's run inputs (config digest, trace length, timing mode)."""
        if self.version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {self.version} != supported {SNAPSHOT_VERSION}"
            )
        digest = pipeline.config.digest()
        if self.config_digest != digest:
            raise SnapshotError(
                f"snapshot was taken under machine config {self.config_digest[:12]}…, "
                f"pipeline has {digest[:12]}…"
            )
        if self.trace_length != pipeline._trace_length:
            raise SnapshotError(
                f"snapshot covers a {self.trace_length}-instruction trace, "
                f"pipeline has {pipeline._trace_length}"
            )
        if self.collect_timing != pipeline.collect_timing:
            raise SnapshotError(
                f"snapshot collect_timing={self.collect_timing}, "
                f"pipeline collect_timing={pipeline.collect_timing}"
            )
        # Observability modes must match too (getattr: snapshots pickled
        # before these fields existed read as the off defaults).
        record_stats = getattr(self, "record_stats", False)
        if record_stats != pipeline.record_stats:
            raise SnapshotError(
                f"snapshot record_stats={record_stats}, "
                f"pipeline record_stats={pipeline.record_stats}"
            )
        timeline_stride = getattr(self, "timeline_stride", 0)
        if timeline_stride != pipeline.timeline_stride:
            raise SnapshotError(
                f"snapshot timeline_stride={timeline_stride}, "
                f"pipeline timeline_stride={pipeline.timeline_stride}"
            )

    def copy_state(self) -> dict:
        """A fresh deep copy of the state (so one snapshot restores many times)."""
        return copy.deepcopy(self.state)

    # ------------------------------------------------------------------
    # Disk checkpoints
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Pickle the snapshot to ``path`` atomically (write + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + ".tmp")
        with temp.open("wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temp.replace(path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "PipelineSnapshot":
        """Inverse of :meth:`save` (raises :class:`SnapshotError` on junk)."""
        try:
            with Path(path).open("rb") as handle:
                snapshot = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as error:
            raise SnapshotError(f"cannot load checkpoint {path}: {error}") from error
        if not isinstance(snapshot, cls):
            raise SnapshotError(f"checkpoint {path} holds {type(snapshot).__name__}, "
                                f"not a PipelineSnapshot")
        return snapshot
