"""Register renaming: shared data structures and the conventional renamer.

The conventional (RENO-less) renamer is a MIPS R10000-style map table plus an
explicit free list.  :class:`repro.core.renamer.RenoRenamer` implements the
same :class:`Renamer` interface, adding physical-register sharing, extended
``[p:d]`` mappings, and the integration table.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.functional.trace import DynamicInstruction
from repro.isa.registers import NUM_LOGICAL_REGS


@dataclass(slots=True)
class SourceOperand:
    """A renamed source operand: a physical register plus a displacement.

    In the conventional pipeline the displacement is always zero.  Under
    RENO_CF the map table attaches a displacement, and the consumer's
    functional unit adds it (operation fusion).

    Source operands are immutable in practice and freely shared between
    rename results (the RENO renamer reuses its map-table ``Mapping``
    objects directly — anything with ``preg``/``disp`` attributes
    qualifies); never mutate one in place.
    """

    preg: int
    disp: int = 0


@dataclass(slots=True)
class RenameResult:
    """Everything the pipeline needs to know about one renamed instruction.

    Attributes:
        sources: Renamed source operands (order follows the instruction's
            ``rs1``/``rs2`` fields).
        dest_preg: Physical register the destination maps to (None when the
            instruction has no destination).  For eliminated instructions this
            is a *shared* register, not a new allocation.
        dest_disp: Displacement attached to the destination mapping (RENO_CF).
        prev_dest_preg: The physical register previously mapped to the
            destination logical register; released when this instruction
            commits.
        allocated: True if a fresh physical register was allocated.
        eliminated: True if RENO collapsed this instruction out of the
            execution stream (no issue-queue entry, no execution).
        elim_kind: Which optimization collapsed it: ``"move"``, ``"cf"``,
            ``"cse"`` or ``"ra"``.
        needs_reexecution: True for integration-eliminated loads which must
            re-execute through the cache retirement port before retiring.
        fusion_extra_latency: Extra execute cycles charged because a fused
            operand (non-zero displacement) feeds a unit that cannot absorb
            the extra addition for free.
    """

    sources: list[SourceOperand] = field(default_factory=list)
    dest_preg: int | None = None
    dest_disp: int = 0
    prev_dest_preg: int | None = None
    allocated: bool = False
    eliminated: bool = False
    elim_kind: str | None = None
    needs_reexecution: bool = False
    fusion_extra_latency: int = 0


class Renamer:
    """Interface shared by the conventional renamer and the RENO renamer.

    The pipeline renames one group per cycle by calling :meth:`begin_group`,
    then :meth:`rename_next` once per instruction (stopping early on stalls),
    and finally :meth:`end_group`.  Grouping matters because RENO restricts
    which *dependent* instructions may be eliminated in the same cycle.
    """

    def free_register_count(self) -> int:
        """Number of destination registers that can still be allocated."""
        raise NotImplementedError

    def begin_group(self) -> None:
        """Start renaming a new same-cycle group."""

    def rename_next(self, dyn: DynamicInstruction, op: tuple | None = None) -> RenameResult | None:
        """Rename the next instruction of the current group.

        ``op`` is the instruction's decoded-op tuple
        (:func:`repro.isa.instruction.decode_op`); the pipeline passes it so
        implementations can skip ``Instruction`` attribute lookups, and
        implementations must derive it themselves when omitted.

        Returns None (with no side effects) when no physical register is
        available for the instruction's destination; the pipeline then stalls
        and retries next cycle.
        """
        raise NotImplementedError

    def end_group(self) -> None:
        """Finish the current group."""

    def rename_group(self, group: list[DynamicInstruction]) -> list[RenameResult]:
        """Convenience wrapper: rename a whole group at once (used in tests)."""
        self.begin_group()
        results = []
        for dyn in group:
            result = self.rename_next(dyn)
            if result is None:
                raise RuntimeError("out of physical registers while renaming a group")
            results.append(result)
        self.end_group()
        return results

    def commit(self, result: RenameResult) -> None:
        """Release the previous mapping of the committed instruction."""
        raise NotImplementedError

    def mapping_snapshot(self) -> list[tuple[int, int]]:
        """Current logical → (physical, displacement) map (for tests/debug)."""
        raise NotImplementedError


class BaselineRenamer(Renamer):
    """Conventional R10000-style renaming: map table + free list, no sharing."""

    def __init__(self, num_physical_regs: int):
        if num_physical_regs <= NUM_LOGICAL_REGS:
            raise ValueError("need more physical than logical registers")
        self.num_physical_regs = num_physical_regs
        self.map_table: list[int] = list(range(NUM_LOGICAL_REGS))
        self.free_list: deque[int] = deque(range(NUM_LOGICAL_REGS, num_physical_regs))
        self.allocations = 0
        # Zero-displacement operands are immutable, so one shared instance
        # per physical register serves every rename (no per-instruction
        # allocation).
        self._operand_cache = [SourceOperand(preg) for preg in range(num_physical_regs)]

    # ------------------------------------------------------------------

    def free_register_count(self) -> int:
        """Registers left on the free list."""
        return len(self.free_list)

    def rename_next(self, dyn: DynamicInstruction, op: tuple | None = None) -> RenameResult | None:
        """Map sources, allocate a fresh destination register (None = stall).

        The pipeline normally inlines this logic over the in-flight window
        arrays (see ``Pipeline._run_cycles``); this method serves unit tests
        and the scheduler-equivalence reference path.  ``op`` is accepted for
        interface compatibility and unused.
        """
        instruction = dyn.instruction
        dest = instruction.dest_register
        if dest is not None and not self.free_list:
            return None
        operand_cache = self._operand_cache
        map_table = self.map_table
        sources = [
            operand_cache[map_table[logical]]
            for logical in instruction._sources   # precomputed source_registers()
        ]
        result = RenameResult(sources)
        if dest is not None:
            new_preg = self.free_list.popleft()
            self.allocations += 1
            result.dest_preg = new_preg
            result.prev_dest_preg = self.map_table[dest]
            result.allocated = True
            self.map_table[dest] = new_preg
        return result

    def commit(self, result: RenameResult) -> None:
        """Free the previous mapping of the committed instruction."""
        if result.prev_dest_preg is not None:
            self.free_list.append(result.prev_dest_preg)

    def mapping_snapshot(self) -> list[tuple[int, int]]:
        """Current logical -> (physical, 0) map (displacements are always 0)."""
        return [(preg, 0) for preg in self.map_table]
