"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.observe import OccupancyStats


@dataclass(slots=True)
class SimStats:
    """Counters accumulated by one timing-simulation run.

    The elimination counters mirror the categories of Figure 8: moves
    eliminated by RENO_ME, register-immediate additions folded by RENO_CF,
    and loads (plus any other ops) eliminated by RENO_CSE+RA.

    ``occupancy`` is populated only when the run recorded observability
    data (``record_stats=True``); see :mod:`repro.uarch.observe`.
    """

    # Progress.
    cycles: int = 0
    committed: int = 0

    # Eliminations (committed instructions only).
    eliminated_moves: int = 0
    eliminated_folds: int = 0
    eliminated_cse: int = 0
    eliminated_ra: int = 0
    reexecuted_loads: int = 0
    integration_value_mismatches: int = 0

    # Renaming / resources.
    pregs_allocated: int = 0
    max_pregs_in_use: int = 0
    rename_stall_cycles: int = 0
    rob_stall_cycles: int = 0
    iq_stall_cycles: int = 0
    lsq_stall_cycles: int = 0

    # Front end.
    fetched: int = 0
    branch_mispredictions: int = 0
    btb_misses: int = 0
    ras_mispredictions: int = 0
    fetch_stall_cycles: int = 0
    icache_misses: int = 0

    # Memory system.
    dcache_accesses: int = 0
    dcache_misses: int = 0
    l2_misses: int = 0
    store_forwards: int = 0
    memory_order_violations: int = 0
    load_replays: int = 0

    # Execution.
    issued: int = 0
    fused_operations: int = 0
    fusion_penalty_cycles: int = 0

    # Integration table.
    it_lookups: int = 0
    it_hits: int = 0
    it_insertions: int = 0

    # Observability (None unless the run recorded occupancy histograms).
    occupancy: OccupancyStats | None = None

    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (eliminated instructions count:
        they still retire architecturally)."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def total_eliminated(self) -> int:
        """All instructions collapsed at rename, any kind."""
        return (self.eliminated_moves + self.eliminated_folds
                + self.eliminated_cse + self.eliminated_ra)

    @property
    def elimination_rate(self) -> float:
        """Fraction of committed instructions RENO removed from execution."""
        return self.total_eliminated / self.committed if self.committed else 0.0

    @property
    def move_elimination_rate(self) -> float:
        """RENO_ME eliminations per committed instruction."""
        return self.eliminated_moves / self.committed if self.committed else 0.0

    @property
    def fold_rate(self) -> float:
        """RENO_CF folds per committed instruction."""
        return self.eliminated_folds / self.committed if self.committed else 0.0

    @property
    def cse_ra_rate(self) -> float:
        """RENO_CSE+RA integrations per committed instruction."""
        return (self.eliminated_cse + self.eliminated_ra) / self.committed if self.committed else 0.0

    @property
    def dcache_miss_rate(self) -> float:
        """L1D misses per access (0.0 with no accesses)."""
        return self.dcache_misses / self.dcache_accesses if self.dcache_accesses else 0.0

    @property
    def it_hit_rate(self) -> float:
        """Integration-table hits per lookup (0.0 with no lookups)."""
        return self.it_hits / self.it_lookups if self.it_lookups else 0.0

    def speedup_over(self, baseline: "SimStats") -> float:
        """Relative performance versus a baseline run of the same workload."""
        if self.cycles == 0 or baseline.cycles == 0:
            return 1.0
        return baseline.cycles / self.cycles
