"""The cycle-level out-of-order pipeline.

The pipeline is trace-driven: it consumes the dynamic instruction stream the
functional simulator produced, models all timing (front end, renaming,
scheduling, execution, memory system, commit) and *recomputes every value* on
the physical register file.  Values are checked against the architectural
trace at commit, which is how RENO transformations are verified end to end.

Modelling notes (also summarised in DESIGN.md):

* Wrong-path instructions are not injected; a branch misprediction stalls the
  front end until the branch resolves plus the front-end refill depth.
* The wakeup/select loop latency is modelled through the producer readiness
  timestamp: a dependent may issue ``max(latency, scheduler_latency)`` cycles
  after its producer.
* Scheduling is event-driven (see :mod:`repro.uarch.scheduler`): dispatch
  counts each instruction's unavailable operands, every physical-register
  write is reported to the issue queue via ``IssueQueue.wakeup`` (the only
  path that decrements those counts), and the select loop visits only
  instructions whose count reached zero, kept oldest-first in per-class
  ready lists.  Loads additionally pass a memory-ordering check
  (:meth:`Pipeline._load_can_issue`) at select time.
* Memory-ordering violations are detected when a load would consume stale
  data (an older overlapping store has not executed); the load is held back
  and charged a squash penalty, and the store-set predictor is trained.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field

from repro.functional.memory import Memory
from repro.functional.trace import DynamicInstruction
from repro.isa.opcodes import OpClass
from repro.isa.program import DATA_BASE, STACK_BASE, Program
from repro.isa.registers import NUM_LOGICAL_REGS, RegisterNames
from repro.isa.semantics import MASK64, alu_eval, branch_taken, mask64, sign_extend
from repro.uarch.branch import BranchUnit
from repro.uarch.cache import CacheHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.execute import effective_address, store_value
from repro.uarch.inflight import InFlightInst, Stage, TimingRecord, make_timing_record
from repro.uarch.lsq import LoadQueue, StoreQueue, StoreQueueEntry
from repro.uarch.regfile import NOT_READY, PhysicalRegisterFile
from repro.uarch.rename import BaselineRenamer, Renamer
from repro.uarch.rob import ReorderBuffer
from repro.uarch.scheduler import IssueQueue
from repro.uarch.stats import SimStats
from repro.uarch.storesets import StoreSets

#: Sentinel for "front end stalled until further notice" (mispredicted branch
#: still unresolved).
_STALLED = 1 << 60

#: Dispatch-time hot aliases: opcode classes that never execute, and the two
#: in-flight stages assigned during insertion.
_NO_EXECUTE_CLASSES = (OpClass.NOP, OpClass.HALT)
_COMPLETED = Stage.COMPLETED
_WAITING = Stage.WAITING


class CommitMismatchError(Exception):
    """Raised when an executed value disagrees with the architectural trace.

    This is the end-to-end correctness check for renaming (and for RENO's
    register-sharing transformations).  It should never fire.
    """


@dataclass
class SimResult:
    """Outcome of one timing simulation."""

    stats: SimStats
    config: MachineConfig
    final_registers: list[int] = field(default_factory=list)
    timing_records: list[TimingRecord] | None = None

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.stats.ipc

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.stats.cycles


class Pipeline:
    """A dynamically scheduled superscalar processor model."""

    def __init__(
        self,
        program: Program,
        trace: list[DynamicInstruction],
        config: MachineConfig | None = None,
        renamer: Renamer | None = None,
        collect_timing: bool = False,
    ):
        """Create a pipeline for one program run.

        Args:
            program: The assembled program (provides initial memory).
            trace: The dynamic instruction trace from the functional simulator.
            config: Machine parameters; defaults to the paper's 4-wide core.
            renamer: The renaming implementation; defaults to the conventional
                renamer.  Pass a :class:`repro.core.renamer.RenoRenamer` to
                enable RENO.
            collect_timing: If True, keep a per-retired-instruction timing
                record for critical-path analysis (costs memory).
        """
        self.config = config or MachineConfig.default_4wide()
        self.config.validate()
        self.program = program
        self.trace = trace
        self.collect_timing = collect_timing

        initial_regs = [0] * NUM_LOGICAL_REGS
        initial_regs[RegisterNames.SP] = STACK_BASE
        initial_regs[RegisterNames.GP] = DATA_BASE
        self.prf = PhysicalRegisterFile(self.config.num_physical_regs, initial_regs)
        # Hot-loop aliases: the value/readiness arrays are stable attributes
        # of the register file, and the scheduler latency never changes
        # during a run.
        self._prf_values = self.prf.values
        self._prf_ready = self.prf.ready_cycle
        self._sched_latency = self.config.scheduler_latency
        self._commit_width = self.config.commit_width
        self._retire_dcache_ports = self.config.retire_dcache_ports
        self._rename_width = self.config.rename_width
        self._taken_branch_limit = self.config.taken_branches_per_fetch
        self._fetch_block_bytes = self.config.l1i.block_bytes
        self._front_end_depth = self.config.front_end_depth
        self.renamer: Renamer = renamer or BaselineRenamer(self.config.num_physical_regs)

        self.branch_unit = BranchUnit(self.config)
        self.caches = CacheHierarchy(self.config)
        self.store_sets = StoreSets(self.config.store_set_entries)
        self.issue_queue = IssueQueue(self.config)
        # Producer-side wakeup aliases: most register writes have no
        # registered waiters, so the membership test saves the call.
        self._iq_waiters = self.issue_queue._waiters
        self._iq_wakeup = self.issue_queue.wakeup
        self.rob = ReorderBuffer(self.config.rob_size)
        self.store_queue = StoreQueue(self.config.store_queue_size)
        self.load_queue = LoadQueue(self.config.load_queue_size)
        self.memory = Memory(program.initial_memory)

        self.stats = SimStats()
        self.timing_records: list[TimingRecord] = []

        # Front-end state.
        self._fetch_index = 0
        self._fetch_resume_cycle = 0
        self._waiting_branch: InFlightInst | None = None
        self._last_fetch_block = -1

        # preg -> sequence number of the instruction producing it (for the
        # critical-path model).
        self._preg_writer: dict[int, int] = {}
        self._producers: dict[int, tuple[int, ...]] = {}

        # Loads currently being held back because of an ordering violation.
        self._violated_loads: set[int] = set()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Simulate until every trace instruction has retired.

        The loop is event-driven: after the three pipeline phases run for a
        cycle, it asks the issue queue when the next wakeup is due and — if
        nothing is ready, the ROB head is not yet committable and the front
        end is stalled (or out of trace) — jumps the cycle counter straight
        to the next event instead of spinning through guaranteed no-op
        cycles.  Skipped stretches are pure no-ops except for the fetch-stall
        counter, which is credited in bulk, so all statistics are identical
        to the cycle-by-cycle loop's.
        """
        # The loop allocates hundreds of thousands of short-lived,
        # acyclic objects; generational GC only burns time re-scanning
        # them.  Reference counting reclaims everything, so pause GC for
        # the duration (restoring the caller's setting afterwards).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run_cycles()
        finally:
            if gc_was_enabled:
                gc.enable()
        self._merge_component_stats()
        return SimResult(
            stats=self.stats,
            config=self.config,
            final_registers=self._final_registers(),
            timing_records=self.timing_records if self.collect_timing else None,
        )

    def _run_cycles(self) -> None:
        """The cycle loop proper (see :meth:`run` for the event-driven model)."""
        cycle = 0
        total = len(self.trace)
        # The cycle loop dominates wall-clock time; bind everything it
        # touches once instead of re-resolving attributes every cycle.
        stats = self.stats
        max_cycles = self.config.max_cycles
        commit = self._commit
        dispatch = self._dispatch
        issue_queue = self.issue_queue
        select = issue_queue.select
        load_ready = self._load_can_issue
        execute = self._execute
        wakeup_heap = issue_queue._wakeup_heap    # list identity is stable
        rob_entries = self.rob._entries           # deque identity is stable
        completed = Stage.COMPLETED
        while stats.committed < total:
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({stats.committed}/{total} instructions retired)"
                )
            # Commit, guarded: skip the call when the head cannot possibly
            # commit (empty ROB or completion still in the future; a WAITING
            # head carries complete_cycle == -1 and is rejected inside).
            if rob_entries and rob_entries[0].complete_cycle < cycle:
                commit(cycle)
            # Issue (inlined): operand readiness is guaranteed by the wakeup
            # model; the callback covers load memory-ordering conditions and
            # select only applies it to load-class entries.  Skip the call
            # outright when nothing is ready and no wakeup is due.
            if issue_queue._ready_total or (wakeup_heap and wakeup_heap[0] <= cycle):
                selected = select(cycle, load_ready)
                if selected:
                    for inst in selected:
                        execute(inst, cycle)
                    stats.issued += len(selected)
            dispatch(cycle)
            cycle += 1

            # Event-driven fast-forward: find the earliest cycle at which any
            # phase can act again and jump there.
            if stats.committed >= total:
                continue                      # simulation just finished
            if issue_queue._ready_total:
                continue                      # an issue may happen next cycle
            idle = wakeup_heap[0] if wakeup_heap else NOT_READY
            if idle <= cycle:
                continue
            target = idle
            fetching = self._fetch_index < total
            if fetching:
                resume = self._fetch_resume_cycle
                if resume <= cycle:
                    continue                  # front end is active next cycle
                if resume < target:
                    target = resume
            if rob_entries:
                head = rob_entries[0]
                if head.stage == completed:
                    head_ready = head.complete_cycle + 1
                    if head_ready < target:
                        target = head_ready
                # A WAITING head cannot commit until it issues, and no issue
                # can happen before `idle` — already covered.
            if target <= cycle:
                continue
            if target > max_cycles:
                target = max_cycles           # let the runaway guard fire
            if fetching:
                # Exactly what the skipped _dispatch calls would have counted.
                stats.fetch_stall_cycles += target - cycle
            cycle = target
        self.stats.cycles = cycle

    def _merge_component_stats(self) -> None:
        stats = self.stats
        stats.branch_mispredictions = self.branch_unit.mispredictions
        stats.btb_misses = self.branch_unit.btb_misses
        stats.ras_mispredictions = self.branch_unit.ras_mispredictions
        stats.icache_misses = self.caches.l1i.misses
        stats.dcache_accesses = self.caches.l1d.accesses
        stats.dcache_misses = self.caches.l1d.misses
        stats.l2_misses = self.caches.l2.misses
        extra_stats = getattr(self.renamer, "stats", None)
        if extra_stats:
            stats.it_lookups = extra_stats.get("it_lookups", 0)
            stats.it_hits = extra_stats.get("it_hits", 0)
            stats.it_insertions = extra_stats.get("it_insertions", 0)
            stats.integration_value_mismatches = extra_stats.get("it_value_mismatches", 0)

    def _final_registers(self) -> list[int]:
        """Architectural register values reconstructed from the map table."""
        values = []
        for preg, disp in self.renamer.mapping_snapshot():
            values.append(mask64(self.prf.read(preg) + disp))
        return values

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        rob_entries = self.rob._entries       # deque identity is stable
        if not rob_entries:
            return
        head = rob_entries[0]
        # Fast path: the head is not committable this cycle (the common case
        # on every in-flight-bound cycle), so skip the budget bookkeeping.
        # Between phases an in-flight stage is only ever WAITING or
        # COMPLETED (execution completes within the issue phase).
        if head.complete_cycle >= cycle or head.stage == Stage.WAITING:
            return
        budget = self._commit_width
        dcache_ports = self._retire_dcache_ports
        stats = self.stats
        renamer_commit = self.renamer.commit
        collect_timing = self.collect_timing
        pop_head = rob_entries.popleft
        lq_discard = self.load_queue.entries.discard
        committed = 0
        while budget > 0:
            if not rob_entries:
                break
            head = rob_entries[0]
            if head.stage == Stage.WAITING:
                break
            if head.complete_cycle >= cycle:
                break
            dyn = head.dyn
            spec = dyn.instruction.spec
            rename = head.rename
            if spec.is_store:
                if dcache_ports == 0:
                    break
                self._commit_store(head, cycle)
                dcache_ports -= 1
            elif rename.eliminated and rename.needs_reexecution:
                if dcache_ports == 0:
                    break
                self._reexecute_load(head, cycle)
                dcache_ports -= 1
            if dyn.result is not None and dyn.instruction.dest_register is not None:
                # Inlined fast path of _check_value: non-eliminated results
                # compare directly; the method re-derives the value and
                # raises with full context on a mismatch (or for eliminated
                # instructions, whose value lives in a shared register).
                if rename.eliminated or head.value != dyn.result:
                    self._check_value(head)
            # Retirement, inlined: this runs once per committed instruction.
            head.retire_cycle = cycle
            head.stage = Stage.RETIRED
            pop_head()
            if spec.is_load:
                lq_discard(dyn.seq)
            renamer_commit(rename)
            committed += 1
            if rename.eliminated:
                kind = rename.elim_kind
                if kind == "move":
                    stats.eliminated_moves += 1
                elif kind == "cf":
                    stats.eliminated_folds += 1
                elif kind == "cse":
                    stats.eliminated_cse += 1
                elif kind == "ra":
                    stats.eliminated_ra += 1
            if collect_timing:
                producers = self._producers.pop(head.seq, ())
                self.timing_records.append(make_timing_record(head, producers))
            budget -= 1
        stats.committed += committed

    def _commit_store(self, inst: InFlightInst, cycle: int) -> None:
        size = inst.dyn.instruction.spec.mem_bytes
        self.memory.write(inst.eff_addr, size, inst.value)
        self.caches.access_data_write(inst.eff_addr, cycle)
        self.store_queue.pop_committed(inst.seq)

    def _reexecute_load(self, inst: InFlightInst, cycle: int) -> None:
        """Re-execute an integration-eliminated load through the retire port."""
        dyn = inst.dyn
        spec = dyn.instruction.spec
        raw = self.memory.read(dyn.eff_addr, spec.mem_bytes)
        value = sign_extend(raw, 8 * spec.mem_bytes) if spec.mem_signed else raw
        shared = mask64(self.prf.read(inst.rename.dest_preg) + inst.rename.dest_disp)
        if value != shared:
            self.stats.integration_value_mismatches += 1
        self.stats.reexecuted_loads += 1
        self.caches.access_data_read(dyn.eff_addr, cycle)

    def _check_value(self, inst: InFlightInst) -> None:
        dyn = inst.dyn
        if dyn.instruction.dest_register is None or dyn.result is None:
            return
        if inst.eliminated:
            produced = mask64(self.prf.read(inst.rename.dest_preg) + inst.rename.dest_disp)
        else:
            produced = inst.value
        if produced != dyn.result:
            raise CommitMismatchError(
                f"instruction #{dyn.seq} {dyn.instruction} produced {produced:#x}, "
                f"architectural result is {dyn.result:#x} "
                f"(eliminated={inst.eliminated}, kind={inst.rename.elim_kind})"
            )

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        """One select round (the cycle loop inlines this; kept for tests)."""
        selected = self.issue_queue.select(cycle, self._load_can_issue)
        for inst in selected:
            self._execute(inst, cycle)
        self.stats.issued += len(selected)

    def _load_can_issue(self, inst: InFlightInst, cycle: int) -> bool:
        dyn = inst.dyn
        # Store-set predicted dependence: wait until every older in-flight
        # store belonging to the load's store set has executed.
        load_set = self.store_sets.set_for(dyn.pc)
        if load_set is not None:
            for entry in self.store_queue.entries:
                if (entry.seq < dyn.seq and not entry.executed
                        and self.store_sets.set_for(entry.pc) == load_set):
                    return False
        spec = dyn.instruction.spec
        check = self.store_queue.check_load(dyn.seq, dyn.eff_addr, spec.mem_bytes)
        if check.action == "violation":
            # The load would consume stale data.  Model the squash: hold the
            # load until the conflicting store executes, charge the penalty
            # once, and train the store-set predictor.
            if dyn.seq not in self._violated_loads:
                self._violated_loads.add(dyn.seq)
                self.stats.memory_order_violations += 1
                self.stats.load_replays += 1
                inst.replayed = True
                self.store_sets.train_violation(dyn.pc, check.store.pc)
            return False
        if check.action == "wait_store":
            return False
        return True

    def _execute(self, inst: InFlightInst, cycle: int) -> None:
        dyn = inst.dyn
        rename = inst.rename
        spec = dyn.instruction.spec
        stats = self.stats
        # Inlined operand materialisation (operand_values) on the raw value
        # array, unrolled for the 0/1/2-source cases: the fused-operand
        # addition is folded into the same pass.
        values = self._prf_values
        sources = rename.sources
        fused = False
        if not sources:
            operands = []
        elif len(sources) == 1:
            source = sources[0]
            value = values[source.preg]
            if source.disp:
                value = (value + source.disp) & MASK64
                fused = True
            operands = [value]
        else:
            first, second = sources
            value = values[first.preg]
            if first.disp:
                value = (value + first.disp) & MASK64
                fused = True
            value2 = values[second.preg]
            if second.disp:
                value2 = (value2 + second.disp) & MASK64
                fused = True
            operands = [value, value2]
        inst.issue_cycle = cycle
        if fused:
            stats.fused_operations += 1
            stats.fusion_penalty_cycles += rename.fusion_extra_latency

        latency = spec.latency + rename.fusion_extra_latency
        op_class = spec.op_class

        if op_class is OpClass.LOAD:
            self._execute_load(inst, operands, cycle, latency)
        elif op_class is OpClass.STORE:
            self._execute_store(inst, operands, cycle, latency)
        else:
            inst.complete_cycle = cycle + latency
            if spec.is_cond_branch:
                computed_taken = branch_taken(dyn.instruction.opcode, operands[0])
                if computed_taken != dyn.taken:
                    raise CommitMismatchError(
                        f"branch #{dyn.seq} computed direction {computed_taken}, "
                        f"architectural direction {dyn.taken}"
                    )
            elif dyn.instruction.dest_register is not None:
                # Inlined compute_alu_value (one call per ALU instruction).
                if op_class is OpClass.CALL:
                    value = (dyn.pc + 4) & MASK64
                else:
                    value = alu_eval(dyn.instruction.opcode,
                                     operands[0] if operands else 0,
                                     operands[1] if len(operands) > 1 else 0,
                                     dyn.instruction.imm)
                inst.value = value
                if rename.allocated:
                    sched_latency = self._sched_latency
                    ready = cycle + (latency if latency > sched_latency else sched_latency)
                    dest_preg = rename.dest_preg
                    # Inlined PhysicalRegisterFile.write + scheduler wakeup.
                    values[dest_preg] = value
                    self._prf_ready[dest_preg] = ready
                    if dest_preg in self._iq_waiters:
                        self._iq_wakeup(dest_preg, ready)
        inst.stage = Stage.COMPLETED
        if inst.mispredicted_branch and self._waiting_branch is inst:
            self._fetch_resume_cycle = inst.complete_cycle + self._front_end_depth
            self._waiting_branch = None

    def _execute_load(self, inst: InFlightInst, operands: list[int], cycle: int, latency: int) -> None:
        dyn = inst.dyn
        spec = dyn.instruction.spec
        address = effective_address(dyn, operands)
        if address != dyn.eff_addr:
            raise CommitMismatchError(
                f"load #{dyn.seq} computed address {address:#x}, "
                f"architectural address {dyn.eff_addr:#x}"
            )
        inst.eff_addr = address
        check = self.store_queue.check_load(dyn.seq, address, spec.mem_bytes)
        if check.action == "forward":
            raw = check.value
            dcache_latency = self.config.l1d.latency
            self.stats.store_forwards += 1
        else:
            raw = self.memory.read(address, spec.mem_bytes)
            access = self.caches.access_data_read(address, cycle)
            dcache_latency = access.latency
        value = sign_extend(raw, 8 * spec.mem_bytes) if spec.mem_signed else raw
        if value != dyn.result:
            # A store the model believed non-conflicting actually overlapped
            # (should be prevented by the violation check); fall back to the
            # architectural value and account for it as a replay.
            self.stats.memory_order_violations += 1
            self.stats.load_replays += 1
            value = dyn.result
            dcache_latency += self.config.memory_violation_penalty
        if inst.replayed:
            dcache_latency += self.config.memory_violation_penalty
        inst.value = value
        inst.dcache_latency = dcache_latency
        total_latency = latency + dcache_latency
        inst.latency = total_latency
        inst.complete_cycle = cycle + total_latency
        if inst.rename.allocated:
            sched_latency = self._sched_latency
            ready = cycle + (total_latency if total_latency > sched_latency else sched_latency)
            dest_preg = inst.rename.dest_preg
            # Inlined PhysicalRegisterFile.write + scheduler wakeup.
            self._prf_values[dest_preg] = value
            self._prf_ready[dest_preg] = ready
            if dest_preg in self._iq_waiters:
                self._iq_wakeup(dest_preg, ready)

    def _execute_store(self, inst: InFlightInst, operands: list[int], cycle: int, latency: int) -> None:
        dyn = inst.dyn
        address = effective_address(dyn, operands)
        if address != dyn.eff_addr:
            raise CommitMismatchError(
                f"store #{dyn.seq} computed address {address:#x}, "
                f"architectural address {dyn.eff_addr:#x}"
            )
        value = store_value(dyn, operands)
        inst.eff_addr = address
        inst.value = value
        inst.complete_cycle = cycle + latency
        entry = self.store_queue.find(dyn.seq)
        entry.addr = address
        entry.value = value
        entry.executed = True
        entry.complete_cycle = inst.complete_cycle

    # ------------------------------------------------------------------
    # Fetch + rename + dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        trace = self.trace
        trace_length = len(trace)
        fetch_index = self._fetch_index
        if fetch_index >= trace_length:
            return
        stats = self.stats
        if cycle < self._fetch_resume_cycle:
            stats.fetch_stall_cycles += 1
            return

        rename_width = self._rename_width
        taken_branch_limit = self._taken_branch_limit
        fetch_block_bytes = self._fetch_block_bytes
        renamer = self.renamer
        # Capacity checks run per candidate instruction; compare container
        # lengths directly instead of paying a property call for each.
        rob_entries = self.rob._entries
        issue_queue = self.issue_queue
        sq_entries = self.store_queue.entries
        lq_entries = self.load_queue.entries
        rob_room = self.rob.capacity - len(rob_entries)
        iq_room = issue_queue.capacity - issue_queue._count
        sq_room = self.store_queue.capacity - len(sq_entries)
        lq_room = self.load_queue.capacity - len(lq_entries)
        prf_ready = self._prf_ready
        preg_writer = self._preg_writer
        collect_timing = self.collect_timing
        iq_add = issue_queue.add

        last_fetch_block = self._last_fetch_block
        taken_branches = 0
        dispatched = 0
        pregs_allocated = 0
        renamer.begin_group()
        while dispatched < rename_width and fetch_index < trace_length:
            dyn = trace[fetch_index]
            instruction = dyn.instruction
            spec = instruction.spec

            # Structural stalls (checked conservatively before renaming;
            # the room counters mirror the containers' free space).
            if not rob_room:
                stats.rob_stall_cycles += 1
                break
            if not iq_room:
                stats.iq_stall_cycles += 1
                break
            if spec.is_store:
                if not sq_room:
                    stats.lsq_stall_cycles += 1
                    break
            elif spec.is_load and not lq_room:
                stats.lsq_stall_cycles += 1
                break

            # Instruction cache: one access per new block.
            block = dyn.pc // fetch_block_bytes
            if block != last_fetch_block:
                access = self.caches.access_instruction(dyn.pc, cycle)
                last_fetch_block = block
                self._last_fetch_block = block
                if not access.l1_hit:
                    self._fetch_resume_cycle = cycle + access.latency
                    break

            # Taken-branch fetch limit.
            is_taken_control = spec.is_control and dyn.taken is True
            if is_taken_control and taken_branches >= taken_branch_limit:
                break

            # Rename (may stall on physical registers).
            result = renamer.rename_next(dyn)
            if result is None:
                stats.rename_stall_cycles += 1
                break

            inst = InFlightInst(dyn, result, cycle)
            inst.latency = spec.latency
            if collect_timing:
                self._record_producers(inst)
            if result.allocated:
                prf_ready[result.dest_preg] = NOT_READY   # inlined mark_pending
                if collect_timing:
                    # The producer map only feeds timing records.
                    preg_writer[result.dest_preg] = dyn.seq
                pregs_allocated += 1

            if is_taken_control:
                taken_branches += 1

            # Branch prediction.
            stop_after = False
            if spec.is_control:
                outcome = self.branch_unit.process(dyn)
                if outcome.mispredicted and outcome.reason == "btb":
                    # Target unknown at fetch but computable at decode: a
                    # short front-end bubble, not a full misprediction.
                    self._fetch_resume_cycle = cycle + 2
                    stop_after = True
                elif outcome.mispredicted:
                    inst.mispredicted_branch = True
                    self._waiting_branch = inst
                    self._fetch_resume_cycle = _STALLED
                    stop_after = True

            # Insertion (inlined): place the instruction into the ROB and,
            # unless it was collapsed away, the IQ/LSQ.  Capacity was already
            # checked by the structural-stall logic above.
            rob_entries.append(inst)
            rob_room -= 1
            if result.eliminated or spec.op_class in _NO_EXECUTE_CLASSES:
                # Collapsed out of the execution core (or a NOP/HALT): no
                # issue-queue entry, no execution — immediately complete for
                # retirement purposes.
                inst.complete_cycle = cycle
                inst.stage = _COMPLETED
            else:
                if spec.is_store:
                    sq_entries.append(StoreQueueEntry(
                        dyn.seq, dyn.pc, spec.mem_bytes, dyn.eff_addr))
                    sq_room -= 1
                elif spec.is_load:
                    lq_entries.add(dyn.seq)
                    lq_room -= 1
                inst.stage = _WAITING
                iq_add(inst, cycle, prf_ready)
                iq_room -= 1
            fetch_index += 1
            dispatched += 1
            if stop_after:
                break
        self._fetch_index = fetch_index
        stats.fetched += dispatched
        stats.pregs_allocated += pregs_allocated
        renamer.end_group()

        in_use = self.config.num_physical_regs - self.renamer.free_register_count()
        if in_use > self.stats.max_pregs_in_use:
            self.stats.max_pregs_in_use = in_use

    def _record_producers(self, inst: InFlightInst) -> None:
        if not self.collect_timing:
            return
        producers = tuple(
            self._preg_writer.get(source.preg, -1) for source in inst.rename.sources
        )
        if inst.eliminated and inst.rename.dest_preg is not None:
            producers = producers + (self._preg_writer.get(inst.rename.dest_preg, -1),)
        self._producers[inst.seq] = producers

