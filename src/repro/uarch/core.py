"""The cycle-level out-of-order pipeline.

The pipeline is trace-driven: it consumes the dynamic instruction stream the
functional simulator produced, models all timing (front end, renaming,
scheduling, execution, memory system, commit) and *recomputes every value* on
the physical register file.  Values are checked against the architectural
trace at commit, which is how RENO transformations are verified end to end.

Modelling notes (also summarised in DESIGN.md):

* Wrong-path instructions are not injected; a branch misprediction stalls the
  front end until the branch resolves plus the front-end refill depth.
* The wakeup/select loop latency is modelled through the producer readiness
  timestamp: a dependent may issue ``max(latency, scheduler_latency)`` cycles
  after its producer.
* Memory-ordering violations are detected when a load would consume stale
  data (an older overlapping store has not executed); the load is held back
  and charged a squash penalty, and the store-set predictor is trained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.functional.memory import Memory
from repro.functional.trace import DynamicInstruction
from repro.isa.opcodes import OpClass
from repro.isa.program import DATA_BASE, STACK_BASE, Program
from repro.isa.registers import NUM_LOGICAL_REGS, RegisterNames
from repro.isa.semantics import MASK64, branch_taken, mask64, sign_extend
from repro.uarch.branch import BranchUnit
from repro.uarch.cache import CacheHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.execute import (
    compute_alu_value,
    effective_address,
    store_value,
)
from repro.uarch.inflight import InFlightInst, Stage, TimingRecord, make_timing_record
from repro.uarch.lsq import LoadQueue, StoreQueue, StoreQueueEntry
from repro.uarch.regfile import PhysicalRegisterFile
from repro.uarch.rename import BaselineRenamer, Renamer
from repro.uarch.rob import ReorderBuffer
from repro.uarch.scheduler import LOAD_CLASS, IssueQueue
from repro.uarch.stats import SimStats
from repro.uarch.storesets import StoreSets

#: Sentinel for "front end stalled until further notice" (mispredicted branch
#: still unresolved).
_STALLED = 1 << 60


class CommitMismatchError(Exception):
    """Raised when an executed value disagrees with the architectural trace.

    This is the end-to-end correctness check for renaming (and for RENO's
    register-sharing transformations).  It should never fire.
    """


@dataclass
class SimResult:
    """Outcome of one timing simulation."""

    stats: SimStats
    config: MachineConfig
    final_registers: list[int] = field(default_factory=list)
    timing_records: list[TimingRecord] | None = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class Pipeline:
    """A dynamically scheduled superscalar processor model."""

    def __init__(
        self,
        program: Program,
        trace: list[DynamicInstruction],
        config: MachineConfig | None = None,
        renamer: Renamer | None = None,
        collect_timing: bool = False,
    ):
        """Create a pipeline for one program run.

        Args:
            program: The assembled program (provides initial memory).
            trace: The dynamic instruction trace from the functional simulator.
            config: Machine parameters; defaults to the paper's 4-wide core.
            renamer: The renaming implementation; defaults to the conventional
                renamer.  Pass a :class:`repro.core.renamer.RenoRenamer` to
                enable RENO.
            collect_timing: If True, keep a per-retired-instruction timing
                record for critical-path analysis (costs memory).
        """
        self.config = config or MachineConfig.default_4wide()
        self.config.validate()
        self.program = program
        self.trace = trace
        self.collect_timing = collect_timing

        initial_regs = [0] * NUM_LOGICAL_REGS
        initial_regs[RegisterNames.SP] = STACK_BASE
        initial_regs[RegisterNames.GP] = DATA_BASE
        self.prf = PhysicalRegisterFile(self.config.num_physical_regs, initial_regs)
        self.renamer: Renamer = renamer or BaselineRenamer(self.config.num_physical_regs)

        self.branch_unit = BranchUnit(self.config)
        self.caches = CacheHierarchy(self.config)
        self.store_sets = StoreSets(self.config.store_set_entries)
        self.issue_queue = IssueQueue(self.config)
        self.rob = ReorderBuffer(self.config.rob_size)
        self.store_queue = StoreQueue(self.config.store_queue_size)
        self.load_queue = LoadQueue(self.config.load_queue_size)
        self.memory = Memory(program.initial_memory)

        self.stats = SimStats()
        self.timing_records: list[TimingRecord] = []

        # Front-end state.
        self._fetch_index = 0
        self._fetch_resume_cycle = 0
        self._waiting_branch: InFlightInst | None = None
        self._last_fetch_block = -1

        # preg -> sequence number of the instruction producing it (for the
        # critical-path model).
        self._preg_writer: dict[int, int] = {}
        self._producers: dict[int, tuple[int, ...]] = {}

        # Loads currently being held back because of an ordering violation.
        self._violated_loads: set[int] = set()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Simulate until every trace instruction has retired."""
        cycle = 0
        total = len(self.trace)
        # The cycle loop dominates wall-clock time; bind everything it
        # touches once instead of re-resolving attributes every cycle.
        stats = self.stats
        max_cycles = self.config.max_cycles
        commit = self._commit
        issue = self._issue
        dispatch = self._dispatch
        while stats.committed < total:
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({stats.committed}/{total} instructions retired)"
                )
            commit(cycle)
            issue(cycle)
            dispatch(cycle)
            cycle += 1
        self.stats.cycles = cycle
        self._merge_component_stats()
        return SimResult(
            stats=self.stats,
            config=self.config,
            final_registers=self._final_registers(),
            timing_records=self.timing_records if self.collect_timing else None,
        )

    def _merge_component_stats(self) -> None:
        stats = self.stats
        stats.branch_mispredictions = self.branch_unit.mispredictions
        stats.btb_misses = self.branch_unit.btb_misses
        stats.ras_mispredictions = self.branch_unit.ras_mispredictions
        stats.icache_misses = self.caches.l1i.misses
        stats.dcache_accesses = self.caches.l1d.accesses
        stats.dcache_misses = self.caches.l1d.misses
        stats.l2_misses = self.caches.l2.misses
        extra_stats = getattr(self.renamer, "stats", None)
        if extra_stats:
            stats.it_lookups = extra_stats.get("it_lookups", 0)
            stats.it_hits = extra_stats.get("it_hits", 0)
            stats.it_insertions = extra_stats.get("it_insertions", 0)
            stats.integration_value_mismatches = extra_stats.get("it_value_mismatches", 0)

    def _final_registers(self) -> list[int]:
        """Architectural register values reconstructed from the map table."""
        values = []
        for preg, disp in self.renamer.mapping_snapshot():
            values.append(mask64(self.prf.read(preg) + disp))
        return values

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        budget = self.config.commit_width
        dcache_ports = self.config.retire_dcache_ports
        rob_head = self.rob.head
        while budget > 0:
            head = rob_head()
            if head is None or head.stage == Stage.WAITING or head.stage == Stage.ISSUED:
                break
            if head.complete_cycle >= cycle:
                break
            if head.dyn.instruction.spec.is_store:
                if dcache_ports == 0:
                    break
                self._commit_store(head, cycle)
                dcache_ports -= 1
            elif head.rename.eliminated and head.rename.needs_reexecution:
                if dcache_ports == 0:
                    break
                self._reexecute_load(head, cycle)
                dcache_ports -= 1
            self._check_value(head)
            self._retire(head, cycle)
            budget -= 1

    def _commit_store(self, inst: InFlightInst, cycle: int) -> None:
        size = inst.dyn.instruction.spec.mem_bytes
        self.memory.write(inst.eff_addr, size, inst.value)
        self.caches.access_data_write(inst.eff_addr, cycle)
        self.store_queue.pop_committed(inst.seq)

    def _reexecute_load(self, inst: InFlightInst, cycle: int) -> None:
        """Re-execute an integration-eliminated load through the retire port."""
        dyn = inst.dyn
        spec = dyn.instruction.spec
        raw = self.memory.read(dyn.eff_addr, spec.mem_bytes)
        value = sign_extend(raw, 8 * spec.mem_bytes) if spec.mem_signed else raw
        shared = mask64(self.prf.read(inst.rename.dest_preg) + inst.rename.dest_disp)
        if value != shared:
            self.stats.integration_value_mismatches += 1
        self.stats.reexecuted_loads += 1
        self.caches.access_data_read(dyn.eff_addr, cycle)

    def _check_value(self, inst: InFlightInst) -> None:
        dyn = inst.dyn
        if dyn.instruction.dest_register is None or dyn.result is None:
            return
        if inst.eliminated:
            produced = mask64(self.prf.read(inst.rename.dest_preg) + inst.rename.dest_disp)
        else:
            produced = inst.value
        if produced != dyn.result:
            raise CommitMismatchError(
                f"instruction #{dyn.seq} {dyn.instruction} produced {produced:#x}, "
                f"architectural result is {dyn.result:#x} "
                f"(eliminated={inst.eliminated}, kind={inst.rename.elim_kind})"
            )

    def _retire(self, inst: InFlightInst, cycle: int) -> None:
        inst.retire_cycle = cycle
        inst.stage = Stage.RETIRED
        self.rob.pop_head()
        if inst.dyn.instruction.spec.is_load:
            self.load_queue.remove(inst.dyn.seq)
        self.renamer.commit(inst.rename)
        stats = self.stats
        stats.committed += 1
        if inst.rename.eliminated:
            kind = inst.rename.elim_kind
            if kind == "move":
                stats.eliminated_moves += 1
            elif kind == "cf":
                stats.eliminated_folds += 1
            elif kind == "cse":
                stats.eliminated_cse += 1
            elif kind == "ra":
                stats.eliminated_ra += 1
        if self.collect_timing:
            producers = self._producers.pop(inst.seq, ())
            self.timing_records.append(make_timing_record(inst, producers))

    # ------------------------------------------------------------------
    # Issue / execute
    # ------------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        selected = self.issue_queue.select(cycle, self._can_issue)
        for inst in selected:
            self._execute(inst, cycle)

    def _can_issue(self, inst: InFlightInst, cycle: int) -> bool:
        ready_cycle = self.prf.ready_cycle
        for source in inst.rename.sources:
            if ready_cycle[source.preg] > cycle:
                return False
        if inst.port_class == LOAD_CLASS:
            return self._load_can_issue(inst, cycle)
        return True

    def _load_can_issue(self, inst: InFlightInst, cycle: int) -> bool:
        dyn = inst.dyn
        # Store-set predicted dependence: wait until every older in-flight
        # store belonging to the load's store set has executed.
        load_set = self.store_sets.set_for(dyn.pc)
        if load_set is not None:
            for entry in self.store_queue.entries:
                if (entry.seq < dyn.seq and not entry.executed
                        and self.store_sets.set_for(entry.pc) == load_set):
                    return False
        spec = dyn.instruction.spec
        check = self.store_queue.check_load(dyn.seq, dyn.eff_addr, spec.mem_bytes)
        if check.action == "violation":
            # The load would consume stale data.  Model the squash: hold the
            # load until the conflicting store executes, charge the penalty
            # once, and train the store-set predictor.
            if dyn.seq not in self._violated_loads:
                self._violated_loads.add(dyn.seq)
                self.stats.memory_order_violations += 1
                self.stats.load_replays += 1
                inst.replayed = True
                self.store_sets.train_violation(dyn.pc, check.store.pc)
            return False
        if check.action == "wait_store":
            return False
        return True

    def _execute(self, inst: InFlightInst, cycle: int) -> None:
        dyn = inst.dyn
        rename = inst.rename
        spec = dyn.instruction.spec
        stats = self.stats
        # Inlined operand materialisation (operand_values) on the raw value
        # array: the fused-operand addition is folded into the same pass.
        values = self.prf.values
        operands = []
        fused = False
        for source in rename.sources:
            value = values[source.preg]
            if source.disp:
                value = (value + source.disp) & MASK64
                fused = True
            operands.append(value)
        inst.issue_cycle = cycle
        inst.stage = Stage.ISSUED
        stats.issued += 1
        if fused:
            stats.fused_operations += 1
            stats.fusion_penalty_cycles += rename.fusion_extra_latency

        latency = spec.latency + rename.fusion_extra_latency
        op_class = spec.op_class

        if op_class is OpClass.LOAD:
            self._execute_load(inst, operands, cycle, latency)
        elif op_class is OpClass.STORE:
            self._execute_store(inst, operands, cycle, latency)
        else:
            inst.complete_cycle = cycle + latency
            if spec.is_cond_branch:
                computed_taken = branch_taken(dyn.instruction.opcode, operands[0])
                if computed_taken != dyn.taken:
                    raise CommitMismatchError(
                        f"branch #{dyn.seq} computed direction {computed_taken}, "
                        f"architectural direction {dyn.taken}"
                    )
            elif dyn.instruction.dest_register is not None:
                value = compute_alu_value(dyn, operands)
                inst.value = value
                if rename.allocated:
                    ready = cycle + max(latency, self.config.scheduler_latency)
                    self.prf.write(rename.dest_preg, value, ready)
        inst.stage = Stage.COMPLETED
        if inst.mispredicted_branch and self._waiting_branch is inst:
            self._fetch_resume_cycle = inst.complete_cycle + self.config.front_end_depth
            self._waiting_branch = None

    def _execute_load(self, inst: InFlightInst, operands: list[int], cycle: int, latency: int) -> None:
        dyn = inst.dyn
        spec = dyn.instruction.spec
        address = effective_address(dyn, operands)
        if address != dyn.eff_addr:
            raise CommitMismatchError(
                f"load #{dyn.seq} computed address {address:#x}, "
                f"architectural address {dyn.eff_addr:#x}"
            )
        inst.eff_addr = address
        check = self.store_queue.check_load(dyn.seq, address, spec.mem_bytes)
        if check.action == "forward":
            raw = check.value
            dcache_latency = self.config.l1d.latency
            self.stats.store_forwards += 1
        else:
            raw = self.memory.read(address, spec.mem_bytes)
            access = self.caches.access_data_read(address, cycle)
            dcache_latency = access.latency
        value = sign_extend(raw, 8 * spec.mem_bytes) if spec.mem_signed else raw
        if value != dyn.result:
            # A store the model believed non-conflicting actually overlapped
            # (should be prevented by the violation check); fall back to the
            # architectural value and account for it as a replay.
            self.stats.memory_order_violations += 1
            self.stats.load_replays += 1
            value = dyn.result
            dcache_latency += self.config.memory_violation_penalty
        if inst.replayed:
            dcache_latency += self.config.memory_violation_penalty
        inst.value = value
        inst.dcache_latency = dcache_latency
        total_latency = latency + dcache_latency
        inst.latency = total_latency
        inst.complete_cycle = cycle + total_latency
        if inst.rename.allocated:
            ready = cycle + max(total_latency, self.config.scheduler_latency)
            self.prf.write(inst.rename.dest_preg, value, ready)

    def _execute_store(self, inst: InFlightInst, operands: list[int], cycle: int, latency: int) -> None:
        dyn = inst.dyn
        address = effective_address(dyn, operands)
        if address != dyn.eff_addr:
            raise CommitMismatchError(
                f"store #{dyn.seq} computed address {address:#x}, "
                f"architectural address {dyn.eff_addr:#x}"
            )
        value = store_value(dyn, operands)
        inst.eff_addr = address
        inst.value = value
        inst.complete_cycle = cycle + latency
        entry = self.store_queue.find(dyn.seq)
        entry.addr = address
        entry.value = value
        entry.executed = True
        entry.complete_cycle = inst.complete_cycle

    # ------------------------------------------------------------------
    # Fetch + rename + dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        trace = self.trace
        trace_length = len(trace)
        if self._fetch_index >= trace_length:
            return
        stats = self.stats
        if cycle < self._fetch_resume_cycle:
            stats.fetch_stall_cycles += 1
            return

        config = self.config
        rename_width = config.rename_width
        taken_branch_limit = config.taken_branches_per_fetch
        fetch_block_bytes = config.l1i.block_bytes
        renamer = self.renamer
        rob = self.rob
        issue_queue = self.issue_queue
        store_queue = self.store_queue
        load_queue = self.load_queue
        prf = self.prf
        preg_writer = self._preg_writer
        collect_timing = self.collect_timing

        taken_branches = 0
        dispatched = 0
        renamer.begin_group()
        while dispatched < rename_width and self._fetch_index < trace_length:
            dyn = trace[self._fetch_index]
            instruction = dyn.instruction
            spec = instruction.spec

            # Structural stalls (checked conservatively before renaming).
            if rob.full:
                stats.rob_stall_cycles += 1
                break
            if issue_queue.full:
                stats.iq_stall_cycles += 1
                break
            if spec.is_store and store_queue.full:
                stats.lsq_stall_cycles += 1
                break
            if spec.is_load and load_queue.full:
                stats.lsq_stall_cycles += 1
                break

            # Instruction cache: one access per new block.
            block = dyn.pc // fetch_block_bytes
            if block != self._last_fetch_block:
                access = self.caches.access_instruction(dyn.pc, cycle)
                self._last_fetch_block = block
                if not access.l1_hit:
                    self._fetch_resume_cycle = cycle + access.latency
                    break

            # Taken-branch fetch limit.
            is_taken_control = spec.is_control and bool(dyn.taken)
            if is_taken_control and taken_branches >= taken_branch_limit:
                break

            # Rename (may stall on physical registers).
            result = renamer.rename_next(dyn)
            if result is None:
                stats.rename_stall_cycles += 1
                break

            inst = InFlightInst(dyn=dyn, rename=result,
                                fetch_cycle=cycle, rename_cycle=cycle,
                                dispatch_cycle=cycle)
            inst.latency = spec.latency
            if collect_timing:
                self._record_producers(inst)
            if result.allocated:
                prf.mark_pending(result.dest_preg)
                if collect_timing:
                    # The producer map only feeds timing records.
                    preg_writer[result.dest_preg] = dyn.seq
                stats.pregs_allocated += 1

            if is_taken_control:
                taken_branches += 1

            # Branch prediction.
            stop_after = False
            if spec.is_control:
                outcome = self.branch_unit.process(dyn)
                if outcome.mispredicted and outcome.reason == "btb":
                    # Target unknown at fetch but computable at decode: a
                    # short front-end bubble, not a full misprediction.
                    self._fetch_resume_cycle = cycle + 2
                    stop_after = True
                elif outcome.mispredicted:
                    inst.mispredicted_branch = True
                    self._waiting_branch = inst
                    self._fetch_resume_cycle = _STALLED
                    stop_after = True

            self._insert(inst, cycle)
            self._fetch_index += 1
            dispatched += 1
            stats.fetched += 1
            if stop_after:
                break
        renamer.end_group()

        in_use = self.config.num_physical_regs - self.renamer.free_register_count()
        if in_use > self.stats.max_pregs_in_use:
            self.stats.max_pregs_in_use = in_use

    def _record_producers(self, inst: InFlightInst) -> None:
        if not self.collect_timing:
            return
        producers = tuple(
            self._preg_writer.get(source.preg, -1) for source in inst.rename.sources
        )
        if inst.eliminated and inst.rename.dest_preg is not None:
            producers = producers + (self._preg_writer.get(inst.rename.dest_preg, -1),)
        self._producers[inst.seq] = producers

    def _insert(self, inst: InFlightInst, cycle: int) -> None:
        """Place a renamed instruction into the ROB and, if needed, the IQ/LSQ."""
        dyn = inst.dyn
        spec = dyn.instruction.spec
        self.rob.add(inst)

        if inst.rename.eliminated:
            # Collapsed out of the execution core: no issue-queue entry, no
            # execution.  It is immediately complete for retirement purposes.
            inst.complete_cycle = cycle
            inst.stage = Stage.COMPLETED
            return

        op_class = spec.op_class
        if op_class in (OpClass.NOP, OpClass.HALT):
            inst.complete_cycle = cycle
            inst.stage = Stage.COMPLETED
            return

        if spec.is_store:
            self.store_queue.add(StoreQueueEntry(
                seq=dyn.seq,
                pc=dyn.pc,
                size=spec.mem_bytes,
                trace_addr=dyn.eff_addr,
            ))
        elif spec.is_load:
            self.load_queue.add(dyn.seq)

        inst.stage = Stage.WAITING
        self.issue_queue.add(inst)
