"""The cycle-level out-of-order pipeline.

The pipeline is trace-driven: it consumes the dynamic instruction stream the
functional simulator produced, models all timing (front end, renaming,
scheduling, execution, memory system, commit) and *recomputes every value* on
the physical register file.  Values are checked against the architectural
trace at commit, which is how RENO transformations are verified end to end.

Modelling notes (also summarised in DESIGN.md):

* Wrong-path instructions are not injected; a branch misprediction stalls the
  front end until the branch resolves plus the front-end refill depth.
* The wakeup/select loop latency is modelled through the producer readiness
  timestamp: a dependent may issue ``max(latency, scheduler_latency)`` cycles
  after its producer.
* Scheduling is event-driven (see :mod:`repro.uarch.scheduler`): dispatch
  counts each instruction's unavailable operands, every physical-register
  write is reported to the issue queue (the only path that decrements those
  counts), and the select loop visits only instructions whose count reached
  zero, kept oldest-first in per-class ready lists.  Loads additionally pass
  a memory-ordering check (:meth:`Pipeline._load_can_issue`) at select time.
* Memory-ordering violations are detected when a load would consume stale
  data (an older overlapping store has not executed); the load is held back
  and charged a squash penalty, and the store-set predictor is trained.

Hot-path representation: all per-in-flight-instruction state lives in the
structure-of-arrays :class:`~repro.uarch.inflight.InFlightWindow`, indexed by
``seq & mask`` (sequence numbers double as ROB positions because dispatch and
retirement are strictly in program order).  Static per-instruction facts come
from the decoded-op cache (:func:`repro.isa.instruction.decode_program`).
:meth:`Pipeline._run_cycles` is written as one interpreter-style loop —
commit, wakeup/select, execute and dispatch are inlined, every array and
counter is a local, and the conventional renamer's map-table/free-list
updates are inlined too (``window.rename[slot]`` stays None on that path) —
so the per-instruction work is flat list/tuple indexing with no attribute
traffic and no object allocation beyond what the RENO renamer itself needs.
The inlined scheduler paths are byte-exact re-statements of
``IssueQueue.add``/``select``; the scheduler-equivalence property tests pit
the whole pipeline against an object-model full-scan reference to keep them
honest.
"""

from __future__ import annotations

import copy
import gc
from bisect import insort
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.functional.memory import Memory
from repro.functional.trace import DynamicInstruction
from repro.isa.instruction import (
    CLASS_LOAD,
    CLASS_STORE,
    DF_CALL,
    DF_COND_BRANCH,
    DF_CONTROL,
    DF_LOAD,
    DF_MEM_SIGNED,
    DF_NO_EXECUTE,
    DF_STORE,
    decode_program,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import DATA_BASE, STACK_BASE, Program
from repro.isa.registers import NUM_LOGICAL_REGS, RegisterNames
from repro.isa.semantics import MASK64, alu_eval, branch_taken, mask64, sign_extend
from repro.uarch.backend import CycleLoopBackend, resolve_backend
from repro.uarch.branch import BranchUnit
from repro.uarch.cache import CacheHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.inflight import NO_COMPLETE, InFlightWindow, TimingRecord
from repro.uarch.lsq import LoadQueue, StoreQueue, StoreQueueEntry
from repro.uarch.observe import (
    DEFAULT_TIMELINE_CAPACITY,
    STALL_BRANCH,
    STALL_FRONTEND,
    STALL_ICACHE,
    OccupancyStats,
    TimelineRecorder,
)
from repro.uarch.regfile import NOT_READY, PhysicalRegisterFile
from repro.uarch.rename import BaselineRenamer, RenameResult, Renamer
from repro.uarch.rob import ReorderBuffer
from repro.uarch.scheduler import IssueQueue
from repro.uarch.snapshot import PipelineSnapshot
from repro.uarch.stats import SimStats
from repro.uarch.storesets import StoreSets

#: Sentinel for "front end stalled until further notice" (mispredicted branch
#: still unresolved).
_STALLED = 1 << 60

#: Sentinel for "no branch currently stalls the front end".
_NO_BRANCH = -1

#: Elimination-kind ids for ``InFlightWindow.elim_info`` (0 = not
#: eliminated; bit 4 marks re-execution at retire).
_ELIM_IDS = {"move": 1, "cf": 2, "cse": 3, "ra": 4}
_ELIM_REEXEC = 16


class CommitMismatchError(Exception):
    """Raised when an executed value disagrees with the architectural trace.

    This is the end-to-end correctness check for renaming (and for RENO's
    register-sharing transformations).  It should never fire.
    """


@dataclass
class SimResult:
    """Outcome of one timing simulation.

    ``finished`` is False for a partial result returned by an incremental
    ``Pipeline.run(max_cycles=...)`` call whose cycle budget ran out before
    the whole trace retired; statistics then cover the simulated prefix.

    ``timeline`` carries the ordered rows of the opt-in cycle-timeline
    recorder (``timeline_stride > 0``), oldest first; None otherwise.
    """

    stats: SimStats
    config: MachineConfig
    final_registers: list[int] = field(default_factory=list)
    timing_records: list[TimingRecord] | None = None
    finished: bool = True
    timeline: list[tuple] | None = None

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.stats.ipc

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.stats.cycles


class Pipeline:
    """A dynamically scheduled superscalar processor model."""

    def __init__(
        self,
        program: Program,
        trace: list[DynamicInstruction],
        config: MachineConfig | None = None,
        renamer: Renamer | None = None,
        collect_timing: bool = False,
        record_stats: bool = False,
        timeline_stride: int = 0,
        timeline_capacity: int = DEFAULT_TIMELINE_CAPACITY,
        backend: "str | CycleLoopBackend | None" = None,
    ):
        """Create a pipeline for one program run.

        Args:
            program: The assembled program (provides initial memory).
            trace: The dynamic instruction trace from the functional simulator.
            config: Machine parameters; defaults to the paper's 4-wide core.
            renamer: The renaming implementation; defaults to the conventional
                renamer.  Pass a :class:`repro.core.renamer.RenoRenamer` to
                enable RENO.
            collect_timing: If True, keep a per-retired-instruction timing
                record for critical-path analysis (costs memory).
            backend: Which cycle-loop implementation runs the simulation —
                a registered backend name (``"python"``, ``"compiled"``), a
                :class:`~repro.uarch.backend.CycleLoopBackend` object, or
                None to consult ``REPRO_BACKEND`` and default to
                ``python``.  Backends are cycle-exact: the choice affects
                wall-clock speed, never results.
            record_stats: If True, accumulate per-structure occupancy
                histograms and issue-port utilization
                (:class:`~repro.uarch.observe.OccupancyStats`, surfaced as
                ``result.stats.occupancy``).  Off by default: the cycle loop
                then pays a single pre-bound boolean test per cycle.
            timeline_stride: When > 0, additionally record one timeline row
                every this many cycles into a bounded ring buffer
                (:class:`~repro.uarch.observe.TimelineRecorder`; implies
                ``record_stats``).
            timeline_capacity: Ring-buffer size for the timeline recorder.
        """
        self.config = config or MachineConfig.default_4wide()
        self.config.validate()
        self.program = program
        self.trace = trace
        self.collect_timing = collect_timing
        if timeline_stride < 0:
            raise ValueError(f"timeline_stride must be >= 0, got {timeline_stride}")
        self.record_stats = bool(record_stats) or timeline_stride > 0
        self.timeline_stride = timeline_stride
        self._trace_length = len(trace)
        #: Decoded-op cache: one immutable tuple per static instruction,
        #: indexed by the trace records' static index (== PC/4 offset).
        self._decoded = decode_program(program.instructions)
        #: The same cache pre-resolved per trace record, so dispatch reaches
        #: the decoded tuple with one subscript on the fetch index.
        self._trace_ops = [self._decoded[dyn.index] for dyn in trace]

        initial_regs = [0] * NUM_LOGICAL_REGS
        initial_regs[RegisterNames.SP] = STACK_BASE
        initial_regs[RegisterNames.GP] = DATA_BASE
        self.prf = PhysicalRegisterFile(self.config.num_physical_regs, initial_regs)
        # Config-derived scalars never change during (or across) runs.
        self._sched_latency = self.config.scheduler_latency
        self._commit_width = self.config.commit_width
        self._retire_dcache_ports = self.config.retire_dcache_ports
        self._rename_width = self.config.rename_width
        self._taken_branch_limit = self.config.taken_branches_per_fetch
        self._fetch_block_bytes = self.config.l1i.block_bytes
        self._front_end_depth = self.config.front_end_depth
        self._rob_capacity = self.config.rob_size
        self.renamer: Renamer = renamer or BaselineRenamer(self.config.num_physical_regs)

        self.branch_unit = BranchUnit(self.config)
        self.caches = CacheHierarchy(self.config)
        self.store_sets = StoreSets(self.config.store_set_entries)
        #: The structure-of-arrays in-flight window shared by every stage.
        self.window = InFlightWindow(self.config.rob_size)
        self.issue_queue = IssueQueue(self.config, self.window, self.prf.ready_cycle)
        self.rob = ReorderBuffer(self.config.rob_size, self.window)
        self.store_queue = StoreQueue(self.config.store_queue_size)
        self.load_queue = LoadQueue(self.config.load_queue_size)
        self.memory = Memory(program.initial_memory)

        self.stats = SimStats()
        if self.record_stats:
            self.stats.occupancy = OccupancyStats.for_config(self.config)
        self.timeline: TimelineRecorder | None = (
            TimelineRecorder(stride=timeline_stride, capacity=timeline_capacity)
            if timeline_stride > 0 else None)
        self.timing_records: list[TimingRecord] = []

        # Run cursors + front-end state (mirrored from the cycle loop's
        # locals at the end of every _run_cycles call, so an incremental run
        # resumes exactly where the previous slice stopped).
        self._cycle = 0
        self._committed = 0
        self._fetch_index = 0
        self._fetch_resume_cycle = 0
        self._waiting_branch = _NO_BRANCH
        self._last_fetch_block = -1
        # Which observe.STALL_* bucket the current fetch stall belongs to
        # (only read while record_stats is on).
        self._fetch_stall_reason = STALL_BRANCH

        # preg -> sequence number of the instruction producing it (for the
        # critical-path model).
        self._preg_writer: dict[int, int] = {}
        self._producers: dict[int, tuple[int, ...]] = {}

        # Loads currently being held back because of an ordering violation.
        self._violated_loads: set[int] = set()

        #: The cycle-loop implementation (see :mod:`repro.uarch.backend`).
        #: Resolved once at construction; deliberately outside the snapshot
        #: so a pipeline restored on another host keeps its own backend —
        #: that is what makes a mid-run backend switch a pure
        #: snapshot/restore hand-off.
        self.backend = resolve_backend(backend)
        #: The resolved backend's registry name (``"python"`` after a
        #: silent fallback, whatever was requested otherwise) — recorded in
        #: result provenance by the harness layers.
        self.backend_name = self.backend.name

        self._bind_aliases()
        self.backend.prepare(self)

    def _bind_aliases(self) -> None:
        """(Re)derive the hot-loop aliases from the primary components.

        Called at construction and after :meth:`restore` — the aliases must
        point into whatever objects currently back the pipeline.  Everything
        here is a pure re-read of stable attributes; no state is created.
        """
        # The value/readiness arrays are stable attributes of the register
        # file.
        self._prf_values = self.prf.values
        self._prf_ready = self.prf.ready_cycle
        # Producer-side wakeup aliases: most register writes have no
        # registered waiters, so the membership test saves the call.
        self._iq_waiters = self.issue_queue._waiters
        self._iq_wakeup = self.issue_queue.wakeup
        # Window-array aliases (list identities are stable between runs).
        window = self.window
        self._w_mask = window.mask
        self._w_dispatch = window.dispatch_cycle
        self._w_issue = window.issue_cycle
        self._w_complete = window.complete_cycle
        self._w_retire = window.retire_cycle
        self._w_latency = window.latency
        self._w_value = window.value
        self._w_eff = window.eff_addr
        self._w_dcache = window.dcache_latency
        self._w_replayed = window.replayed
        self._w_mispred = window.mispredicted
        self._w_rename = window.rename
        self._w_decoded = window.decoded
        self._w_dest = window.dest_preg
        self._w_fextra = window.fusion_extra

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self, max_cycles: int | None = None) -> SimResult:
        """Simulate until every trace instruction has retired.

        The loop is event-driven: after the three pipeline phases run for a
        cycle, it asks the issue queue when the next wakeup is due and — if
        nothing is ready, the ROB head is not yet committable and the front
        end is stalled (or out of trace) — jumps the cycle counter straight
        to the next event instead of spinning through guaranteed no-op
        cycles.  Skipped stretches are pure no-ops except for the fetch-stall
        counter, which is credited in bulk, so all statistics are identical
        to the cycle-by-cycle loop's.

        Args:
            max_cycles: When given, simulate at most this many *additional*
                cycles and return a partial :class:`SimResult`
                (``finished=False`` if the trace has not fully retired).
                Calling :meth:`run` again — on this pipeline, or on one
                restored from a :meth:`snapshot` — continues exactly where
                the slice stopped; the concatenation of sliced runs is
                byte-identical to one uninterrupted run.  ``None`` (the
                default) runs to completion.

        Returns:
            The (possibly partial) simulation result.  Statistics of a
            partial result cover everything simulated so far.
        """
        if max_cycles is not None and max_cycles < 0:
            raise ValueError(f"max_cycles must be >= 0, got {max_cycles}")
        stop_cycle = None if max_cycles is None else self._cycle + max_cycles
        # The loop allocates short-lived, acyclic objects (rename results,
        # wakeup buckets); generational GC only burns time re-scanning
        # them.  Reference counting reclaims everything, so pause GC for
        # the duration (restoring the caller's setting afterwards).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.backend.run_cycles(self, stop_cycle)
        finally:
            if gc_was_enabled:
                gc.enable()
        self._merge_component_stats()
        finished = self.finished
        stats = self.stats
        records = self.timing_records if self.collect_timing else None
        timeline = self.timeline.ordered() if self.timeline is not None else None
        if not finished:
            # A partial result must be a point-in-time view: later slices
            # keep mutating the live stats/records, and callers (run_sliced
            # callbacks, checkpointing services) naturally stash per-slice
            # results.
            stats = copy.deepcopy(stats)
            records = list(records) if records is not None else None
        return SimResult(
            stats=stats,
            config=self.config,
            final_registers=self._final_registers(),
            timing_records=records,
            finished=finished,
            timeline=timeline,
        )

    @property
    def finished(self) -> bool:
        """Whether every trace instruction has retired."""
        return self._committed >= self._trace_length

    # ------------------------------------------------------------------
    # Snapshot / restore (incremental simulation)
    # ------------------------------------------------------------------

    #: Attributes captured by :meth:`snapshot` — every piece of state the
    #: cycle loop mutates.  The immutable run inputs (program, trace,
    #: config, decoded-op caches) and the hot-loop aliases re-derived by
    #: :meth:`_bind_aliases` are deliberately absent.
    _SNAPSHOT_STATE = (
        "prf", "renamer", "branch_unit", "caches", "store_sets", "window",
        "issue_queue", "rob", "store_queue", "load_queue", "memory",
        "stats", "timeline", "timing_records", "_cycle", "_committed",
        "_fetch_index", "_fetch_resume_cycle", "_waiting_branch",
        "_last_fetch_block", "_fetch_stall_reason",
        "_preg_writer", "_producers", "_violated_loads",
    )

    #: ``__init__`` attributes deliberately *outside* the snapshot: the
    #: immutable run inputs, the decoded-op caches derived from them, and
    #: the config scalars hoisted for the hot loop.  A rebuilt pipeline
    #: reconstructs all of these from the same (program, trace, config)
    #: inputs, so carrying them across a restore would be redundant — and
    #: the ``snapshot-coverage`` lint rule insists every ``__init__``
    #: attribute is accounted for in exactly one of the two tuples.
    _SNAPSHOT_EXEMPT = (
        "config", "program", "trace", "collect_timing", "record_stats",
        "timeline_stride", "_trace_length", "_decoded", "_trace_ops",
        "_sched_latency", "_commit_width", "_retire_dcache_ports",
        "_rename_width", "_taken_branch_limit", "_fetch_block_bytes",
        "_front_end_depth", "_rob_capacity", "backend", "backend_name",
    )

    def snapshot(self) -> PipelineSnapshot:
        """Capture the complete mutable simulation state.

        The capture is one deep copy, so aliasing *between* components (the
        issue queue's window reference, rename results sharing map-table
        mappings, ...) is preserved inside the snapshot, and the snapshot is
        fully detached from this pipeline — continuing to :meth:`run` after
        snapshotting never mutates it.  Snapshots pickle cleanly
        (:meth:`~repro.uarch.snapshot.PipelineSnapshot.save`), which is how
        a service checkpoints a time-sliced simulation to disk.
        """
        state = {name: getattr(self, name) for name in self._SNAPSHOT_STATE}
        return PipelineSnapshot(
            state=copy.deepcopy(state),
            config_digest=self.config.digest(),
            trace_length=self._trace_length,
            collect_timing=self.collect_timing,
            cycle=self._cycle,
            committed=self._committed,
            record_stats=self.record_stats,
            timeline_stride=self.timeline_stride,
        )

    def restore(self, snapshot: PipelineSnapshot) -> None:
        """Adopt the state captured by :meth:`snapshot`.

        This pipeline must have been constructed from the same
        (program, trace, config, collect_timing) inputs as the snapshotted
        one (:meth:`~repro.uarch.snapshot.PipelineSnapshot.validate_for`
        raises otherwise; the renamer is *part of the snapshot* and replaces
        whatever the constructor installed).  The snapshot itself stays
        reusable: restoring hands over a fresh copy every time.
        """
        snapshot.validate_for(self)
        for name, value in snapshot.copy_state().items():
            setattr(self, name, value)
        self._bind_aliases()

    def _run_cycles(self, stop_cycle: int | None = None) -> None:
        """The cycle loop proper (see :meth:`run` for the event-driven model).

        ``stop_cycle`` bounds an incremental slice: the loop exits (without
        raising) before simulating that cycle, leaving all cursors mirrored
        on ``self`` so the next call resumes exactly there.  Slices cut only
        at loop-top boundaries, and the event-driven fast-forward clamps its
        jump target to the boundary (crediting fetch stalls for exactly the
        skipped stretch), so a resumed run replays the identical cycle
        sequence an uninterrupted run would have executed.

        All phases — commit, wakeup/select, execute, dispatch — are inlined
        into this one function so every array, counter and piece of
        front-end state is a local variable for the whole run.  Two
        structural fast paths are chosen up front:

        * ``inline_iq`` — issue-queue bookkeeping (operand counting,
          waiter/wakeup registration, wakeup drain, single-class select) is
          inlined when the queue is the stock :class:`IssueQueue`; a
          substituted queue (the equivalence tests' object-model reference)
          gets the ``add()``/``select()`` method calls instead, and the
          rare multi-class select falls back to the method with the local
          counters synced around the call.
        * ``baseline_fast`` — conventional renaming (map table + free list)
          is inlined when the renamer is the stock ``BaselineRenamer``; the
          slot's ``rename`` entry stays None and commit releases the
          previous mapping directly.  Any other renamer (RENO) goes through
          the ``rename_next()`` interface unchanged.

        Neither fast path changes any modelled behaviour — they remove
        Python call and object overhead only, which the scheduler
        equivalence and rename invariant property tests check.  Frequently
        bumped statistics are accumulated in locals and folded into
        ``self.stats`` once at the end of the run.
        """
        cycle = self._cycle
        committed = self._committed
        fetch_index = self._fetch_index
        # Beyond every reachable cycle when no slice boundary was requested.
        stop = stop_cycle if stop_cycle is not None else 1 << 62
        fetch_resume = self._fetch_resume_cycle
        waiting_branch = self._waiting_branch
        last_fetch_block = self._last_fetch_block
        total = self._trace_length
        # The cycle loop dominates wall-clock time; bind everything it
        # touches once instead of re-resolving attributes every cycle.
        stats = self.stats
        max_cycles = self.config.max_cycles
        issue_queue = self.issue_queue
        select = issue_queue.select
        load_ready = self._load_can_issue
        wakeup_heap = issue_queue._wakeup_heap    # list identity is stable
        iq_waiters = self._iq_waiters
        iq_wakeups = issue_queue._wakeups
        iq_ready = issue_queue._ready
        iq_class = self.window.class_id
        iq_capacity = issue_queue.capacity
        iq_add = issue_queue.add
        w_waiting = self.window.waiting_ops
        inline_iq = type(issue_queue) is IssueQueue
        iq_count = issue_queue._count
        iq_ready_total = issue_queue._ready_total
        limit_int = self.config.int_issue
        limit_load = self.config.load_issue
        limit_store = self.config.store_issue
        limit_fp = self.config.fp_issue
        total_issue = self.config.total_issue

        renamer = self.renamer
        baseline_fast = inline_iq and type(renamer) is BaselineRenamer
        reno_mode = not baseline_fast
        rename_next = renamer.rename_next
        renamer_begin = renamer.begin_group
        renamer_end = renamer.end_group
        renamer_commit = renamer.commit
        free_count = renamer.free_register_count
        if baseline_fast:
            bmap = renamer.map_table
            bfree = renamer.free_list
            bfree_popleft = bfree.popleft
            bfree_append = bfree.append
        else:
            bmap = bfree = bfree_popleft = bfree_append = None
        # Commit-side fast path for the stock RENO renamer: the refcount
        # release is inlined against its arrays (same body as
        # RenoRenamer.commit); other renamers go through commit().
        reno_fast = False
        rc_counts = rc_free_append = it_index = it_invalidate = None
        reno_free = group_elim = None
        rn_rc = rn_map = rn_stats = rn_zero = rn_try_elim = None
        rn_insert_it = rn_it = rn_config = None
        rn_elig = 0
        rn_policy_full = False
        fusion_extra = elim_keys = Mapping = None
        if reno_mode:
            from repro.core.fusion import fusion_extra_latency as fusion_extra
            from repro.core.maptable import Mapping
            from repro.core.renamer import _ELIM_STATS_KEYS as elim_keys
            from repro.core.renamer import RenoRenamer

            if type(renamer) is RenoRenamer:
                reno_fast = True
                rn_rc = renamer.refcounts
                rc_counts = rn_rc.counts
                reno_free = renamer._free_list
                rc_free_append = reno_free.append
                group_elim = renamer._group_eliminated_logicals
                rn_map = renamer.map_table._entries
                rn_stats = renamer.stats
                rn_zero = renamer._zero_maps
                rn_elig = renamer._elig_mask
                rn_try_elim = renamer._try_eliminate
                rn_insert_it = renamer._insert_it_entries
                rn_config = renamer.config
                rn_policy_full = renamer._policy_full
                table = rn_it = renamer.integration_table
                if table is not None:
                    it_index = table._preg_index
                    it_invalidate = table.invalidate_preg
        df_mem = DF_LOAD | DF_STORE

        mask = self._w_mask
        w_dispatch = self._w_dispatch
        w_issue = self._w_issue
        w_complete = self._w_complete
        w_latency = self._w_latency
        w_value = self._w_value
        w_eff = self._w_eff
        w_dcache = self._w_dcache
        w_replayed = self._w_replayed
        w_mispred = self._w_mispred
        w_rename = self._w_rename
        w_decoded = self._w_decoded
        w_dest = self._w_dest
        w_prev = self.window.prev_dest
        w_elim = self.window.elim_info
        w_fextra = self._w_fextra
        w_nsrc = self.window.nsrc
        w_s0p = self.window.src0_preg
        w_s0d = self.window.src0_disp
        w_s1p = self.window.src1_preg
        w_s1d = self.window.src1_disp

        prf_values = self._prf_values
        prf_ready = self._prf_ready
        sched_latency = self._sched_latency
        front_end_depth = self._front_end_depth
        trace = self.trace
        trace_ops = self._trace_ops
        commit_width = self._commit_width
        retire_dcache_ports = self._retire_dcache_ports
        rename_width = self._rename_width
        taken_branch_limit = self._taken_branch_limit
        fetch_block_bytes = self._fetch_block_bytes
        rob_capacity = self._rob_capacity
        num_pregs = self.config.num_physical_regs
        collect_timing = self.collect_timing
        preg_writer = self._preg_writer
        producers_map = self._producers
        timing_append = self.timing_records.append
        record_producers = self._record_producers
        reexecute_load = self._reexecute_load
        check_value = self._check_value

        caches = self.caches
        caches_access = caches._access
        l1i_cache = caches.l1i
        l1d_cache = caches.l1d
        l1d_latency = self.config.l1d.latency
        violation_penalty = self.config.memory_violation_penalty
        branch_unit = self.branch_unit
        branch_process = branch_unit.process
        branch_predict_update = branch_unit.direction.predict_and_update
        branch_check_target = branch_unit._check_target
        memory_read = self.memory.read
        memory_write = self.memory.write
        mem_pages = self.memory._pages
        sq_check = self.store_queue.check_load
        sq_entries = self.store_queue.entries
        sq_by_seq = self.store_queue._by_seq
        sq_capacity = self.store_queue.capacity
        sq_pop = self.store_queue.pop_committed
        sq_len = len(sq_entries)
        lq_entries = self.load_queue.entries
        lq_capacity = self.load_queue.capacity
        lq_add = lq_entries.add
        lq_discard = lq_entries.discard
        lq_len = len(lq_entries)

        # The dominant ALU opcodes and branch conditions are evaluated
        # inline (identical to the corresponding alu_eval / branch_taken
        # branches); everything else takes the call.
        op_addi = Opcode.ADDI
        op_add = Opcode.ADD
        op_andi = Opcode.ANDI
        op_srli = Opcode.SRLI
        op_subi = Opcode.SUBI
        op_sub = Opcode.SUB
        op_mov = Opcode.MOV
        op_bgt = Opcode.BGT
        op_bne = Opcode.BNE
        op_beq = Opcode.BEQ
        sign_limit = 1 << 63
        # Fetch blocks are power-of-two sized (the same assumption
        # Cache.block_shift makes), so the block id is a shift.
        fb_shift = fetch_block_bytes.bit_length() - 1

        # Stats accumulated in locals, folded into self.stats after the run.
        alloc_total = 0
        issued_total = 0
        fetched_total = 0
        fetch_stalls = 0
        pregs_alloc_total = 0
        fused_total = 0
        fusion_penalty_total = 0
        store_forwards = 0
        elim_moves = elim_folds = elim_cse = elim_ra = 0

        # Observability (one hoisted flag; everything below it is dead and
        # unbound when record_stats is off, so the off-mode cost is the
        # single local boolean test per cycle).
        record_stats = self.record_stats
        stall_reason = self._fetch_stall_reason
        if record_stats:
            occ = stats.occupancy
            occ_rob = occ.rob
            occ_iq = occ.iq
            occ_prf = occ.prf
            occ_sq = occ.sq
            occ_lq = occ.lq
            occ_ready = occ.ready
            occ_issued = occ.issued
            occ_class = occ.issued_by_class
            occ_stall = occ.fetch_stall_reasons
            timeline = self.timeline
            tl_stride = timeline.stride if timeline is not None else 0
            tl_record = timeline.record if timeline is not None else None

        empty_selection: list[int] = []
        while committed < total:
            if cycle >= max_cycles:
                self._flush_loop_stats(
                    stats, cycle, committed, issued_total, fetched_total,
                    fetch_stalls, pregs_alloc_total, fused_total,
                    fusion_penalty_total, store_forwards, elim_moves,
                    elim_folds, elim_cse, elim_ra)
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({committed}/{total} instructions retired)"
                )
            if cycle >= stop:
                break                 # slice budget exhausted; resume later

            # ---------------- Commit ----------------
            # Guarded: enter only when the head slot holds a completed
            # instruction whose completion is in the past.  An empty ROB or
            # a still-waiting head both leave complete_cycle at NO_COMPLETE,
            # so one comparison covers every "cannot commit" case.
            slot = committed & mask
            if w_complete[slot] < cycle:
                budget = commit_width
                dcache_ports = retire_dcache_ports
                while True:
                    op = w_decoded[slot]
                    flags = op[0]
                    elim = w_elim[slot]
                    if flags & DF_STORE:
                        if not dcache_ports:
                            break
                        # Inlined store commit: write memory + d-cache
                        # through the retire port, drop the SQ entry.
                        address = w_eff[slot]
                        size = op[3]
                        offset = address & 4095
                        if offset + size <= 4096:
                            # Inlined Memory.write fast path (single page;
                            # the store value was masked at execute).
                            page_number = address >> 12
                            page = mem_pages.get(page_number)
                            if page is None:
                                page = bytearray(4096)
                                mem_pages[page_number] = page
                            page[offset:offset + size] = \
                                w_value[slot].to_bytes(size, "little")
                        else:
                            memory_write(address, size, w_value[slot])
                        caches_access(l1d_cache, address, cycle, True)
                        sq_pop(committed)
                        sq_len -= 1
                        dcache_ports -= 1
                    elif elim & _ELIM_REEXEC:
                        if not dcache_ports:
                            break
                        reexecute_load(committed, op, cycle)
                        dcache_ports -= 1
                    if op[4] >= 0:
                        dyn_result = trace[committed].result
                        if dyn_result is not None:
                            # Inlined fast paths of _check_value:
                            # non-eliminated results compare directly,
                            # eliminated ones against the shared register;
                            # the method re-derives the value and raises
                            # with full context on a mismatch.
                            if elim:
                                rename = w_rename[slot]
                                if ((prf_values[rename.dest_preg]
                                        + rename.dest_disp)
                                        & MASK64) != dyn_result:
                                    check_value(committed, slot)
                            elif w_value[slot] != dyn_result:
                                check_value(committed, slot)
                    if flags & DF_LOAD and not elim:
                        lq_discard(committed)
                        lq_len -= 1
                    # Renamer hand-back.  The fast modes release the
                    # previous mapping straight from the flattened arrays;
                    # other renamers get the commit() interface call.
                    if baseline_fast:
                        prev = w_prev[slot]
                        if prev >= 0:
                            bfree_append(prev)
                    elif reno_fast:
                        # Inlined RenoRenamer.commit (refcount release).
                        prev = w_prev[slot]
                        if prev >= 0:
                            count = rc_counts[prev]
                            if count == 1:
                                rc_counts[prev] = 0
                                rc_free_append(prev)
                                if it_index is not None and prev in it_index:
                                    it_invalidate(prev)
                            elif count > 1:
                                rc_counts[prev] = count - 1
                            else:
                                renamer_commit(w_rename[slot])  # raises underflow
                    else:
                        renamer_commit(w_rename[slot])
                    if elim:
                        kind = elim & 15
                        if kind == 1:
                            elim_moves += 1
                        elif kind == 2:
                            elim_folds += 1
                        elif kind == 3:
                            elim_cse += 1
                        elif kind == 4:
                            elim_ra += 1
                    if collect_timing:
                        self._w_retire[slot] = cycle
                        timing_append(TimingRecord(
                            seq=committed,
                            opcode=op[6].value,
                            fetch_cycle=w_dispatch[slot],  # fetch == dispatch
                            dispatch_cycle=w_dispatch[slot],
                            issue_cycle=w_issue[slot],
                            complete_cycle=w_complete[slot],
                            retire_cycle=cycle,
                            is_load=bool(flags & DF_LOAD),
                            is_store=bool(flags & DF_STORE),
                            is_branch=bool(flags & DF_CONTROL),
                            mispredicted=w_mispred[slot],
                            eliminated=bool(elim),
                            dcache_latency=w_dcache[slot],
                            latency=w_latency[slot],
                            source_producers=producers_map.pop(committed, ()),
                        ))
                    # Retirement: release the slot (the NO_COMPLETE reset is
                    # what the commit guard and slot-reuse contract rely on).
                    w_complete[slot] = NO_COMPLETE
                    committed += 1
                    budget -= 1
                    if not budget or committed >= fetch_index:
                        break
                    slot = committed & mask
                    if w_complete[slot] >= cycle:
                        break

            # ---------------- Wakeup + select ----------------
            # Operand readiness is guaranteed by the wakeup model; the
            # memory-ordering callback gates load-class candidates only.
            selected = empty_selection
            if inline_iq:
                if wakeup_heap and wakeup_heap[0] <= cycle:
                    # Inlined IssueQueue._drain_wakeups.
                    while wakeup_heap and wakeup_heap[0] <= cycle:
                        for wseq in iq_wakeups.pop(heappop(wakeup_heap)):
                            wslot = wseq & mask
                            pending = w_waiting[wslot] - 1
                            w_waiting[wslot] = pending
                            if not pending:
                                iq_ready_total += 1
                                bucket = iq_ready[iq_class[wslot]]
                                if bucket and wseq < bucket[-1]:
                                    insort(bucket, wseq)
                                else:
                                    bucket.append(wseq)
                if iq_ready_total:
                    # Inlined IssueQueue.select, single-class fast path: when
                    # exactly one class has ready entries (the overwhelmingly
                    # common case) walk that list oldest-first in place.  The
                    # int+load pair (the common two-class case) gets its own
                    # merge; anything else falls back to the method.
                    r_int = iq_ready[0]
                    r_load = iq_ready[1]
                    r_store = iq_ready[2]
                    entries = gate = None
                    limit = 0
                    handled = False
                    if r_int:
                        if not (r_load or r_store or iq_ready[3]):
                            entries = r_int
                            limit = limit_int
                            single = 0
                        elif (r_load and limit_int and limit_load
                                and not (r_store or iq_ready[3])):
                            # With no in-flight store, the memory-ordering
                            # gate is identically true and can be skipped.
                            gate_on = bool(sq_entries)
                            # Two-class merge by sequence number, identical
                            # to the general cursor algorithm restricted to
                            # the int and load classes.
                            handled = True
                            i_idx = l_idx = 0
                            i_cnt = len(r_int)
                            l_cnt = len(r_load)
                            i_lim = limit_int
                            l_lim = limit_load
                            remaining = total_issue
                            l_kept = None
                            selected = []
                            while remaining:
                                if i_idx < i_cnt and i_lim:
                                    take_load = (l_idx < l_cnt and l_lim
                                                 and r_load[l_idx] < r_int[i_idx])
                                elif l_idx < l_cnt and l_lim:
                                    take_load = True
                                else:
                                    break
                                # The earliest-issue-is-next-cycle veto the
                                # select method applies is provably never
                                # taken here: select runs before dispatch
                                # within a cycle and wakeups are scheduled
                                # strictly past the dispatch cycle, so every
                                # ready entry was dispatched in an earlier
                                # cycle.
                                if take_load:
                                    sseq = r_load[l_idx]
                                    l_idx += 1
                                    if gate_on and not load_ready(sseq, cycle):
                                        if l_kept is None:
                                            l_kept = [sseq]
                                        else:
                                            l_kept.append(sseq)
                                    else:
                                        selected.append(sseq)
                                        l_lim -= 1
                                        remaining -= 1
                                else:
                                    # Int entries have no gate (and the
                                    # dispatch veto is dead here), so every
                                    # visited one is selected.
                                    selected.append(r_int[i_idx])
                                    i_idx += 1
                                    i_lim -= 1
                                    remaining -= 1
                            if i_idx:
                                if i_idx == i_cnt:
                                    r_int.clear()
                                else:
                                    del r_int[:i_idx]
                            if l_idx:
                                if l_kept is None:
                                    if l_idx == l_cnt:
                                        r_load.clear()
                                    else:
                                        del r_load[:l_idx]
                                else:
                                    l_kept.extend(r_load[l_idx:])
                                    iq_ready[1] = l_kept
                            if selected:
                                iq_count -= len(selected)
                                iq_ready_total -= len(selected)
                    elif r_load:
                        if not (r_store or iq_ready[3]):
                            entries = r_load
                            limit = limit_load
                            # The memory-ordering gate is identically true
                            # with no in-flight store; skip the calls then.
                            gate = load_ready if sq_entries else None
                            single = 1
                    elif r_store:
                        if not iq_ready[3]:
                            entries = r_store
                            limit = limit_store
                            single = 2
                    else:
                        entries = iq_ready[3]
                        limit = limit_fp
                        single = 3
                    if entries is not None:
                        if limit:
                            # (The select method's dispatched-this-cycle
                            # veto is provably never taken on this inline
                            # path — see the two-class merge note.)
                            remaining = total_issue
                            kept = None
                            index = 0
                            count = len(entries)
                            selected = []
                            if gate is None:
                                width = limit if limit < remaining else remaining
                                if width >= count:
                                    # Everything ready issues: take the
                                    # whole list without a per-entry walk.
                                    selected = entries[:]
                                    index = count
                                else:
                                    selected = entries[:width]
                                    index = width
                                limit -= index
                            else:
                                while index < count and limit and remaining:
                                    sseq = entries[index]
                                    index += 1
                                    if not gate(sseq, cycle):
                                        if kept is None:
                                            kept = [sseq]
                                        else:
                                            kept.append(sseq)
                                        continue
                                    selected.append(sseq)
                                    limit -= 1
                                    remaining -= 1
                            if index:
                                if kept is None:
                                    if index == count:
                                        entries.clear()
                                    else:
                                        del entries[:index]
                                else:
                                    kept.extend(entries[index:])
                                    iq_ready[single] = kept
                            if selected:
                                iq_count -= len(selected)
                                iq_ready_total -= len(selected)
                    elif not handled:
                        # Multi-class competition (rare): use the method with
                        # the local counters synced around the call.
                        issue_queue._count = iq_count
                        issue_queue._ready_total = iq_ready_total
                        selected = select(cycle, load_ready)
                        iq_count = issue_queue._count
                        iq_ready_total = issue_queue._ready_total
            elif issue_queue._ready_total or (wakeup_heap and wakeup_heap[0] <= cycle):
                selected = select(cycle, load_ready)

            # ---------------- Execute ----------------
            if selected:
                issued_total += len(selected)
                for seq in selected:
                    slot = seq & mask
                    op = w_decoded[slot]
                    # Operand materialisation straight off the flattened
                    # source arrays, with the fused-operand addition folded
                    # into the same pass.  Conventional renaming never has
                    # displacements, so that mode skips the disp reads.
                    ns = w_nsrc[slot]
                    value0 = value1 = 0
                    fextra = 0
                    if reno_mode:
                        fused = False
                        if ns:
                            value0 = prf_values[w_s0p[slot]]
                            disp = w_s0d[slot]
                            if disp:
                                value0 = (value0 + disp) & MASK64
                                fused = True
                            if ns > 1:
                                value1 = prf_values[w_s1p[slot]]
                                disp = w_s1d[slot]
                                if disp:
                                    value1 = (value1 + disp) & MASK64
                                    fused = True
                        fextra = w_fextra[slot]
                        if fused:
                            fused_total += 1
                            fusion_penalty_total += fextra
                    elif ns:
                        value0 = prf_values[w_s0p[slot]]
                        if ns > 1:
                            value1 = prf_values[w_s1p[slot]]
                    if collect_timing:
                        w_issue[slot] = cycle     # only timing records read it
                    class_id = op[1]
                    flags = op[0]
                    if class_id == CLASS_LOAD:
                        # Inlined load execution.
                        dyn = trace[seq]
                        address = (value0 + op[5]) & MASK64
                        if address != dyn.eff_addr:
                            raise CommitMismatchError(
                                f"load #{seq} computed address {address:#x}, "
                                f"architectural address {dyn.eff_addr:#x}"
                            )
                        w_eff[slot] = address
                        mem_bytes = op[3]
                        raw = None
                        if sq_entries:
                            check = sq_check(seq, address, mem_bytes)
                            if check.action == "forward":
                                raw = check.value
                                dcache_latency = l1d_latency
                                store_forwards += 1
                        if raw is None:
                            # Inlined Memory.read fast path (single page).
                            offset = address & 4095
                            if offset + mem_bytes <= 4096:
                                page = mem_pages.get(address >> 12)
                                raw = (0 if page is None else int.from_bytes(
                                    page[offset:offset + mem_bytes], "little"))
                            else:
                                raw = memory_read(address, mem_bytes)
                            access = caches_access(l1d_cache, address, cycle, False)
                            dcache_latency = access.latency
                        value = (sign_extend(raw, 8 * mem_bytes)
                                 if flags & DF_MEM_SIGNED else raw)
                        if value != dyn.result:
                            # A store the model believed non-conflicting
                            # actually overlapped (should be prevented by the
                            # violation check); fall back to the
                            # architectural value, account it as a replay.
                            stats.memory_order_violations += 1
                            stats.load_replays += 1
                            value = dyn.result
                            dcache_latency += violation_penalty
                        if w_replayed[slot]:
                            dcache_latency += violation_penalty
                        w_value[slot] = value
                        w_dcache[slot] = dcache_latency
                        total_latency = op[2] + fextra + dcache_latency
                        w_latency[slot] = total_latency
                        w_complete[slot] = cycle + total_latency
                        dest_preg = w_dest[slot]
                        if dest_preg >= 0:
                            ready = cycle + (total_latency
                                             if total_latency > sched_latency
                                             else sched_latency)
                            # Inlined PRF write + IssueQueue.wakeup.
                            prf_values[dest_preg] = value
                            prf_ready[dest_preg] = ready
                            if dest_preg in iq_waiters:
                                waiters = iq_waiters.pop(dest_preg)
                                bucket = iq_wakeups.get(ready)
                                if bucket is None:
                                    iq_wakeups[ready] = waiters
                                    heappush(wakeup_heap, ready)
                                else:
                                    bucket.extend(waiters)
                        continue          # loads are never branches
                    if class_id == CLASS_STORE:
                        # Inlined store execution.
                        dyn = trace[seq]
                        address = (value0 + op[5]) & MASK64
                        if address != dyn.eff_addr:
                            raise CommitMismatchError(
                                f"store #{seq} computed address {address:#x}, "
                                f"architectural address {dyn.eff_addr:#x}"
                            )
                        value = value1 & op[8]    # data masked to mem_bytes
                        w_eff[slot] = address
                        w_value[slot] = value
                        complete = cycle + op[2] + fextra
                        w_complete[slot] = complete
                        entry = sq_by_seq[seq]
                        entry.addr = address
                        entry.value = value
                        entry.executed = True
                        entry.complete_cycle = complete
                        continue          # stores are never branches
                    latency = op[2] + fextra
                    complete = cycle + latency
                    w_complete[slot] = complete
                    if flags & DF_COND_BRANCH:
                        opc = op[6]
                        if opc is op_bgt:
                            computed_taken = 0 < value0 < sign_limit
                        elif opc is op_bne:
                            computed_taken = value0 != 0
                        elif opc is op_beq:
                            computed_taken = value0 == 0
                        else:
                            computed_taken = branch_taken(opc, value0)
                        if computed_taken != trace[seq].taken:
                            raise CommitMismatchError(
                                f"branch #{seq} computed direction "
                                f"{computed_taken}, architectural "
                                f"direction {trace[seq].taken}"
                            )
                    elif op[4] >= 0:              # has a destination register
                        if flags & DF_CALL:
                            value = (trace[seq].pc + 4) & MASK64
                        else:
                            opc = op[6]
                            if opc is op_addi:
                                value = (value0 + op[5]) & MASK64
                            elif opc is op_add:
                                value = (value0 + value1) & MASK64
                            elif opc is op_andi:
                                value = value0 & (op[5] & MASK64)
                            elif opc is op_srli:
                                value = value0 >> (op[5] & 63)
                            elif opc is op_subi:
                                value = (value0 - op[5]) & MASK64
                            elif opc is op_sub:
                                value = (value0 - value1) & MASK64
                            elif opc is op_mov:
                                value = value0
                            else:
                                value = alu_eval(opc, value0, value1, op[5])
                        w_value[slot] = value
                        dest_preg = w_dest[slot]
                        if dest_preg >= 0:
                            ready = cycle + (latency if latency > sched_latency
                                             else sched_latency)
                            # Inlined PRF write + IssueQueue.wakeup.
                            prf_values[dest_preg] = value
                            prf_ready[dest_preg] = ready
                            if dest_preg in iq_waiters:
                                waiters = iq_waiters.pop(dest_preg)
                                bucket = iq_wakeups.get(ready)
                                if bucket is None:
                                    iq_wakeups[ready] = waiters
                                    heappush(wakeup_heap, ready)
                                else:
                                    bucket.extend(waiters)
                    if w_mispred[slot] and waiting_branch == seq:
                        fetch_resume = complete + front_end_depth
                        waiting_branch = _NO_BRANCH
                        stall_reason = STALL_BRANCH

            # ---------------- Fetch + rename + dispatch ----------------
            if fetch_index < total:
                if cycle < fetch_resume:
                    fetch_stalls += 1
                    if record_stats:
                        occ_stall[stall_reason] += 1
                else:
                    rob_room = rob_capacity - (fetch_index - committed)
                    iq_room = iq_capacity - (iq_count if inline_iq
                                             else issue_queue._count)
                    sq_room = sq_capacity - sq_len
                    lq_room = lq_capacity - lq_len
                    taken_branches = 0
                    dispatched = 0
                    pregs_allocated = 0
                    if reno_fast:
                        # Inlined RenoRenamer.begin_group.
                        if group_elim:
                            group_elim.clear()
                    elif not baseline_fast:
                        renamer_begin()
                    while dispatched < rename_width and fetch_index < total:
                        op = trace_ops[fetch_index]
                        flags = op[0]
                        dyn = trace[fetch_index]

                        # Structural stalls (checked conservatively before
                        # renaming; the room counters mirror the containers'
                        # free space).
                        if not rob_room:
                            stats.rob_stall_cycles += 1
                            break
                        if not iq_room:
                            stats.iq_stall_cycles += 1
                            break
                        if flags & DF_STORE:
                            if not sq_room:
                                stats.lsq_stall_cycles += 1
                                break
                        elif flags & DF_LOAD and not lq_room:
                            stats.lsq_stall_cycles += 1
                            break

                        # Instruction cache: one access per new block.
                        block = dyn.pc >> fb_shift
                        if block != last_fetch_block:
                            access = caches_access(l1i_cache, dyn.pc, cycle, False)
                            last_fetch_block = block
                            if not access.l1_hit:
                                fetch_resume = cycle + access.latency
                                stall_reason = STALL_ICACHE
                                break

                        # Taken-branch fetch limit.
                        is_taken_control = flags & DF_CONTROL and dyn.taken is True
                        if is_taken_control and taken_branches >= taken_branch_limit:
                            break

                        seq = fetch_index     # trace seq == dispatch order
                        slot = seq & mask
                        p0 = p1 = -1
                        if baseline_fast:
                            # Conventional renaming, inlined: map sources,
                            # allocate a fresh destination register (stall
                            # when the free list is empty).  Identical to
                            # BaselineRenamer.rename_next, minus the
                            # RenameResult/SourceOperand objects.
                            dest_logical = op[4]
                            if dest_logical >= 0 and not bfree:
                                stats.rename_stall_cycles += 1
                                break
                            srcs = op[9]
                            ns = len(srcs)
                            if ns:
                                # Displacements are always zero here and the
                                # execute path never reads them in this mode.
                                p0 = bmap[srcs[0]]
                                w_s0p[slot] = p0
                                if ns > 1:
                                    p1 = bmap[srcs[1]]
                                    w_s1p[slot] = p1
                            if collect_timing:
                                if ns == 0:
                                    producers_map[seq] = ()
                                elif ns == 1:
                                    producers_map[seq] = (preg_writer.get(p0, -1),)
                                else:
                                    producers_map[seq] = (
                                        preg_writer.get(p0, -1),
                                        preg_writer.get(p1, -1),
                                    )
                                w_issue[slot] = -1
                                w_dcache[slot] = 0
                                w_mispred[slot] = False
                                w_latency[slot] = op[2]
                            if dest_logical >= 0:
                                new_preg = bfree_popleft()
                                alloc_total += 1
                                w_prev[slot] = bmap[dest_logical]
                                bmap[dest_logical] = new_preg
                                prf_ready[new_preg] = NOT_READY
                                w_dest[slot] = new_preg
                                if collect_timing:
                                    preg_writer[new_preg] = seq
                                pregs_allocated += 1
                            else:
                                w_dest[slot] = -1
                                w_prev[slot] = -1
                            w_rename[slot] = None
                            eliminated = False
                            sources = None
                        elif reno_fast:
                            # Inlined RenoRenamer.rename_next, kept in
                            # lockstep with the method (both are exercised
                            # by the rename-invariant and scheduler
                            # equivalence property tests).
                            srcs = op[9]
                            sources = [rn_map[logical] for logical in srcs]
                            dest_logical = op[4]
                            elimination = None
                            if dest_logical >= 0:
                                if flags & rn_elig:
                                    elimination = rn_try_elim(
                                        dyn, op, sources, dest_logical)
                                if elimination is None and not reno_free:
                                    stats.rename_stall_cycles += 1
                                    break
                            result = RenameResult.__new__(RenameResult)
                            result.sources = sources
                            result.dest_preg = None
                            result.dest_disp = 0
                            result.prev_dest_preg = None
                            result.allocated = False
                            result.eliminated = False
                            result.elim_kind = None
                            result.needs_reexecution = False
                            result.fusion_extra_latency = 0
                            if elimination is not None:
                                kind, shared_preg, out_disp, needs_reexec = \
                                    elimination
                                # Inlined refcount share.
                                count = rc_counts[shared_preg]
                                if count <= 0:
                                    rn_rc.share(shared_preg)   # raises
                                else:
                                    count += 1
                                    rc_counts[shared_preg] = count
                                    rn_rc.total_shares += 1
                                    if count > rn_rc.max_observed_count:
                                        rn_rc.max_observed_count = count
                                previous = rn_map[dest_logical]
                                rn_map[dest_logical] = (
                                    rn_zero[shared_preg] if out_disp == 0
                                    else Mapping(shared_preg, out_disp))
                                prev_preg = previous.preg
                                result.dest_preg = shared_preg
                                result.dest_disp = out_disp
                                result.prev_dest_preg = prev_preg
                                result.eliminated = True
                                result.elim_kind = kind
                                result.needs_reexecution = needs_reexec
                                group_elim.add(dest_logical)
                                rn_stats[elim_keys[kind]] += 1
                                eliminated = True
                                w_prev[slot] = prev_preg
                                w_elim[slot] = (_ELIM_IDS[kind]
                                                | (_ELIM_REEXEC if needs_reexec
                                                   else 0))
                                w_dest[slot] = -1
                            else:
                                if dest_logical >= 0:
                                    # Inlined refcount allocate.
                                    new_preg = reno_free.popleft()
                                    if rc_counts[new_preg] != 0:
                                        reno_free.appendleft(new_preg)
                                        rn_rc.allocate()       # raises
                                    rc_counts[new_preg] = 1
                                    rn_rc.total_allocations += 1
                                    previous = rn_map[dest_logical]
                                    rn_map[dest_logical] = rn_zero[new_preg]
                                    prev_preg = previous.preg
                                    result.dest_preg = new_preg
                                    result.prev_dest_preg = prev_preg
                                    result.allocated = True
                                    prf_ready[new_preg] = NOT_READY
                                    w_dest[slot] = new_preg
                                    w_prev[slot] = prev_preg
                                    if collect_timing:
                                        preg_writer[new_preg] = seq
                                    pregs_allocated += 1
                                else:
                                    w_dest[slot] = -1
                                    w_prev[slot] = -1
                                w_elim[slot] = 0
                                eliminated = False
                                for mapping in sources:
                                    if mapping.disp:
                                        result.fusion_extra_latency = \
                                            fusion_extra(
                                                op[6],
                                                [m.disp for m in sources],
                                                rn_config)
                                        break
                                if rn_it is not None and (flags & df_mem
                                                          or rn_policy_full):
                                    rn_insert_it(dyn, op, sources, result)
                            w_rename[slot] = result
                            if collect_timing:
                                record_producers(seq, result)
                                w_issue[slot] = -1
                                w_dcache[slot] = 0
                                w_mispred[slot] = False
                                w_latency[slot] = op[2]
                        else:
                            # Pluggable renaming: one interface call per
                            # instruction.
                            result = rename_next(dyn, op)
                            if result is None:
                                stats.rename_stall_cycles += 1
                                break
                            w_rename[slot] = result
                            # Flatten the commit-relevant fields so the
                            # commit loop stays object-free (see elim_info).
                            prev = result.prev_dest_preg
                            w_prev[slot] = -1 if prev is None else prev
                            if result.eliminated:
                                w_elim[slot] = (
                                    _ELIM_IDS.get(result.elim_kind, 8)
                                    | (_ELIM_REEXEC if result.needs_reexecution
                                       else 0))
                            else:
                                w_elim[slot] = 0
                            if collect_timing:
                                record_producers(seq, result)
                                w_issue[slot] = -1
                                w_dcache[slot] = 0
                                w_mispred[slot] = False
                                w_latency[slot] = op[2]
                            if result.allocated:
                                dest_preg = result.dest_preg
                                prf_ready[dest_preg] = NOT_READY
                                w_dest[slot] = dest_preg
                                if collect_timing:
                                    preg_writer[dest_preg] = seq
                                pregs_allocated += 1
                            else:
                                w_dest[slot] = -1
                            eliminated = result.eliminated
                            sources = result.sources
                        w_dispatch[slot] = cycle
                        w_decoded[slot] = op

                        if is_taken_control:
                            taken_branches += 1

                        # Branch prediction.  Conditional branches (the
                        # common control class) are handled inline: direction
                        # predict+train, then the BTB check only on correct
                        # taken predictions — identical to BranchUnit.process.
                        stop_after = False
                        if flags & DF_CONTROL:
                            if flags & DF_COND_BRANCH:
                                branch_unit.conditional_branches += 1
                                predicted_taken = branch_predict_update(
                                    dyn.pc, is_taken_control)
                                if predicted_taken != is_taken_control:
                                    branch_unit.mispredictions += 1
                                    w_mispred[slot] = True
                                    waiting_branch = seq
                                    fetch_resume = _STALLED
                                    stall_reason = STALL_BRANCH
                                    stop_after = True
                                elif is_taken_control:
                                    outcome = branch_check_target(dyn)
                                    if outcome.mispredicted:
                                        # Target unknown at fetch but
                                        # computable at decode: a short
                                        # front-end bubble, not a full
                                        # misprediction.
                                        fetch_resume = cycle + 2
                                        stall_reason = STALL_FRONTEND
                                        stop_after = True
                            else:
                                outcome = branch_process(dyn)
                                if outcome.mispredicted:
                                    if outcome.reason == "btb":
                                        fetch_resume = cycle + 2
                                        stall_reason = STALL_FRONTEND
                                    else:
                                        w_mispred[slot] = True
                                        waiting_branch = seq
                                        fetch_resume = _STALLED
                                        stall_reason = STALL_BRANCH
                                    stop_after = True

                        # Insertion: initialise the slot and, unless the
                        # instruction was collapsed away, enter the IQ/LSQ.
                        # Capacity was already checked above.
                        rob_room -= 1
                        if eliminated or flags & DF_NO_EXECUTE:
                            # Collapsed out of the execution core (or a
                            # NOP/HALT): no issue-queue entry, no execution —
                            # immediately complete for retirement purposes.
                            w_complete[slot] = cycle
                        else:
                            class_id = op[1]
                            if baseline_fast:
                                w_nsrc[slot] = ns
                                # Inlined IssueQueue.add over the local
                                # operand pregs (each source registers its
                                # own wakeup, duplicates included).
                                iq_class[slot] = class_id
                                pending = 0
                                if ns:
                                    ready_at = prf_ready[p0]
                                    if ready_at > cycle:
                                        pending = 1
                                        if ready_at == NOT_READY:
                                            bucket = iq_waiters.get(p0)
                                            if bucket is None:
                                                iq_waiters[p0] = [seq]
                                            else:
                                                bucket.append(seq)
                                        else:
                                            bucket = iq_wakeups.get(ready_at)
                                            if bucket is None:
                                                iq_wakeups[ready_at] = [seq]
                                                heappush(wakeup_heap, ready_at)
                                            else:
                                                bucket.append(seq)
                                    if ns > 1:
                                        ready_at = prf_ready[p1]
                                        if ready_at > cycle:
                                            pending += 1
                                            if ready_at == NOT_READY:
                                                bucket = iq_waiters.get(p1)
                                                if bucket is None:
                                                    iq_waiters[p1] = [seq]
                                                else:
                                                    bucket.append(seq)
                                            else:
                                                bucket = iq_wakeups.get(ready_at)
                                                if bucket is None:
                                                    iq_wakeups[ready_at] = [seq]
                                                    heappush(wakeup_heap, ready_at)
                                                else:
                                                    bucket.append(seq)
                                if pending:
                                    w_waiting[slot] = pending
                                else:
                                    iq_ready_total += 1
                                    ready = iq_ready[class_id]
                                    if ready and seq < ready[-1]:
                                        insort(ready, seq)
                                    else:
                                        ready.append(seq)
                                iq_count += 1
                            else:
                                w_fextra[slot] = result.fusion_extra_latency
                                ns = len(sources)
                                if ns:
                                    source = sources[0]
                                    w_s0p[slot] = source.preg
                                    w_s0d[slot] = source.disp
                                    if ns > 1:
                                        source = sources[1]
                                        w_s1p[slot] = source.preg
                                        w_s1d[slot] = source.disp
                                w_nsrc[slot] = ns
                                if inline_iq:
                                    # Inlined IssueQueue.add over the rename
                                    # result's source operands.
                                    iq_class[slot] = class_id
                                    pending = 0
                                    for source in sources:
                                        preg = source.preg
                                        ready_at = prf_ready[preg]
                                        if ready_at <= cycle:
                                            continue
                                        pending += 1
                                        if ready_at == NOT_READY:
                                            bucket = iq_waiters.get(preg)
                                            if bucket is None:
                                                iq_waiters[preg] = [seq]
                                            else:
                                                bucket.append(seq)
                                        else:
                                            bucket = iq_wakeups.get(ready_at)
                                            if bucket is None:
                                                iq_wakeups[ready_at] = [seq]
                                                heappush(wakeup_heap, ready_at)
                                            else:
                                                bucket.append(seq)
                                    if pending:
                                        w_waiting[slot] = pending
                                    else:
                                        iq_ready_total += 1
                                        ready = iq_ready[class_id]
                                        if ready and seq < ready[-1]:
                                            insort(ready, seq)
                                        else:
                                            ready.append(seq)
                                    iq_count += 1
                                else:
                                    # Substituted queue (reference model):
                                    # go through the interface.
                                    iq_add(seq, cycle, sources, class_id)
                                    iq_count = issue_queue._count
                            if class_id == CLASS_STORE:
                                entry = StoreQueueEntry(
                                    seq, dyn.pc, op[3], dyn.eff_addr)
                                sq_entries.append(entry)
                                sq_by_seq[seq] = entry
                                sq_room -= 1
                                sq_len += 1
                            elif class_id == CLASS_LOAD:
                                lq_add(seq)
                                lq_room -= 1
                                lq_len += 1
                                w_replayed[slot] = False
                            w_complete[slot] = NO_COMPLETE
                            iq_room -= 1
                        fetch_index += 1
                        dispatched += 1
                        if stop_after:
                            break
                    if not (baseline_fast or reno_fast):
                        renamer_end()     # RenoRenamer.end_group is a no-op
                    if dispatched:
                        fetched_total += dispatched
                    if pregs_allocated:
                        pregs_alloc_total += pregs_allocated
                        # The peak can only move right after allocations
                        # (commit-side frees can only lower occupancy), so
                        # allocation-free cycles skip the check.
                        if baseline_fast:
                            in_use = num_pregs - len(bfree)
                        elif reno_fast:
                            in_use = num_pregs - len(reno_free)
                        else:
                            in_use = num_pregs - free_count()
                        if in_use > stats.max_pregs_in_use:
                            stats.max_pregs_in_use = in_use

            # ---------------- Observability (opt-in) ----------------
            # End-of-cycle occupancy sampling; one histogram bump per
            # structure.  Off by default: the whole block is one local
            # boolean test then.
            if record_stats:
                rob_now = fetch_index - committed
                iq_now = iq_count if inline_iq else issue_queue._count
                if baseline_fast:
                    prf_used = num_pregs - len(bfree)
                elif reno_fast:
                    prf_used = num_pregs - len(reno_free)
                else:
                    prf_used = num_pregs - free_count()
                occ_rob[rob_now] += 1
                occ_iq[iq_now] += 1
                occ_prf[prf_used] += 1
                occ_sq[sq_len] += 1
                occ_lq[lq_len] += 1
                occ_ready[0][len(iq_ready[0])] += 1
                occ_ready[1][len(iq_ready[1])] += 1
                occ_ready[2][len(iq_ready[2])] += 1
                occ_ready[3][len(iq_ready[3])] += 1
                issued_now = len(selected)
                occ_issued[issued_now] += 1
                if issued_now:
                    for sseq in selected:
                        occ_class[iq_class[sseq & mask]] += 1
                if tl_stride and not cycle % tl_stride:
                    tl_record((cycle, committed, issued_now, rob_now,
                               iq_now, prf_used, sq_len, lq_len))
            cycle += 1

            # ---------------- Event-driven fast-forward ----------------
            # Find the earliest cycle at which any phase can act again and
            # jump there.
            if committed >= total:
                continue                      # simulation just finished
            if iq_ready_total if inline_iq else issue_queue._ready_total:
                continue                      # an issue may happen next cycle
            idle = wakeup_heap[0] if wakeup_heap else NOT_READY
            if idle <= cycle:
                continue
            target = idle
            fetching = fetch_index < total
            if fetching:
                if fetch_resume <= cycle:
                    continue                  # front end is active next cycle
                if fetch_resume < target:
                    target = fetch_resume
            head_ready = w_complete[committed & mask] + 1
            if head_ready < target:
                target = head_ready
            # A waiting or absent head carries NO_COMPLETE (beyond every
            # target candidate): it cannot commit until it issues, and no
            # issue can happen before `idle` — already covered.
            if target > stop:
                target = stop         # never fast-forward past a slice cut
            if target <= cycle:
                continue
            if target > max_cycles:
                target = max_cycles           # let the runaway guard fire
            if fetching:
                # Exactly what the skipped dispatch phases would have counted.
                fetch_stalls += target - cycle
            if record_stats:
                # The skipped stretch is a pure no-op (nothing issues,
                # commits or dispatches), so every skipped cycle would have
                # sampled the frozen end-of-cycle state with zero issue and
                # empty ready lists.  Credit the histograms in bulk so the
                # event-driven run stays byte-identical to cycle-by-cycle
                # (and to any sliced + resumed replay of it).
                skipped = target - cycle
                if fetching:
                    occ_stall[stall_reason] += skipped
                rob_now = fetch_index - committed
                iq_now = iq_count if inline_iq else issue_queue._count
                if baseline_fast:
                    prf_used = num_pregs - len(bfree)
                elif reno_fast:
                    prf_used = num_pregs - len(reno_free)
                else:
                    prf_used = num_pregs - free_count()
                occ_rob[rob_now] += skipped
                occ_iq[iq_now] += skipped
                occ_prf[prf_used] += skipped
                occ_sq[sq_len] += skipped
                occ_lq[lq_len] += skipped
                occ_ready[0][0] += skipped
                occ_ready[1][0] += skipped
                occ_ready[2][0] += skipped
                occ_ready[3][0] += skipped
                occ_issued[0] += skipped
                if tl_stride:
                    # The strided sample points inside [cycle, target).
                    tl_cycle = cycle + (-cycle) % tl_stride
                    while tl_cycle < target:
                        tl_record((tl_cycle, committed, 0, rob_now,
                                   iq_now, prf_used, sq_len, lq_len))
                        tl_cycle += tl_stride
            cycle = target

        # Mirror the loop's local state back onto the objects for
        # introspection (tests, debugging, the ROB/IQ counters).
        self._flush_loop_stats(
            stats, cycle, committed, issued_total, fetched_total,
            fetch_stalls, pregs_alloc_total, fused_total,
            fusion_penalty_total, store_forwards, elim_moves, elim_folds,
            elim_cse, elim_ra)
        self._cycle = cycle
        self._committed = committed
        self._fetch_index = fetch_index
        self._fetch_resume_cycle = fetch_resume
        self._waiting_branch = waiting_branch
        self._last_fetch_block = last_fetch_block
        self._fetch_stall_reason = stall_reason
        self.rob.head_seq = committed
        self.rob.tail_seq = fetch_index
        if inline_iq:
            issue_queue._count = iq_count
            issue_queue._ready_total = iq_ready_total
        if baseline_fast:
            renamer.allocations += alloc_total

    @staticmethod
    def _flush_loop_stats(
        stats: SimStats,
        cycle: int,
        committed: int,
        issued_total: int,
        fetched_total: int,
        fetch_stalls: int,
        pregs_alloc_total: int,
        fused_total: int,
        fusion_penalty_total: int,
        store_forwards: int,
        elim_moves: int,
        elim_folds: int,
        elim_cse: int,
        elim_ra: int,
    ) -> None:
        """Fold the cycle loop's locally accumulated counters into ``stats``."""
        stats.cycles = cycle
        stats.committed = committed
        if stats.occupancy is not None:
            stats.occupancy.cycles = cycle
        stats.issued += issued_total
        stats.fetched += fetched_total
        stats.fetch_stall_cycles += fetch_stalls
        stats.pregs_allocated += pregs_alloc_total
        stats.fused_operations += fused_total
        stats.fusion_penalty_cycles += fusion_penalty_total
        stats.store_forwards += store_forwards
        stats.eliminated_moves += elim_moves
        stats.eliminated_folds += elim_folds
        stats.eliminated_cse += elim_cse
        stats.eliminated_ra += elim_ra

    def _merge_component_stats(self) -> None:
        stats = self.stats
        stats.branch_mispredictions = self.branch_unit.mispredictions
        stats.btb_misses = self.branch_unit.btb_misses
        stats.ras_mispredictions = self.branch_unit.ras_mispredictions
        stats.icache_misses = self.caches.l1i.misses
        stats.dcache_accesses = self.caches.l1d.accesses
        stats.dcache_misses = self.caches.l1d.misses
        stats.l2_misses = self.caches.l2.misses
        extra_stats = getattr(self.renamer, "stats", None)
        if extra_stats:
            stats.it_lookups = extra_stats.get("it_lookups", 0)
            stats.it_hits = extra_stats.get("it_hits", 0)
            stats.it_insertions = extra_stats.get("it_insertions", 0)
            stats.integration_value_mismatches = extra_stats.get("it_value_mismatches", 0)

    def _final_registers(self) -> list[int]:
        """Architectural register values reconstructed from the map table."""
        values = []
        for preg, disp in self.renamer.mapping_snapshot():
            values.append(mask64(self.prf.read(preg) + disp))
        return values

    # ------------------------------------------------------------------
    # Rare-path helpers (the common paths are inlined in _run_cycles)
    # ------------------------------------------------------------------

    def _reexecute_load(self, seq: int, op: tuple, cycle: int) -> None:
        """Re-execute an integration-eliminated load through the retire port."""
        dyn = self.trace[seq]
        rename = self._w_rename[seq & self._w_mask]
        raw = self.memory.read(dyn.eff_addr, op[3])
        value = sign_extend(raw, 8 * op[3]) if op[0] & DF_MEM_SIGNED else raw
        shared = mask64(self.prf.read(rename.dest_preg) + rename.dest_disp)
        if value != shared:
            self.stats.integration_value_mismatches += 1
        self.stats.reexecuted_loads += 1
        self.caches.access_data_read(dyn.eff_addr, cycle)

    def _check_value(self, seq: int, slot: int) -> None:
        dyn = self.trace[seq]
        if dyn.instruction.dest_register is None or dyn.result is None:
            return
        rename = self._w_rename[slot]
        if rename is not None and rename.eliminated:
            produced = mask64(self.prf.read(rename.dest_preg) + rename.dest_disp)
        else:
            produced = self._w_value[slot]
        if produced != dyn.result:
            eliminated = rename is not None and rename.eliminated
            kind = rename.elim_kind if rename is not None else None
            raise CommitMismatchError(
                f"instruction #{seq} {dyn.instruction} produced {produced:#x}, "
                f"architectural result is {dyn.result:#x} "
                f"(eliminated={eliminated}, kind={kind})"
            )

    def _load_can_issue(self, seq: int, cycle: int) -> bool:
        entries = self.store_queue.entries
        if not entries:
            # No older store can conflict and the disambiguation walk would
            # find nothing: the load may issue.
            return True
        dyn = self.trace[seq]
        # Store-set predicted dependence: wait until every older in-flight
        # store belonging to the load's store set has executed.
        ssit = self.store_sets._ssit
        ss_mask = self.store_sets.entries - 1
        load_set = ssit[(dyn.pc >> 2) & ss_mask]
        if load_set is not None:
            for entry in entries:
                if (entry.seq < seq and not entry.executed
                        and ssit[(entry.pc >> 2) & ss_mask] == load_set):
                    return False
        check = self.store_queue.check_load(
            seq, dyn.eff_addr, self._decoded[dyn.index][3])
        action = check.action
        if action == "memory" or action == "forward":
            return True
        if action == "violation":
            # The load would consume stale data.  Model the squash: hold the
            # load until the conflicting store executes, charge the penalty
            # once, and train the store-set predictor.
            if seq not in self._violated_loads:
                self._violated_loads.add(seq)
                self.stats.memory_order_violations += 1
                self.stats.load_replays += 1
                self._w_replayed[seq & self._w_mask] = True
                self.store_sets.train_violation(dyn.pc, check.store.pc)
        return False

    def _record_producers(self, seq: int, result) -> None:
        producers = tuple(
            self._preg_writer.get(source.preg, -1) for source in result.sources
        )
        if result.eliminated and result.dest_preg is not None:
            producers = producers + (self._preg_writer.get(result.dest_preg, -1),)
        self._producers[seq] = producers
