"""First-class occupancy / utilization observability for the timing core.

Two opt-in instruments live here, both recorded by the pipeline's cycle
loop when it runs with ``record_stats=True``:

* :class:`OccupancyStats` — per-structure occupancy histograms (ROB,
  issue queue, physical register file, store/load queues, per-class
  scheduler ready lists), a per-cycle issue-width histogram with
  per-class issue totals, and a fetch-stall attribution breakdown.
  Every histogram is a dense ``counts[occupancy] = cycles`` list sized
  to the structure's capacity, so the hot loop records one ``+= 1`` per
  structure per cycle and all means/peaks/utilizations are derived
  afterwards.
* :class:`TimelineRecorder` — a strided ring buffer of per-cycle rows
  ``(cycle, committed, issued, rob, iq, prf, sq, lq)`` for plotting an
  execution timeline without holding one row per simulated cycle.

Both are plain picklable containers: they deep-copy with the pipeline's
snapshot state, so sliced + resumed runs accumulate byte-identical
observability data (the property tests in
``tests/uarch/test_snapshot_restore.py`` check exactly that).

Overhead model: with ``record_stats=False`` the pipeline allocates
neither object and the cycle loop's only cost is one pre-bound local
boolean test; the perf-smoke gate (``scripts/perf_smoke.py``) measures
that off-mode path against the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fetch-stall attribution buckets (indices into
#: :attr:`OccupancyStats.fetch_stall_reasons`).
STALL_BRANCH = 0     #: waiting out a branch misprediction / redirect refill
STALL_ICACHE = 1     #: waiting out an instruction-cache miss
STALL_FRONTEND = 2   #: a short front-end bubble (BTB miss on a taken branch)

#: Human-readable names for the stall buckets, index-aligned.
STALL_REASON_NAMES = ("branch", "icache", "frontend")

#: Scheduler class names, index-aligned with the issue queue's class ids.
ISSUE_CLASS_NAMES = ("int", "load", "store", "fp")


def _histogram_mean(counts: list[int], cycles: int) -> float:
    """Mean occupancy of a dense ``counts[occupancy] = cycles`` histogram."""
    if not cycles:
        return 0.0
    return sum(occ * n for occ, n in enumerate(counts)) / cycles


def _histogram_peak(counts: list[int]) -> int:
    """Highest occupancy that was ever observed (0 for an empty histogram)."""
    for occ in range(len(counts) - 1, -1, -1):
        if counts[occ]:
            return occ
    return 0


def _encode_histogram(counts: list[int]) -> list[list[int]]:
    """Sparse JSON form of a dense histogram: sorted ``[occ, cycles]`` pairs."""
    return [[occ, n] for occ, n in enumerate(counts) if n]


def _decode_histogram(pairs: list, size: int) -> list[int]:
    """Inverse of :func:`_encode_histogram` back into a dense list."""
    counts = [0] * size
    for occ, n in pairs:
        counts[occ] = n
    return counts


def _structure_summary(counts: list[int], capacity: int, cycles: int) -> dict:
    """The derived view of one structure histogram (mean/peak/utilization)."""
    mean = _histogram_mean(counts, cycles)
    return {
        "capacity": capacity,
        "mean": mean,
        "peak": _histogram_peak(counts),
        "utilization": mean / capacity if capacity else 0.0,
    }


@dataclass
class OccupancyStats:
    """Per-structure occupancy histograms for one timing-simulation run.

    Attributes:
        cycles: Cycles covered by the histograms (== ``SimStats.cycles``).
        rob_capacity: ROB entries (histogram index range is 0..capacity).
        iq_capacity: Issue-queue entries.
        prf_capacity: Physical registers.
        sq_capacity: Store-queue entries.
        lq_capacity: Load-queue entries.
        issue_width: Machine ``total_issue`` (issue-histogram index range).
        rob: ``rob[n]`` = cycles the ROB held exactly ``n`` instructions.
        iq: Issue-queue occupancy histogram.
        prf: Physical-registers-in-use histogram.
        sq: Store-queue occupancy histogram.
        lq: Load-queue occupancy histogram.
        ready: Four per-class ready-list depth histograms
            (:data:`ISSUE_CLASS_NAMES` order).
        issued: ``issued[n]`` = cycles exactly ``n`` instructions issued.
        issued_by_class: Total instructions issued per scheduler class.
        fetch_stall_reasons: Fetch-stall cycles per
            :data:`STALL_REASON_NAMES` bucket (sums to
            ``SimStats.fetch_stall_cycles``).
    """

    cycles: int = 0
    rob_capacity: int = 0
    iq_capacity: int = 0
    prf_capacity: int = 0
    sq_capacity: int = 0
    lq_capacity: int = 0
    issue_width: int = 0
    rob: list[int] = field(default_factory=list)
    iq: list[int] = field(default_factory=list)
    prf: list[int] = field(default_factory=list)
    sq: list[int] = field(default_factory=list)
    lq: list[int] = field(default_factory=list)
    ready: list[list[int]] = field(default_factory=list)
    issued: list[int] = field(default_factory=list)
    issued_by_class: list[int] = field(default_factory=lambda: [0, 0, 0, 0])
    fetch_stall_reasons: list[int] = field(default_factory=lambda: [0, 0, 0])

    @classmethod
    def for_config(cls, config) -> "OccupancyStats":
        """Fresh zeroed histograms sized for one ``MachineConfig``."""
        iq_size = config.issue_queue_size
        return cls(
            rob_capacity=config.rob_size,
            iq_capacity=iq_size,
            prf_capacity=config.num_physical_regs,
            sq_capacity=config.store_queue_size,
            lq_capacity=config.load_queue_size,
            issue_width=config.total_issue,
            rob=[0] * (config.rob_size + 1),
            iq=[0] * (iq_size + 1),
            prf=[0] * (config.num_physical_regs + 1),
            sq=[0] * (config.store_queue_size + 1),
            lq=[0] * (config.load_queue_size + 1),
            ready=[[0] * (iq_size + 1) for _ in range(4)],
            issued=[0] * (config.total_issue + 1),
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """JSON-safe derived view: utilization per structure, issue-port
        utilization per class, and the fetch-stall breakdown."""
        cycles = self.cycles
        issued_total = sum(self.issued_by_class)
        port_cycles = cycles * self.issue_width
        return {
            "cycles": cycles,
            "structures": {
                "rob": _structure_summary(self.rob, self.rob_capacity, cycles),
                "iq": _structure_summary(self.iq, self.iq_capacity, cycles),
                "prf": _structure_summary(self.prf, self.prf_capacity, cycles),
                "sq": _structure_summary(self.sq, self.sq_capacity, cycles),
                "lq": _structure_summary(self.lq, self.lq_capacity, cycles),
            },
            "ready": {
                name: _histogram_mean(self.ready[index], cycles)
                for index, name in enumerate(ISSUE_CLASS_NAMES)
            } if self.ready else {},
            "issue": {
                "width": self.issue_width,
                "mean": issued_total / cycles if cycles else 0.0,
                "utilization": issued_total / port_cycles if port_cycles else 0.0,
                "by_class": {
                    name: self.issued_by_class[index]
                    for index, name in enumerate(ISSUE_CLASS_NAMES)
                },
            },
            "fetch_stalls": {
                name: self.fetch_stall_reasons[index]
                for index, name in enumerate(STALL_REASON_NAMES)
            },
        }

    # ------------------------------------------------------------------
    # Serialization (reports, wire schema)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Exact JSON-safe form (histograms sparse-encoded); inverse of
        :meth:`from_dict`."""
        return {
            "cycles": self.cycles,
            "capacities": {
                "rob": self.rob_capacity,
                "iq": self.iq_capacity,
                "prf": self.prf_capacity,
                "sq": self.sq_capacity,
                "lq": self.lq_capacity,
                "issue": self.issue_width,
            },
            "rob": _encode_histogram(self.rob),
            "iq": _encode_histogram(self.iq),
            "prf": _encode_histogram(self.prf),
            "sq": _encode_histogram(self.sq),
            "lq": _encode_histogram(self.lq),
            "ready": [_encode_histogram(counts) for counts in self.ready],
            "issued": _encode_histogram(self.issued),
            "issued_by_class": list(self.issued_by_class),
            "fetch_stall_reasons": list(self.fetch_stall_reasons),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OccupancyStats":
        """Rebuild from :meth:`to_dict` output (exact round-trip)."""
        caps = data["capacities"]
        iq_size = caps["iq"]
        return cls(
            cycles=data["cycles"],
            rob_capacity=caps["rob"],
            iq_capacity=iq_size,
            prf_capacity=caps["prf"],
            sq_capacity=caps["sq"],
            lq_capacity=caps["lq"],
            issue_width=caps["issue"],
            rob=_decode_histogram(data["rob"], caps["rob"] + 1),
            iq=_decode_histogram(data["iq"], iq_size + 1),
            prf=_decode_histogram(data["prf"], caps["prf"] + 1),
            sq=_decode_histogram(data["sq"], caps["sq"] + 1),
            lq=_decode_histogram(data["lq"], caps["lq"] + 1),
            ready=[_decode_histogram(pairs, iq_size + 1)
                   for pairs in data["ready"]],
            issued=_decode_histogram(data["issued"], caps["issue"] + 1),
            issued_by_class=list(data["issued_by_class"]),
            fetch_stall_reasons=list(data["fetch_stall_reasons"]),
        )


#: Default timeline ring-buffer size (rows kept; older rows are overwritten).
DEFAULT_TIMELINE_CAPACITY = 4096


@dataclass
class TimelineRecorder:
    """A strided ring buffer of per-cycle pipeline rows.

    Every ``stride``-th cycle the pipeline records one row
    ``(cycle, committed, issued, rob, iq, prf, sq, lq)``; once ``capacity``
    rows exist the oldest is overwritten, so memory stays bounded on
    arbitrarily long runs while the tail of the execution stays inspectable.

    Attributes:
        stride: Record one row every this many cycles (>= 1).
        capacity: Maximum rows retained.
        rows: The raw ring storage (use :meth:`ordered` for oldest-first).
        total: Rows ever recorded (> ``capacity`` once the ring wrapped).
    """

    stride: int = 1
    capacity: int = DEFAULT_TIMELINE_CAPACITY
    rows: list[tuple] = field(default_factory=list)
    total: int = 0

    def record(self, row: tuple) -> None:
        """Append one row, overwriting the oldest once the ring is full."""
        index = self.total % self.capacity
        if index == len(self.rows):
            self.rows.append(row)
        else:
            self.rows[index] = row
        self.total += 1

    def ordered(self) -> list[tuple]:
        """The retained rows, oldest first."""
        if self.total <= self.capacity:
            return list(self.rows)
        split = self.total % self.capacity
        return self.rows[split:] + self.rows[:split]

    def to_dict(self) -> dict:
        """JSON-safe form: the row column names plus the ordered rows."""
        return {
            "stride": self.stride,
            "capacity": self.capacity,
            "total": self.total,
            "columns": ["cycle", "committed", "issued",
                        "rob", "iq", "prf", "sq", "lq"],
            "rows": [list(row) for row in self.ordered()],
        }
