"""Pluggable cycle-loop backends.

:meth:`repro.uarch.core.Pipeline.run` does not hard-code the interpreter
loop: it dispatches each slice of cycles through a *backend* object
implementing :class:`CycleLoopBackend`.  Two backends ship with the repo:

* ``python`` — the reference implementation, the inlined interpreter-style
  loop in :meth:`repro.uarch.core.Pipeline._run_cycles` (byte-for-byte the
  pre-backend behaviour, always available).
* ``compiled`` — a generated-C kernel over the same structure-of-arrays
  state (:mod:`repro.uarch.compiled`), compiled on first use with the
  system C compiler and falling back to ``python`` silently when no
  toolchain is present.

Backends are cycle-exact by contract: for any (program, trace, config,
renamer) the statistics, final architectural registers, occupancy
histograms and the results of any sliced/snapshotted continuation must be
identical whichever backend ran the cycles, including across a mid-run
switch.  (Internal container *layout* with no behavioural meaning — e.g.
which valid binary-heap ordering the wakeup heap happens to be in — may
differ; everything observable may not.)  The equivalence property tests in
``tests/uarch/test_backends.py`` enforce this.

Selection order: an explicit ``backend=`` argument (CLI ``--backend``,
``SweepSpec.backend``, fleet lease payloads ultimately land here), else the
``REPRO_BACKEND`` environment variable, else ``python``.  Requesting an
*unknown* name raises; requesting a known-but-unavailable backend degrades
to ``python`` without a warning, so the same command line works on hosts
with and without a C toolchain.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.uarch.core import Pipeline

#: Environment variable consulted when no backend is requested explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The always-available reference backend every other backend must match.
DEFAULT_BACKEND = "python"


class CycleLoopBackend:
    """Interface for cycle-loop implementations.

    A backend runs slices of the simulation loop over a live
    :class:`~repro.uarch.core.Pipeline`'s mutable state (the
    :class:`~repro.uarch.inflight.InFlightWindow`, scheduler, renamer,
    memory system and statistics).  It must honor ``stop_cycle`` slice
    boundaries, leave every piece of snapshot-covered state exactly as the
    reference loop would, and keep the opt-in observability probes
    (``record_stats`` histograms, timeline rows) identical.

    Attributes:
        name: Registry key and user-facing selector for this backend.
    """

    name: str = "abstract"

    def available(self) -> bool:
        """Whether this backend can run at all on this host.

        Called once per resolution; an unavailable backend resolves to
        ``python`` silently.  The base implementation says yes.
        """
        return True

    def supports(self, pipeline: "Pipeline") -> bool:
        """Whether this backend can run *this* pipeline's cycles.

        Checked per :meth:`run_cycles` call by backends with partial
        feature coverage; a backend that answers False for a pipeline must
        delegate that pipeline's slices to the ``python`` reference.  The
        base implementation supports everything.
        """
        return True

    def prepare(self, pipeline: "Pipeline") -> None:
        """One-time per-pipeline hook, called from ``Pipeline.__init__``.

        Backends use this to build or fetch per-trace caches outside the
        timed region (the benchmark probes time :meth:`run_cycles` only).
        The base implementation does nothing.
        """

    def run_cycles(self, pipeline: "Pipeline", stop_cycle: int | None) -> None:
        """Run the cycle loop until the trace retires or ``stop_cycle``.

        Semantics are exactly those of
        :meth:`repro.uarch.core.Pipeline._run_cycles`: simulate whole
        cycles, cut the slice only at the top of a cycle once
        ``cycle >= stop_cycle``, mirror all cursors back onto the pipeline,
        and raise the same errors (``RuntimeError`` past ``max_cycles``,
        :class:`~repro.uarch.core.CommitMismatchError` on a value check).
        """
        raise NotImplementedError


class PythonBackend(CycleLoopBackend):
    """The reference backend: the inlined interpreter loop in ``core``.

    This is deliberately a thin delegate — the loop body itself stays in
    :meth:`repro.uarch.core.Pipeline._run_cycles`, unchanged, so the
    reference implementation remains next to the pipeline state it
    mutates.
    """

    name = "python"

    def run_cycles(self, pipeline: "Pipeline", stop_cycle: int | None) -> None:
        """Delegate to the pipeline's own interpreter loop."""
        pipeline._run_cycles(stop_cycle)


_REGISTRY: dict[str, CycleLoopBackend] = {}
_BUILTINS_LOADED = False


def register_backend(backend: CycleLoopBackend) -> None:
    """Add ``backend`` to the registry under ``backend.name``.

    Re-registering a name replaces the previous entry (used by tests to
    substitute instrumented backends).
    """
    _REGISTRY[backend.name] = backend


def _ensure_builtins() -> None:
    """Import the built-in non-reference backends exactly once.

    The compiled backend lives in its own package and registers itself on
    import; importing it lazily keeps ``repro.uarch.core`` import-time free
    of the codegen machinery and avoids an import cycle.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.uarch.compiled import backend as _compiled  # noqa: F401


def backend_names() -> list[str]:
    """Sorted names of every registered backend (available or not)."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def get_backend(name: str) -> CycleLoopBackend:
    """Look up a backend by name.

    Raises:
        ValueError: If no backend with that name is registered.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown backend {name!r} (known: {known})") from None


def resolve_backend(
    requested: "str | CycleLoopBackend | None" = None,
) -> CycleLoopBackend:
    """Resolve a backend request to a usable backend object.

    Args:
        requested: An explicit backend object (returned as-is), a backend
            name, or None to consult ``REPRO_BACKEND`` and fall back to
            ``python``.

    Returns:
        The requested backend if it is available, else the ``python``
        reference (silent degradation — results are backend-independent,
        so falling back changes speed, never numbers).

    Raises:
        ValueError: If a backend *name* was given (directly or via the
            environment) that is not registered at all.
    """
    if isinstance(requested, CycleLoopBackend):
        return requested
    name = requested or os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    backend = get_backend(name)
    if not backend.available():
        backend = _REGISTRY[DEFAULT_BACKEND]
    return backend


register_backend(PythonBackend())
