"""Physical register file: values plus readiness timestamps."""

from __future__ import annotations

#: Ready-cycle sentinel for registers whose producer has not issued yet.
NOT_READY = 1 << 60


class PhysicalRegisterFile:
    """The physical register file used by the execute-in-execute pipeline.

    Each physical register carries both its 64-bit value and the cycle at
    which that value becomes available to dependents (the wakeup time).  The
    first 32 physical registers are initialised from the architectural state
    so that logical register ``i`` initially maps to physical register ``i``.
    """

    def __init__(self, num_registers: int, initial_arch_values: list[int]):
        if num_registers < len(initial_arch_values):
            raise ValueError("physical register file smaller than the architectural state")
        self.num_registers = num_registers
        self.values: list[int] = [0] * num_registers
        self.ready_cycle: list[int] = [NOT_READY] * num_registers
        for index, value in enumerate(initial_arch_values):
            self.values[index] = value
            self.ready_cycle[index] = 0

    def read(self, preg: int) -> int:
        """Read a physical register's value (must have been produced already)."""
        return self.values[preg]

    def in_use(self, free_registers: int) -> int:
        """Allocated register count given the renamer's free-list depth.

        The register file itself holds no allocation state — the renamer
        owns the free list — so the occupancy-observability probe
        (:class:`repro.uarch.observe.OccupancyStats` ``prf`` histogram) is
        the complement of the free-list depth.
        """
        return self.num_registers - free_registers

    def is_ready(self, preg: int, cycle: int) -> bool:
        """True if dependents of ``preg`` may issue at ``cycle``."""
        return self.ready_cycle[preg] <= cycle

    def mark_pending(self, preg: int) -> None:
        """Mark a newly allocated register as not yet produced."""
        self.ready_cycle[preg] = NOT_READY

    def write(self, preg: int, value: int, ready_cycle: int) -> None:
        """Produce a value into ``preg``, waking dependents at ``ready_cycle``."""
        self.values[preg] = value
        self.ready_cycle[preg] = ready_cycle
