"""Branch prediction: hybrid direction predictor, BTB and return address stack.

The paper's front end uses a 16 Kbit hybrid predictor, a 2K-entry 4-way BTB
and a 32-entry RAS, and can fetch past one taken branch per cycle.  The
predictor here follows the classic bimodal + gshare + chooser organisation
with the storage budget split three ways.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.functional.trace import DynamicInstruction
from repro.isa.opcodes import OpClass
from repro.uarch.config import MachineConfig


class SaturatingCounterTable:
    """A table of 2-bit saturating counters indexed by a hashed key."""

    def __init__(self, entries: int, initial: int = 1):
        if entries & (entries - 1):
            raise ValueError("counter table size must be a power of two")
        self._mask = entries - 1
        self._counters = [initial] * entries

    def predict(self, index: int) -> bool:
        """Predicted direction for ``index`` (counter in the taken half)."""
        return self._counters[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        """Saturate the counter toward the actual ``taken`` outcome."""
        slot = index & self._mask
        value = self._counters[slot]
        if taken:
            self._counters[slot] = min(3, value + 1)
        else:
            self._counters[slot] = max(0, value - 1)


class HybridPredictor:
    """Bimodal + gshare with a chooser, McFarling style."""

    def __init__(self, budget_bits: int):
        # Three equal tables of 2-bit counters.
        entries = max(256, (budget_bits // 2) // 3)
        entries = 1 << (entries.bit_length() - 1)
        self.bimodal = SaturatingCounterTable(entries)
        self.gshare = SaturatingCounterTable(entries)
        self.chooser = SaturatingCounterTable(entries, initial=2)
        self.history = 0
        self._history_mask = entries - 1

    def _indices(self, pc: int) -> tuple[int, int]:
        base = (pc >> 2) & self._history_mask
        return base, base ^ (self.history & self._history_mask)

    def predict(self, pc: int) -> bool:
        """Chooser-selected direction prediction for the branch at ``pc``."""
        bimodal_index, gshare_index = self._indices(pc)
        use_gshare = self.chooser.predict(bimodal_index)
        if use_gshare:
            return self.gshare.predict(gshare_index)
        return self.bimodal.predict(bimodal_index)

    def update(self, pc: int, taken: bool) -> None:
        """Train both components, the chooser, and the global history."""
        bimodal_index, gshare_index = self._indices(pc)
        bimodal_correct = self.bimodal.predict(bimodal_index) == taken
        gshare_correct = self.gshare.predict(gshare_index) == taken
        if bimodal_correct != gshare_correct:
            self.chooser.update(bimodal_index, gshare_correct)
        self.bimodal.update(bimodal_index, taken)
        self.gshare.update(gshare_index, taken)
        self.history = ((self.history << 1) | int(taken)) & 0xFFFF

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """One-pass predict + train (same state changes as predict();
        update() back to back, with the shared index/counter work done once
        and the saturating-counter updates applied in place).
        """
        history = self.history
        base = (pc >> 2) & self._history_mask
        gshare_index = base ^ (history & self._history_mask)
        bimodal_counters = self.bimodal._counters
        bimodal_slot = base & self.bimodal._mask
        gshare_counters = self.gshare._counters
        gshare_slot = gshare_index & self.gshare._mask
        chooser_counters = self.chooser._counters
        chooser_slot = base & self.chooser._mask
        bimodal_value = bimodal_counters[bimodal_slot]
        gshare_value = gshare_counters[gshare_slot]
        bimodal_taken = bimodal_value >= 2
        gshare_taken = gshare_value >= 2
        predicted = (gshare_taken if chooser_counters[chooser_slot] >= 2
                     else bimodal_taken)
        gshare_correct = gshare_taken == taken
        if (bimodal_taken == taken) != gshare_correct:
            chooser_value = chooser_counters[chooser_slot]
            if gshare_correct:
                if chooser_value < 3:
                    chooser_counters[chooser_slot] = chooser_value + 1
            elif chooser_value > 0:
                chooser_counters[chooser_slot] = chooser_value - 1
        if taken:
            if bimodal_value < 3:
                bimodal_counters[bimodal_slot] = bimodal_value + 1
            if gshare_value < 3:
                gshare_counters[gshare_slot] = gshare_value + 1
            self.history = ((history << 1) | 1) & 0xFFFF
        else:
            if bimodal_value > 0:
                bimodal_counters[bimodal_slot] = bimodal_value - 1
            if gshare_value > 0:
                gshare_counters[gshare_slot] = gshare_value - 1
            self.history = (history << 1) & 0xFFFF
        return predicted


class BranchTargetBuffer:
    """Set-associative BTB mapping branch PCs to predicted targets."""

    def __init__(self, entries: int, associativity: int):
        self.num_sets = max(1, entries // associativity)
        self.associativity = associativity
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(self.num_sets)]

    def _set_for(self, pc: int) -> list[tuple[int, int]]:
        return self._sets[(pc >> 2) % self.num_sets]

    def predict(self, pc: int) -> int | None:
        """Predicted target for ``pc`` (None on a BTB miss); updates LRU."""
        ways = self._set_for(pc)
        for tag, target in ways:
            if tag == pc:
                ways.remove((tag, target))
                ways.insert(0, (tag, target))
                return target
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the mapping ``pc -> target`` (LRU replacement)."""
        ways = self._set_for(pc)
        for entry in ways:
            if entry[0] == pc:
                ways.remove(entry)
                break
        ways.insert(0, (pc, target))
        if len(ways) > self.associativity:
            ways.pop()


class ReturnAddressStack:
    """Bounded return address stack."""

    def __init__(self, entries: int):
        self.entries = entries
        self._stack: list[int] = []

    def push(self, address: int) -> None:
        """Push a return address (oldest entry falls off when full)."""
        self._stack.append(address)
        if len(self._stack) > self.entries:
            self._stack.pop(0)

    def pop(self) -> int | None:
        """Pop the predicted return address (None when empty)."""
        if self._stack:
            return self._stack.pop()
        return None


@dataclass(slots=True)
class BranchOutcome:
    """Result of processing one control instruction at fetch."""

    mispredicted: bool
    reason: str = ""


#: Shared outcome instances — ``process`` runs once per fetched control
#: instruction and its result is read-only, so the four possible outcomes
#: are preallocated instead of constructed per call.
_OK = BranchOutcome(False)
_DIRECTION = BranchOutcome(True, "direction")
_BTB = BranchOutcome(True, "btb")
_RAS = BranchOutcome(True, "ras")


class BranchUnit:
    """Front-end branch handling for the trace-driven pipeline.

    ``process`` is called for every fetched control-flow instruction with its
    actual outcome (from the trace); it returns whether the front end would
    have mispredicted, and trains all predictor state.
    """

    def __init__(self, config: MachineConfig):
        self.direction = HybridPredictor(config.branch_predictor_bits)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_associativity)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.conditional_branches = 0
        self.mispredictions = 0
        self.btb_misses = 0
        self.ras_mispredictions = 0

    def process(self, dyn: DynamicInstruction) -> BranchOutcome:
        """Predict + train on one fetched control instruction's outcome.

        Returns one of four shared, read-only :class:`BranchOutcome`
        instances (never mutate the result).
        """
        op_class = dyn.instruction.spec.op_class
        taken = dyn.taken is True
        outcome = _OK

        if op_class is OpClass.BRANCH:
            self.conditional_branches += 1
            predicted_taken = self.direction.predict_and_update(dyn.pc, taken)
            if predicted_taken != taken:
                self.mispredictions += 1
                outcome = _DIRECTION
            elif taken:
                outcome = self._check_target(dyn)
        elif op_class is OpClass.JUMP:
            outcome = self._check_target(dyn)
        elif op_class is OpClass.CALL:
            outcome = self._check_target(dyn)
            self.ras.push(dyn.pc + 4)
        elif op_class is OpClass.RET:
            predicted = self.ras.pop()
            if predicted != dyn.target_pc:
                self.ras_mispredictions += 1
                outcome = _RAS
        return outcome

    def _check_target(self, dyn: DynamicInstruction) -> BranchOutcome:
        predicted_target = self.btb.predict(dyn.pc)
        self.btb.update(dyn.pc, dyn.target_pc)
        if predicted_target != dyn.target_pc:
            self.btb_misses += 1
            return _BTB
        return _OK

    @property
    def misprediction_rate(self) -> float:
        """Direction mispredictions per conditional branch."""
        if not self.conditional_branches:
            return 0.0
        return self.mispredictions / self.conditional_branches
