"""Store-sets memory dependence predictor (Chrysos & Emer).

Loads are scheduled aggressively: a load may issue before older stores whose
addresses are still unknown, unless the predictor says it collided with one
of those stores in the past.  On a memory-ordering violation the offending
load/store pair is merged into a store set; from then on the load waits until
every older in-flight store belonging to its set has executed.

This is the SSIT half of the original proposal.  The LFST indirection is
folded into the pipeline's store-queue scan (the queue is small), which
naturally handles multiple in-flight instances of the same static store —
the case the LFST's store-to-store chaining exists to solve.
"""

from __future__ import annotations


class StoreSets:
    """Store Set ID Table (SSIT) keyed by hashed instruction addresses."""

    def __init__(self, entries: int = 64):
        if entries & (entries - 1):
            raise ValueError("store-set table size must be a power of two")
        self.entries = entries
        self._ssit: list[int | None] = [None] * entries
        self._next_set_id = 0
        self.violations_trained = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def set_for(self, pc: int) -> int | None:
        """The store-set id assigned to the instruction at ``pc`` (or None)."""
        return self._ssit[self._index(pc)]

    def load_predicted_dependent(self, load_pc: int) -> bool:
        """True if the load has collided with some store in the past."""
        return self.set_for(load_pc) is not None

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Merge the load and store into a common store set after a violation."""
        self.violations_trained += 1
        load_index = self._index(load_pc)
        store_index = self._index(store_pc)
        load_set = self._ssit[load_index]
        store_set = self._ssit[store_index]
        if load_set is None and store_set is None:
            set_id = self._next_set_id
            self._next_set_id += 1
            self._ssit[load_index] = set_id
            self._ssit[store_index] = set_id
        elif load_set is None:
            self._ssit[load_index] = store_set
        elif store_set is None:
            self._ssit[store_index] = load_set
        else:
            # Merge: both already assigned, keep the smaller id.
            winner = min(load_set, store_set)
            self._ssit[load_index] = winner
            self._ssit[store_index] = winner
