"""Machine configuration for the timing simulator.

The defaults reproduce §4.1 of the paper: a 4-wide fetch/issue/commit
dynamically scheduled processor with a 13-stage pipeline, 128-entry ROB,
50-entry issue queue, 48/24-entry load/store queues, 160 physical registers,
16 KB L1I / 32 KB L1D / 512 KB L2 caches and a hybrid branch predictor.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.confighash import dataclass_digest


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int
    latency: int

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size/associativity/block size."""
        return self.size_bytes // (self.associativity * self.block_bytes)

    def to_dict(self) -> dict:
        """Plain-dict form (for digests and serialisation)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CacheConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(frozen=True)
class MachineConfig:
    """All microarchitectural parameters of the simulated machine.

    Attributes mirror §4.1 of the paper.  Width-related attributes:

    * ``fetch_width`` / ``rename_width`` / ``commit_width``: the "4-wide" or
      "6-wide" machine width.
    * ``int_issue`` / ``load_issue`` / ``store_issue`` / ``fp_issue``:
      per-class issue limits (3/1/1/1 for the 4-wide machine, 4/2/1/2 for the
      6-wide machine).
    * ``total_issue``: total instructions issued per cycle (the ``t`` in the
      ``i3t4`` labels of Figure 11).
    """

    name: str = "4wide"

    # Widths.
    fetch_width: int = 4
    rename_width: int = 4
    commit_width: int = 4
    int_issue: int = 3
    load_issue: int = 1
    store_issue: int = 1
    fp_issue: int = 1
    total_issue: int = 4

    # Windows and buffers.
    rob_size: int = 128
    issue_queue_size: int = 50
    load_queue_size: int = 48
    store_queue_size: int = 24
    num_physical_regs: int = 160

    # Scheduling.
    scheduler_latency: int = 1       # 2 models the pipelined wakeup/select loop
    register_read_stages: int = 2

    # Front end.
    front_end_depth: int = 7         # bpred(1) + I$(2) + decode(1) + rename(2) + dispatch(1)
    taken_branches_per_fetch: int = 1
    branch_predictor_bits: int = 16 * 1024
    btb_entries: int = 2048
    btb_associativity: int = 4
    ras_entries: int = 32

    # Memory system.
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(16 * 1024, 2, 32, 1))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 2, 32, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(512 * 1024, 4, 64, 10))
    memory_latency: int = 100
    max_outstanding_misses: int = 16

    # Memory dependence prediction.
    store_set_entries: int = 64
    # Squash/replay penalty charged when a load violates memory ordering.
    memory_violation_penalty: int = 12

    # D-cache retirement port shared by committing stores and by RENO_CSE+RA
    # loads that re-execute before retirement.
    retire_dcache_ports: int = 1

    # Safety valve for the cycle loop.
    max_cycles: int = 50_000_000

    # ------------------------------------------------------------------
    # Paper configurations
    # ------------------------------------------------------------------

    @staticmethod
    def default_4wide() -> "MachineConfig":
        """The baseline 4-wide machine of §4.1."""
        return MachineConfig()

    @staticmethod
    def default_6wide() -> "MachineConfig":
        """The 6-wide machine of §4.1 (issues 4 int, 2 loads, 1 store, 2 fp)."""
        return MachineConfig(
            name="6wide",
            fetch_width=6,
            rename_width=6,
            commit_width=6,
            int_issue=4,
            load_issue=2,
            store_issue=1,
            fp_issue=2,
            total_issue=6,
        )

    def with_registers(self, num_physical_regs: int) -> "MachineConfig":
        """A copy with a different physical register file size (Figure 11 top)."""
        return replace(self, name=f"{self.name}-p{num_physical_regs}",
                       num_physical_regs=num_physical_regs)

    def with_issue(self, int_issue: int, total_issue: int) -> "MachineConfig":
        """A copy with reduced issue width (Figure 11 bottom: i2t2 / i2t3 / i3t4)."""
        return replace(self, name=f"{self.name}-i{int_issue}t{total_issue}",
                       int_issue=int_issue, total_issue=total_issue)

    def with_scheduler_latency(self, latency: int) -> "MachineConfig":
        """A copy with a pipelined (2-cycle) wakeup/select loop (Figure 12)."""
        return replace(self, name=f"{self.name}-sched{latency}", scheduler_latency=latency)

    # ------------------------------------------------------------------
    # Serialization / hashing (used by the experiment cache)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """All fields as a plain JSON-serialisable dictionary (caches nested)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        for level in ("l1i", "l1d", "l2"):
            if isinstance(data.get(level), dict):
                data[level] = CacheConfig.from_dict(data[level])
        return cls(**data)

    def digest(self) -> str:
        """Stable content hash of the *behavioural* fields (``name`` is a
        report label and is excluded; see :mod:`repro.confighash`)."""
        return dataclass_digest(self)

    def validate(self) -> None:
        """Sanity-check the configuration; raises ValueError when inconsistent."""
        if self.num_physical_regs < 32 + self.rename_width:
            raise ValueError("need at least 32 + rename_width physical registers")
        if self.scheduler_latency < 1:
            raise ValueError("scheduler latency must be at least one cycle")
        if self.total_issue < 1 or self.int_issue < 1:
            raise ValueError("issue widths must be positive")
        for cache in (self.l1i, self.l1d, self.l2):
            if cache.num_sets <= 0 or cache.num_sets & (cache.num_sets - 1):
                raise ValueError(f"cache set count must be a power of two: {cache}")
