"""Re-order buffer: an array-backed, in-order slot-range window.

The ROB no longer stores objects at all.  Every in-flight instruction's
state lives in the shared :class:`~repro.uarch.inflight.InFlightWindow`
arrays, and because entries are allocated and retired strictly in program
order, the ROB reduces to two counters: ``head_seq`` (next sequence number
to retire) and ``tail_seq`` (next sequence number to dispatch).  Occupancy
is their difference; the head's window slot is ``head_seq & window.mask``.

The pipeline keeps these counters implicitly (its fetch index is the tail,
its committed-instruction count is the head) and mirrors them onto this
object once per phase call, so ``len(pipeline.rob)`` and the capacity
properties stay accurate between phases without per-instruction overhead.
"""

from __future__ import annotations

from repro.uarch.inflight import NO_COMPLETE, InFlightWindow


class ReorderBuffer:
    """A bounded, in-order window of in-flight instructions (counters only).

    Every renamed instruction (including RENO-eliminated ones) occupies an
    entry until it retires; retirement is in program order from the head.
    """

    __slots__ = ("capacity", "window", "head_seq", "tail_seq")

    def __init__(self, capacity: int, window: InFlightWindow | None = None):
        """Create an empty ROB of ``capacity`` entries.

        Args:
            capacity: Maximum number of in-flight instructions.
            window: The shared in-flight window; a private one is allocated
                when omitted (unit tests).
        """
        self.capacity = capacity
        self.window = window if window is not None else InFlightWindow(capacity)
        self.head_seq = 0
        self.tail_seq = 0

    def __len__(self) -> int:
        return self.tail_seq - self.head_seq

    @property
    def full(self) -> bool:
        """True when no ROB entry is free."""
        return self.tail_seq - self.head_seq >= self.capacity

    @property
    def free_entries(self) -> int:
        """Remaining ROB capacity."""
        return self.capacity - (self.tail_seq - self.head_seq)

    def add(self, seq: int) -> None:
        """Append sequence number ``seq`` at the tail (must be in order)."""
        if self.tail_seq - self.head_seq >= self.capacity:
            raise RuntimeError("ROB overflow (dispatch should have stalled)")
        if seq != self.tail_seq:
            raise ValueError(
                f"out-of-order ROB append: expected seq {self.tail_seq}, got {seq}"
            )
        self.tail_seq = seq + 1

    def head(self) -> int | None:
        """The oldest in-flight sequence number (None when empty)."""
        return self.head_seq if self.tail_seq > self.head_seq else None

    def head_slot(self) -> int:
        """The window slot of the oldest in-flight instruction."""
        return self.head_seq & self.window.mask

    def pop_head(self) -> int:
        """Remove and return the (retiring) head sequence number.

        Also resets the slot's ``complete_cycle`` to :data:`NO_COMPLETE` —
        the slot-reuse contract retirement must uphold (see the inflight
        module docstring).
        """
        if self.tail_seq <= self.head_seq:
            raise IndexError("pop from an empty ROB")
        seq = self.head_seq
        self.window.complete_cycle[seq & self.window.mask] = NO_COMPLETE
        self.head_seq = seq + 1
        return seq
