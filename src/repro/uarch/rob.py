"""Re-order buffer."""

from __future__ import annotations

from collections import deque

from repro.uarch.inflight import InFlightInst


class ReorderBuffer:
    """A bounded, in-order window of in-flight instructions.

    Every renamed instruction (including RENO-eliminated ones) occupies an
    entry until it retires; retirement is in program order from the head.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: deque[InFlightInst] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self) -> bool:
        """True when no ROB entry is free."""
        return len(self._entries) >= self.capacity

    @property
    def free_entries(self) -> int:
        """Remaining ROB capacity."""
        return self.capacity - len(self._entries)

    def add(self, inst: InFlightInst) -> None:
        """Append a renamed instruction at the tail."""
        if len(self._entries) >= self.capacity:
            raise RuntimeError("ROB overflow (dispatch should have stalled)")
        self._entries.append(inst)

    def head(self) -> InFlightInst | None:
        """The oldest in-flight instruction (None when empty)."""
        return self._entries[0] if self._entries else None

    def pop_head(self) -> InFlightInst:
        """Remove and return the (retiring) head."""
        return self._entries.popleft()
