"""Cycle-level dynamically scheduled superscalar core (the timing substrate).

This package models the machine described in §4.1 of the paper: a 13-stage,
4-wide (or 6-wide) dynamically scheduled processor with MIPS-R10000 style
register renaming, a unified issue queue with wakeup/select scheduling, a
load/store queue with store-sets memory dependence prediction, a two-level
cache hierarchy and a hybrid branch predictor.

The pipeline is trace-driven (it consumes the dynamic instruction trace the
functional simulator produced) but *execute-in-execute*: every instruction is
re-evaluated on the physical register file, and results are checked against
the architectural trace at commit.  That check is what validates RENO's
renaming transformations.

The renaming stage is pluggable: :class:`repro.uarch.rename.BaseRenamer` is
the conventional renamer, and :class:`repro.core.renamer.RenoRenamer` (the
paper's contribution) slots into the same interface.
"""

from repro.uarch.config import MachineConfig
from repro.uarch.stats import SimStats
from repro.uarch.core import Pipeline, SimResult, CommitMismatchError

__all__ = [
    "MachineConfig",
    "SimStats",
    "Pipeline",
    "SimResult",
    "CommitMismatchError",
]
