"""Set-associative caches and the two-level hierarchy of §4.1."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.config import CacheConfig, MachineConfig


class Cache:
    """A single set-associative, LRU, write-allocate cache.

    Timing-only: the cache tracks which blocks are resident, not their data
    (data correctness is handled by the pipeline's own memory image).
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.block_shift = config.block_bytes.bit_length() - 1
        self.latency = config.latency
        # Per set: list of tags in LRU order (index 0 = most recently used).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[int, int]:
        block = address >> self.block_shift
        return block % self.num_sets, block // self.num_sets

    def lookup(self, address: int) -> bool:
        """Access the cache; returns True on hit and updates LRU/contents."""
        block = address >> self.block_shift       # inlined _locate
        ways = self._sets[block % self.num_sets]
        tag = block // self.num_sets
        if ways and ways[0] == tag:
            # MRU fast path: repeated accesses to the hottest block need no
            # LRU reshuffle at all.
            self.hits += 1
            return True
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.config.associativity:
            ways.pop()
        return False

    def contains(self, address: int) -> bool:
        """Non-updating presence check (used by tests)."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    @property
    def accesses(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0.0 with no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(slots=True)
class MemoryAccessResult:
    """Outcome of a hierarchy access."""

    latency: int
    l1_hit: bool
    l2_hit: bool = False
    mshr_stall: int = 0


@dataclass
class _Mshr:
    """Tracks outstanding misses to bound memory-level parallelism."""

    capacity: int
    completion_times: list[int] = field(default_factory=list)

    def acquire(self, now: int, duration: int) -> int:
        """Reserve a miss slot; returns extra stall cycles if all are busy."""
        self.completion_times = [t for t in self.completion_times if t > now]
        stall = 0
        if len(self.completion_times) >= self.capacity:
            earliest = min(self.completion_times)
            stall = max(0, earliest - now)
            self.completion_times.remove(earliest)
        self.completion_times.append(now + stall + duration)
        return stall

    @property
    def outstanding(self) -> int:
        """Misses currently in flight."""
        return len(self.completion_times)


class CacheHierarchy:
    """L1I + L1D + shared L2 + main memory, with a bounded miss window."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.l1i = Cache(config.l1i, "L1I")
        self.l1d = Cache(config.l1d, "L1D")
        self.l2 = Cache(config.l2, "L2")
        self._mshr = _Mshr(config.max_outstanding_misses)
        # L1/L2 hit latencies are run constants, so the (read-only) result
        # objects for the hit paths are preallocated per L1 cache; only real
        # misses (which consult the MSHR) construct a fresh result.
        self._hit_results = {
            cache: (MemoryAccessResult(cache.latency, True, False),
                    MemoryAccessResult(cache.latency + self.l2.latency, False, True))
            for cache in (self.l1i, self.l1d)
        }

    # ------------------------------------------------------------------

    def _access(self, l1: Cache, address: int, now: int, is_write: bool) -> MemoryAccessResult:
        # Inlined Cache.lookup with the MRU fast path first: L1 hits are the
        # overwhelming majority of accesses and touch nothing but a counter.
        block = address >> l1.block_shift
        ways = l1._sets[block % l1.num_sets]
        tag = block // l1.num_sets
        if ways and ways[0] == tag:
            l1.hits += 1
            return self._hit_results[l1][0]
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            l1.hits += 1
            return self._hit_results[l1][0]
        l1.misses += 1
        ways.insert(0, tag)
        if len(ways) > l1.config.associativity:
            ways.pop()
        if self.l2.lookup(address):
            return self._hit_results[l1][1]
        miss_latency = self.l2.latency + self.config.memory_latency
        stall = self._mshr.acquire(now, miss_latency)
        latency = l1.latency + miss_latency + stall
        return MemoryAccessResult(latency, False, False, stall)

    def access_instruction(self, address: int, now: int) -> MemoryAccessResult:
        """Instruction fetch access."""
        return self._access(self.l1i, address, now, is_write=False)

    def access_data_read(self, address: int, now: int) -> MemoryAccessResult:
        """Data load access."""
        return self._access(self.l1d, address, now, is_write=False)

    def access_data_write(self, address: int, now: int) -> MemoryAccessResult:
        """Data store access (performed at commit, write-allocate)."""
        return self._access(self.l1d, address, now, is_write=True)

    @property
    def outstanding_misses(self) -> int:
        """Misses currently occupying MSHR slots."""
        return self._mshr.outstanding
