"""In-flight instruction state and per-instruction timing records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.functional.trace import DynamicInstruction
from repro.uarch.rename import RenameResult


class Stage:
    """In-flight instruction lifecycle states."""

    RENAMED = "renamed"
    WAITING = "waiting"      # sitting in the issue queue
    ISSUED = "issued"
    COMPLETED = "completed"
    RETIRED = "retired"


@dataclass(eq=False, slots=True)
class InFlightInst:
    """One instruction travelling down the pipeline.

    Combines the architectural trace record (what the instruction does), the
    rename result (which physical registers it touches), and the evolving
    timing state.

    Equality is identity (``eq=False``): each in-flight instance is unique,
    and field-wise comparison would make list membership operations in the
    pipeline's hot structures quadratically expensive.
    """

    dyn: DynamicInstruction
    rename: RenameResult
    # Fetch/rename/dispatch all happen in the same front-end cycle in this
    # model, so one field records it.
    dispatch_cycle: int = 0
    issue_cycle: int = -1
    complete_cycle: int = -1
    retire_cycle: int = -1
    stage: str = Stage.RENAMED
    # Execution details.
    latency: int = 1
    value: int | None = None
    eff_addr: int | None = None
    dcache_latency: int = 0
    replayed: bool = False
    mispredicted_branch: bool = False
    # Issue-port class, cached by IssueQueue.add so wakeup/select never
    # re-derives it from the opcode spec.
    port_class: str = ""
    # Outstanding-operand count, owned by the IssueQueue: the number of
    # renamed source operands not yet available.  Set once at dispatch by
    # IssueQueue.add and decremented only by the wakeup queue (one decrement
    # per registered source, at that source's ready cycle); the instruction
    # may appear in a ready list iff this count is zero.
    waiting_ops: int = 0
    # Copied from ``dyn.seq`` at construction: the wakeup/select structures
    # sort by it constantly, so it must be a plain attribute, not a property.
    seq: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.seq = self.dyn.seq

    @property
    def is_load(self) -> bool:
        """True for loads (delegates to the opcode spec)."""
        return self.dyn.instruction.is_load

    @property
    def is_store(self) -> bool:
        """True for stores (delegates to the opcode spec)."""
        return self.dyn.instruction.is_store

    @property
    def eliminated(self) -> bool:
        """True if RENO collapsed this instruction at rename."""
        return self.rename.eliminated

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<InFlight #{self.seq} {self.dyn.instruction} {self.stage}>"


@dataclass(slots=True)
class TimingRecord:
    """Compact per-retired-instruction record used by the critical-path model."""

    seq: int
    opcode: str
    fetch_cycle: int
    dispatch_cycle: int
    issue_cycle: int
    complete_cycle: int
    retire_cycle: int
    is_load: bool
    is_store: bool
    is_branch: bool
    mispredicted: bool
    eliminated: bool
    dcache_latency: int
    latency: int
    source_producers: tuple[int, ...] = field(default_factory=tuple)


def make_timing_record(inst: InFlightInst, producers: tuple[int, ...]) -> TimingRecord:
    """Build a :class:`TimingRecord` for a retired instruction."""
    dyn = inst.dyn
    return TimingRecord(
        seq=dyn.seq,
        opcode=dyn.instruction.opcode.value,
        fetch_cycle=inst.dispatch_cycle,      # fetch == dispatch cycle here
        dispatch_cycle=inst.dispatch_cycle,
        issue_cycle=inst.issue_cycle,
        complete_cycle=inst.complete_cycle,
        retire_cycle=inst.retire_cycle,
        is_load=inst.is_load,
        is_store=inst.is_store,
        is_branch=dyn.instruction.is_control,
        mispredicted=inst.mispredicted_branch,
        eliminated=inst.eliminated,
        dcache_latency=inst.dcache_latency,
        latency=inst.latency,
        source_producers=producers,
    )
