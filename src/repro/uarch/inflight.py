"""In-flight instruction state: the structure-of-arrays window.

The pipeline used to materialise one ``InFlightInst`` dataclass per dynamic
instruction and chase its attributes from every phase.  The in-flight window
is now a **structure of arrays**: one preallocated parallel array per field,
indexed by ROB slot, so the hot loops (wakeup, select, execute, commit) read
and write plain list cells instead of allocating and walking object graphs.

Slot discipline (the invariants the pipeline and scheduler rely on):

* Every dynamic instruction occupies exactly one ROB entry, entries are
  allocated in program order and retire in program order, so the slot of
  sequence number ``seq`` is simply ``seq & mask`` (arrays are sized to the
  next power of two above the ROB capacity).  Occupancy never exceeds the
  ROB capacity, so two live instructions can never share a slot.
* Lifecycle is encoded in ``complete_cycle`` alone: :data:`NO_COMPLETE`
  (a sentinel beyond any simulated cycle) means the slot is empty **or**
  its instruction has not finished executing; a real cycle number means the
  instruction completed then.  The commit guard ``complete_cycle[slot] <
  cycle`` therefore covers "ROB empty", "head still waiting" and "head not
  yet due" in one comparison.
* A slot is *owned* from dispatch to retirement.  Dispatch initialises the
  fields the instruction's class needs; retirement resets ``complete_cycle``
  to :data:`NO_COMPLETE` and leaves the rest stale.  Stale fields are never
  read: each field is either (re)written at dispatch for every instruction
  that later reads it, or only read on paths gated by flags that imply it
  was written (e.g. ``value`` is only compared at commit for instructions
  with a destination, all of which wrote it at execute).  The cosmetic
  timing fields (``issue_cycle``, ``retire_cycle``, ``dcache_latency``,
  ``mispredicted``, ``latency``) are additionally reset at dispatch when
  timing records are collected.
* This model has no pipeline flush (wrong-path instructions are never
  injected; a misprediction only stalls the front end), so slot reclamation
  happens exclusively through in-order retirement — a flush would be a
  head/tail slot-range reset of ``complete_cycle``, not an object-graph
  teardown.

``TimingRecord`` (the per-retired-instruction record consumed by the
critical-path model) is unchanged; the pipeline builds it from the arrays at
commit when timing collection is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: ``complete_cycle`` sentinel: the slot is empty, or its instruction has
#: not completed execution yet.  Beyond any reachable cycle count.
NO_COMPLETE = 1 << 60


class InFlightWindow:
    """Preallocated parallel arrays for every in-flight instruction field.

    Arrays are plain Python lists sized to the next power of two above the
    ROB capacity; the slot of sequence number ``seq`` is ``seq & mask``.
    All fields are documented on ``__init__``; the slot-reuse rules are in
    the module docstring.
    """

    __slots__ = (
        "capacity",
        "size",
        "mask",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "retire_cycle",
        "latency",
        "value",
        "eff_addr",
        "dcache_latency",
        "replayed",
        "mispredicted",
        "class_id",
        "waiting_ops",
        "rename",
        "decoded",
        "dest_preg",
        "prev_dest",
        "elim_info",
        "fusion_extra",
        "nsrc",
        "src0_preg",
        "src0_disp",
        "src1_preg",
        "src1_disp",
    )

    def __init__(self, capacity: int):
        """Allocate the window for a ROB of ``capacity`` entries.

        Per-slot fields:

        * ``dispatch_cycle`` / ``issue_cycle`` / ``complete_cycle`` /
          ``retire_cycle`` — the timing milestones (fetch == dispatch in
          this front-end model); ``complete_cycle`` doubles as the slot
          lifecycle marker (see :data:`NO_COMPLETE`).
        * ``latency`` — execution latency charged (loads fold the d-cache
          latency in at execute).
        * ``value`` / ``eff_addr`` / ``dcache_latency`` / ``replayed`` /
          ``mispredicted`` — execution results and memory/branch details.
        * ``class_id`` — issue-port class id (set at issue-queue insertion).
        * ``waiting_ops`` — outstanding-operand count, owned by the issue
          queue's wakeup machinery.
        * ``rename`` — the instruction's ``RenameResult`` (commit needs the
          elimination details and the renamer hand-back); stays None on the
          pipeline's inlined conventional-renaming path.
        * ``decoded`` — the static instruction's decoded-op tuple
          (:func:`repro.isa.instruction.decode_op`).
        * ``dest_preg`` — allocated destination physical register or ``-1``
          (flattened from the rename result so execute never touches it).
        * ``prev_dest`` — the previously mapped destination register freed
          at commit, or ``-1``; lets the pipeline's fast commit paths skip
          the rename-result object entirely.
        * ``elim_info`` — elimination summary for fast commit: 0 when not
          eliminated, else the kind id (1 move / 2 cf / 3 cse / 4 ra) plus
          bit 4 set when the eliminated load must re-execute at retire.
        * ``fusion_extra`` — extra execute latency charged for fused
          operands (RENO_CF).
        * ``nsrc`` / ``src0_preg`` / ``src0_disp`` / ``src1_preg`` /
          ``src1_disp`` — flattened renamed source operands.
        """
        if capacity < 1:
            raise ValueError(f"window capacity must be positive, got {capacity}")
        size = 1
        while size < capacity:
            size <<= 1
        self.capacity = capacity
        self.size = size
        self.mask = size - 1
        self.dispatch_cycle = [0] * size
        self.issue_cycle = [-1] * size
        self.complete_cycle = [NO_COMPLETE] * size
        self.retire_cycle = [-1] * size
        self.latency = [1] * size
        self.value = [None] * size
        self.eff_addr = [0] * size
        self.dcache_latency = [0] * size
        self.replayed = [False] * size
        self.mispredicted = [False] * size
        self.class_id = [0] * size
        self.waiting_ops = [0] * size
        self.rename = [None] * size
        self.decoded = [None] * size
        self.dest_preg = [-1] * size
        self.prev_dest = [-1] * size
        self.elim_info = [0] * size
        self.fusion_extra = [0] * size
        self.nsrc = [0] * size
        self.src0_preg = [0] * size
        self.src0_disp = [0] * size
        self.src1_preg = [0] * size
        self.src1_disp = [0] * size

    def slot(self, seq: int) -> int:
        """The slot owned by sequence number ``seq`` while it is in flight."""
        return seq & self.mask

    @staticmethod
    def occupancy(committed: int, fetched: int) -> int:
        """ROB occupancy between the retire head and the fetch tail.

        The window itself holds no head/tail state — the pipeline owns both
        sequence counters — so occupancy is simply their distance.  This is
        the probe the observability layer
        (:class:`repro.uarch.observe.OccupancyStats`) samples once per
        cycle; the inlined cycle loop computes the same expression on its
        locals.
        """
        return fetched - committed

    def reset_slot(self, slot: int) -> None:
        """Full cosmetic reset of one slot (tests / debugging only).

        The pipeline itself only resets ``complete_cycle`` at retirement and
        selectively re-initialises fields at dispatch (see the module
        docstring); this helper restores a slot to its freshly allocated
        appearance for unit tests that inspect the arrays directly.
        """
        self.dispatch_cycle[slot] = 0
        self.issue_cycle[slot] = -1
        self.complete_cycle[slot] = NO_COMPLETE
        self.retire_cycle[slot] = -1
        self.latency[slot] = 1
        self.value[slot] = None
        self.eff_addr[slot] = 0
        self.dcache_latency[slot] = 0
        self.replayed[slot] = False
        self.mispredicted[slot] = False
        self.class_id[slot] = 0
        self.waiting_ops[slot] = 0
        self.rename[slot] = None
        self.decoded[slot] = None
        self.dest_preg[slot] = -1
        self.prev_dest[slot] = -1
        self.elim_info[slot] = 0
        self.fusion_extra[slot] = 0
        self.nsrc[slot] = 0


@dataclass(slots=True)
class TimingRecord:
    """Compact per-retired-instruction record used by the critical-path model."""

    seq: int
    opcode: str
    fetch_cycle: int
    dispatch_cycle: int
    issue_cycle: int
    complete_cycle: int
    retire_cycle: int
    is_load: bool
    is_store: bool
    is_branch: bool
    mispredicted: bool
    eliminated: bool
    dcache_latency: int
    latency: int
    source_producers: tuple[int, ...] = field(default_factory=tuple)
