"""Issue queue and wakeup/select scheduling."""

from __future__ import annotations

from bisect import insort
from typing import Callable

from repro.isa.opcodes import OpClass
from repro.uarch.config import MachineConfig
from repro.uarch.inflight import InFlightInst

#: Issue-port classes.
INT_CLASS = "int"
LOAD_CLASS = "load"
STORE_CLASS = "store"
FP_CLASS = "fp"


def issue_class(inst: InFlightInst) -> str:
    """Which issue port class an instruction competes for."""
    op_class = inst.dyn.instruction.spec.op_class
    if op_class is OpClass.LOAD:
        return LOAD_CLASS
    if op_class is OpClass.STORE:
        return STORE_CLASS
    return INT_CLASS


class IssueQueue:
    """The unified out-of-order issue window.

    Selection is oldest-first among ready instructions, subject to per-class
    and total issue-width limits.  The wakeup/select loop latency is modelled
    by the producer's readiness timestamp (see the pipeline), not here.
    """

    def __init__(self, config: MachineConfig):
        self.capacity = config.issue_queue_size
        self.config = config
        self.entries: list[InFlightInst] = []

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self.entries)

    def add(self, inst: InFlightInst) -> None:
        if self.full:
            raise RuntimeError("issue queue overflow (dispatch should have stalled)")
        inst.port_class = issue_class(inst)
        entries = self.entries
        if entries and inst.seq < entries[-1].seq:
            # The pipeline dispatches in sequence order, so this path is only
            # taken by out-of-order external callers; keep the list sorted so
            # oldest-first selection needs no per-cycle sort.
            insort(entries, inst, key=lambda entry: entry.seq)
        else:
            entries.append(inst)

    def select(
        self,
        cycle: int,
        ready_fn: Callable[[InFlightInst, int], bool],
    ) -> list[InFlightInst]:
        """Pick the instructions to issue this cycle and remove them.

        Args:
            cycle: Current cycle.
            ready_fn: Callback deciding whether an instruction's operands
                (and, for memory operations, its queue conditions) allow it
                to issue at ``cycle``.

        Returns:
            Selected instructions, oldest first.
        """
        config = self.config
        limits = {
            INT_CLASS: config.int_issue,
            LOAD_CLASS: config.load_issue,
            STORE_CLASS: config.store_issue,
            FP_CLASS: config.fp_issue,
        }
        remaining_total = config.total_issue
        entries = self.entries
        selected: list[InFlightInst] = []
        kept: list[InFlightInst] = []
        index = 0
        count = len(entries)
        while index < count and remaining_total:
            inst = entries[index]
            index += 1
            if (limits[inst.port_class] == 0
                    or inst.dispatch_cycle >= cycle   # earliest issue is next cycle
                    or not ready_fn(inst, cycle)):
                kept.append(inst)
                continue
            limits[inst.port_class] -= 1
            remaining_total -= 1
            selected.append(inst)
        if selected:
            kept.extend(entries[index:])
            self.entries = kept
        return selected
