"""Issue queue with event-driven wakeup/select scheduling.

The issue window used to be selected by a full scan: every cycle, every
resident instruction was visited and its operands re-checked against the
physical register file.  That is O(window × width) Python work per cycle even
when nothing woke up.  This module replaces the scan with the standard
event-driven model used by cycle-level simulators:

* **Outstanding-operand counts.**  When an instruction enters the window,
  :meth:`IssueQueue.add` counts how many of its renamed source operands are
  not yet available (``InFlightInst.waiting_ops``).  An instruction with a
  zero count goes straight to its port class's ready list.
* **Cycle-indexed wakeup queue.**  A producer whose value becomes visible at
  cycle *R* schedules its consumers in ``_wakeups[R]``; a min-heap of pending
  cycles lets :meth:`IssueQueue.select` drain exactly the buckets that are
  due.  Each drained entry decrements one outstanding-operand count; the
  count hitting zero moves the instruction to a ready list.
* **Per-class ready lists.**  Ready instructions are kept oldest-first (by
  the dispatch ``seq``) in one list per issue-port class, so selection merges
  a handful of list heads instead of re-deriving ``issue_class`` and
  re-checking operands across the whole window.

Invariants (relied on by the pipeline and checked by the equivalence tests in
``tests/uarch/test_scheduler_equivalence.py``):

* An instruction appears in a ready list **iff** every renamed source operand
  has a readiness timestamp ``<=`` the current cycle, i.e. its
  ``waiting_ops`` count has reached zero.  Loads additionally consult the
  pipeline's memory-ordering predicate (the ``ready_fn`` callback) at select
  time; a load that fails it simply stays in its ready list.
* Operand counts are decremented only by the wakeup queue: once per
  registered (instruction, source) pair, at that source's ready cycle.  The
  pipeline is the only producer — it calls :meth:`IssueQueue.wakeup` after
  every physical-register write, which moves the register's registered
  waiters into the wakeup bucket for the write's ready cycle.
* A source operand that is unwritten at dispatch time (readiness sentinel
  ``NOT_READY``) registers the instruction under the source register in
  ``_waiters``; the register is guaranteed to be written before it can be
  freed/reallocated, so waiter lists never leak across register reuse.
* Selection visits ready instructions in global ``seq`` order (oldest first),
  skipping classes whose per-cycle port limit is exhausted, until the total
  issue width is consumed — byte-for-byte the order the full scan produced.

The pre-rewrite full scan survives as ``reference_select`` in the equivalence
test module, which drives seeded random programs through both schedulers and
asserts identical per-cycle issue sets and final statistics.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Callable, Sequence

from repro.isa.opcodes import OpClass
from repro.uarch.config import MachineConfig
from repro.uarch.inflight import InFlightInst
from repro.uarch.regfile import NOT_READY

#: Issue-port classes.
INT_CLASS = "int"
LOAD_CLASS = "load"
STORE_CLASS = "store"
FP_CLASS = "fp"

#: All port classes, in the order selection considers them.
PORT_CLASSES = (INT_CLASS, LOAD_CLASS, STORE_CLASS, FP_CLASS)


def issue_class(inst: InFlightInst) -> str:
    """Which issue port class an instruction competes for."""
    op_class = inst.dyn.instruction.spec.op_class
    if op_class is OpClass.LOAD:
        return LOAD_CLASS
    if op_class is OpClass.STORE:
        return STORE_CLASS
    return INT_CLASS


def _seq_key(inst: InFlightInst) -> int:
    return inst.seq


class IssueQueue:
    """The unified out-of-order issue window (event-driven wakeup/select).

    Selection is oldest-first among ready instructions, subject to per-class
    and total issue-width limits.  The wakeup/select loop latency is modelled
    by the producer's readiness timestamp (see the pipeline), not here.

    See the module docstring for the wakeup-queue/ready-list invariants.
    """

    def __init__(self, config: MachineConfig):
        self.capacity = config.issue_queue_size
        self.config = config
        #: Resident-instruction count (window occupancy).
        self._count = 0
        #: Ready instructions across all classes (for the O(1) idle check).
        self._ready_total = 0
        #: Per-class ready lists, each sorted oldest-first by ``seq``.
        self._ready: dict[str, list[InFlightInst]] = {
            port_class: [] for port_class in PORT_CLASSES
        }
        #: Source preg -> instructions waiting for it to be produced.
        self._waiters: dict[int, list[InFlightInst]] = {}
        #: Ready cycle -> instructions receiving one operand wakeup then.
        self._wakeups: dict[int, list[InFlightInst]] = {}
        #: Min-heap of the cycles present in ``_wakeups``.
        self._wakeup_heap: list[int] = []
        #: Total issue width, fixed for the run.
        self._total_issue = config.total_issue
        #: (class, per-cycle port width) pairs, fixed for the run.
        self._port_limits = (
            (INT_CLASS, config.int_issue),
            (LOAD_CLASS, config.load_issue),
            (STORE_CLASS, config.store_issue),
            (FP_CLASS, config.fp_issue),
        )

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        """True when the window has no free entry."""
        return self._count >= self.capacity

    @property
    def free_entries(self) -> int:
        """Remaining window capacity."""
        return self.capacity - self._count

    def add(
        self,
        inst: InFlightInst,
        cycle: int = 0,
        ready_cycles: Sequence[int] | None = None,
    ) -> None:
        """Insert a dispatched instruction and classify its operand state.

        Args:
            inst: The renamed instruction entering the window.
            cycle: The dispatch cycle (used to decide which operands are
                already available).
            ready_cycles: The physical register file's readiness timestamps
                (``PhysicalRegisterFile.ready_cycle``).  None treats every
                operand as available, which is what unit tests that drive the
                queue without a register file want.
        """
        if self._count >= self.capacity:
            raise RuntimeError("issue queue overflow (dispatch should have stalled)")
        # Inline issue_class: this runs once per dispatched instruction.
        op_class = inst.dyn.instruction.spec.op_class
        if op_class is OpClass.LOAD:
            inst.port_class = LOAD_CLASS
        elif op_class is OpClass.STORE:
            inst.port_class = STORE_CLASS
        else:
            inst.port_class = INT_CLASS
        pending = 0
        if ready_cycles is not None:
            for source in inst.rename.sources:
                ready_at = ready_cycles[source.preg]
                if ready_at <= cycle:
                    continue
                pending += 1
                if ready_at == NOT_READY:
                    bucket = self._waiters.get(source.preg)
                    if bucket is None:
                        self._waiters[source.preg] = [inst]
                    else:
                        bucket.append(inst)
                else:
                    self._schedule(inst, ready_at)
        inst.waiting_ops = pending
        self._count += 1
        if not pending:
            # Inlined _push_ready (all operands already available — the
            # common case at dispatch).
            self._ready_total += 1
            ready = self._ready[inst.port_class]
            if ready and inst.seq < ready[-1].seq:
                insort(ready, inst, key=_seq_key)
            else:
                ready.append(inst)

    def wakeup(self, preg: int, ready_cycle: int) -> None:
        """A producer wrote ``preg``; its value is visible at ``ready_cycle``.

        Moves every instruction registered as waiting on ``preg`` into the
        wakeup bucket for ``ready_cycle``.  Called by the pipeline after each
        physical-register write; a write nobody waits on is a no-op.
        """
        waiters = self._waiters.pop(preg, None)
        if waiters is None:
            return
        bucket = self._wakeups.get(ready_cycle)
        if bucket is None:
            self._wakeups[ready_cycle] = waiters
            heappush(self._wakeup_heap, ready_cycle)
        else:
            bucket.extend(waiters)

    def _schedule(self, inst: InFlightInst, ready_cycle: int) -> None:
        """Register one operand wakeup for ``inst`` at ``ready_cycle``."""
        bucket = self._wakeups.get(ready_cycle)
        if bucket is None:
            self._wakeups[ready_cycle] = [inst]
            heappush(self._wakeup_heap, ready_cycle)
        else:
            bucket.append(inst)

    def _push_ready(self, inst: InFlightInst) -> None:
        """All operands available: move ``inst`` to its class's ready list."""
        self._ready_total += 1
        ready = self._ready[inst.port_class]
        if ready and inst.seq < ready[-1].seq:
            insort(ready, inst, key=_seq_key)
        else:
            ready.append(inst)

    def idle_until(self) -> int | None:
        """The cycle before which no select can possibly issue anything.

        Returns None when some instruction is already ready (select must run
        every cycle); otherwise the earliest pending wakeup cycle, or a
        sentinel far beyond any simulation when nothing is in flight.  This is
        what lets the pipeline's cycle loop fast-forward through guaranteed
        idle stretches (dcache misses, branch-resolution stalls).
        """
        if self._ready_total:
            return None
        heap = self._wakeup_heap
        return heap[0] if heap else NOT_READY

    def _drain_wakeups(self, cycle: int) -> None:
        """Apply every wakeup due at or before ``cycle``."""
        heap = self._wakeup_heap
        wakeups = self._wakeups
        ready_lists = self._ready
        while heap and heap[0] <= cycle:
            for inst in wakeups.pop(heappop(heap)):
                pending = inst.waiting_ops - 1
                inst.waiting_ops = pending
                if not pending:
                    # Inlined _push_ready.
                    self._ready_total += 1
                    ready = ready_lists[inst.port_class]
                    if ready and inst.seq < ready[-1].seq:
                        insort(ready, inst, key=_seq_key)
                    else:
                        ready.append(inst)

    def select(
        self,
        cycle: int,
        ready_fn: Callable[[InFlightInst, int], bool] | None = None,
    ) -> list[InFlightInst]:
        """Pick the instructions to issue this cycle and remove them.

        Args:
            cycle: Current cycle.
            ready_fn: Optional last-moment veto, called (oldest-first) only
                for **load-class** instructions whose operands are already
                available.  The pipeline uses it for load memory-ordering
                conditions — the one readiness aspect the wakeup queue cannot
                index by cycle.  Other classes issue unconditionally once
                their operand count reaches zero.

        Returns:
            Selected instructions, oldest first.
        """
        heap = self._wakeup_heap
        if heap and heap[0] <= cycle:
            self._drain_wakeups(cycle)
        if not self._ready_total:
            return []

        ready = self._ready
        # Per-class cursors: [entries, next index, remaining port width,
        # kept-back instructions, port class, load veto or None].
        cursors = []
        for port_class, limit in self._port_limits:
            if limit and ready[port_class]:
                gate = ready_fn if port_class == LOAD_CLASS else None
                cursors.append([ready[port_class], 0, limit, None, port_class, gate])
        if not cursors:
            return []

        remaining_total = self._total_issue
        selected: list[InFlightInst] = []
        if len(cursors) == 1:
            # Single-competitor fast path (the common case): walk the one
            # ready list oldest-first, no cross-class merge needed.
            best = cursors[0]
            entries = best[0]
            limit = best[2]
            gate = best[5]
            kept: list[InFlightInst] | None = None
            index = 0
            count = len(entries)
            while index < count and limit and remaining_total:
                inst = entries[index]
                index += 1
                if (inst.dispatch_cycle >= cycle      # earliest issue is next cycle
                        or (gate is not None and not gate(inst, cycle))):
                    if kept is None:
                        kept = [inst]
                    else:
                        kept.append(inst)
                    continue
                selected.append(inst)
                limit -= 1
                remaining_total -= 1
            best[1] = index
            best[3] = kept
        else:
            active = list(cursors)
            while remaining_total and active:
                # Oldest ready instruction among classes with port width left.
                best = active[0]
                best_seq = best[0][best[1]].seq
                for cursor in active[1:]:
                    seq = cursor[0][cursor[1]].seq
                    if seq < best_seq:
                        best = cursor
                        best_seq = seq
                entries, index = best[0], best[1]
                inst = entries[index]
                best[1] = index + 1
                gate = best[5]
                if (inst.dispatch_cycle >= cycle      # earliest issue is next cycle
                        or (gate is not None and not gate(inst, cycle))):
                    if best[3] is None:
                        best[3] = [inst]
                    else:
                        best[3].append(inst)
                else:
                    selected.append(inst)
                    best[2] -= 1
                    remaining_total -= 1
                    if not best[2]:
                        active.remove(best)
                        continue
                if best[1] == len(entries):
                    active.remove(best)

        # Re-assemble each touched ready list: instructions passed over stay,
        # in order, ahead of the not-yet-visited suffix (both are seq-sorted
        # and every kept seq precedes the suffix's).
        for entries, index, _limit, kept, port_class, _gate in cursors:
            if index == 0:
                continue
            if kept is None:
                if index == len(entries):
                    entries.clear()
                else:
                    del entries[:index]
            else:
                kept.extend(entries[index:])
                ready[port_class] = kept
        if selected:
            self._count -= len(selected)
            self._ready_total -= len(selected)
        return selected
