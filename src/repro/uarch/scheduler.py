"""Issue queue: event-driven wakeup/select over the structure-of-arrays window.

The scheduling *model* is unchanged from the event-driven rewrite —
outstanding-operand counts, a cycle-indexed wakeup queue, per-class
oldest-first ready lists — but the *representation* is now flat: the queue
tracks instructions purely by **sequence number** (a plain int), and all
per-instruction state lives in the shared
:class:`~repro.uarch.inflight.InFlightWindow` arrays indexed by
``seq & mask``.  Wakeup decrements an int in an array; select merges sorted
int lists; nothing in the wakeup/select path touches a Python object graph.

* **Outstanding-operand counts.**  :meth:`IssueQueue.add` counts how many of
  the instruction's renamed source operands are not yet available
  (``window.waiting_ops[slot]``).  A zero count sends the sequence number
  straight to its class's ready list.
* **Cycle-indexed wakeup queue.**  A producer whose value becomes visible at
  cycle *R* schedules its consumers' sequence numbers in ``_wakeups[R]``; a
  min-heap of pending cycles lets :meth:`IssueQueue.select` drain exactly
  the buckets that are due.  Each drained entry decrements one operand
  count; the count hitting zero moves the sequence number to a ready list.
* **Per-class ready lists.**  Ready sequence numbers are kept ascending
  (oldest first — ``seq`` *is* dispatch order) in one list per issue-port
  class, so selection merges a handful of int-list heads.

Invariants (relied on by the pipeline and checked against the object-model
full-scan reference in ``tests/uarch/test_scheduler_equivalence.py``):

* A sequence number appears in a ready list **iff** every renamed source
  operand has a readiness timestamp ``<=`` the current cycle, i.e. its
  ``waiting_ops`` count has reached zero.  Loads additionally consult the
  pipeline's memory-ordering predicate (the ``ready_fn`` callback) at select
  time; a load that fails it simply stays in its ready list.
* Operand counts are decremented only by the wakeup queue: once per
  registered (instruction, source) pair, at that source's ready cycle.  The
  pipeline is the only producer — it calls :meth:`IssueQueue.wakeup` after
  every physical-register write, which moves the register's registered
  waiters into the wakeup bucket for the write's ready cycle.
* A source operand that is unwritten at dispatch time (readiness sentinel
  ``NOT_READY``) registers the sequence number under the source register in
  ``_waiters``; the register is guaranteed to be written before it can be
  freed/reallocated, so waiter lists never leak across register reuse.
* Selection visits ready instructions in global ``seq`` order (oldest
  first), skipping classes whose per-cycle port limit is exhausted, until
  the total issue width is consumed — byte-for-byte the order the original
  full scan produced.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Callable, Sequence

from repro.isa.instruction import CLASS_FP, CLASS_INT, CLASS_LOAD, CLASS_STORE
from repro.uarch.config import MachineConfig
from repro.uarch.inflight import InFlightWindow
from repro.uarch.regfile import NOT_READY

#: Issue-port class display names, indexed by class id.
INT_CLASS = "int"
LOAD_CLASS = "load"
STORE_CLASS = "store"
FP_CLASS = "fp"

#: All port-class names in class-id order (the order selection considers).
PORT_CLASSES = (INT_CLASS, LOAD_CLASS, STORE_CLASS, FP_CLASS)


class IssueQueue:
    """The unified out-of-order issue window (event-driven wakeup/select).

    Entries are sequence numbers; per-instruction state lives in the shared
    :class:`~repro.uarch.inflight.InFlightWindow`.  Selection is oldest-first
    among ready instructions, subject to per-class and total issue-width
    limits.  The wakeup/select loop latency is modelled by the producer's
    readiness timestamp (see the pipeline), not here.

    See the module docstring for the wakeup-queue/ready-list invariants.
    """

    def __init__(
        self,
        config: MachineConfig,
        window: InFlightWindow | None = None,
        ready_cycles: Sequence[int] | None = None,
    ):
        """Create the queue.

        Args:
            config: Machine parameters (capacity and issue widths).
            window: The shared in-flight window; a private one sized to the
                ROB is created when omitted (unit tests).
            ready_cycles: The physical register file's readiness timestamps
                (``PhysicalRegisterFile.ready_cycle``).  None treats every
                operand as available, which is what unit tests that drive
                the queue without a register file want.
        """
        self.capacity = config.issue_queue_size
        self.config = config
        self.window = window if window is not None else InFlightWindow(config.rob_size)
        self._ready_cycles = ready_cycles
        #: Hot aliases into the window (list identities are stable).
        self._mask = self.window.mask
        self._waiting = self.window.waiting_ops
        self._class_ids = self.window.class_id
        self._dispatch_cycles = self.window.dispatch_cycle
        #: Resident-instruction count (window occupancy).
        self._count = 0
        #: Ready instructions across all classes (for the O(1) idle check).
        self._ready_total = 0
        #: Per-class-id ready lists of sequence numbers, each ascending.
        self._ready: list[list[int]] = [[], [], [], []]
        #: Source preg -> sequence numbers waiting for it to be produced.
        self._waiters: dict[int, list[int]] = {}
        #: Ready cycle -> sequence numbers receiving one operand wakeup then.
        self._wakeups: dict[int, list[int]] = {}
        #: Min-heap of the cycles present in ``_wakeups``.
        self._wakeup_heap: list[int] = []
        #: Total issue width, fixed for the run.
        self._total_issue = config.total_issue
        #: (class id, per-cycle port width) pairs, fixed for the run.
        self._port_limits = (
            (CLASS_INT, config.int_issue),
            (CLASS_LOAD, config.load_issue),
            (CLASS_STORE, config.store_issue),
            (CLASS_FP, config.fp_issue),
        )

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        """True when the window has no free entry."""
        return self._count >= self.capacity

    @property
    def free_entries(self) -> int:
        """Remaining window capacity."""
        return self.capacity - self._count

    def ready_depths(self) -> tuple[int, int, int, int]:
        """Current per-class ready-list depths (class-id order).

        The occupancy-observability probe
        (:class:`repro.uarch.observe.OccupancyStats` ``ready`` histograms):
        how many woken instructions each issue-port class is holding this
        cycle, before selection.
        """
        ready = self._ready
        return (len(ready[0]), len(ready[1]), len(ready[2]), len(ready[3]))

    def add(
        self,
        seq: int,
        cycle: int = 0,
        sources: Sequence | None = None,
        class_id: int = CLASS_INT,
    ) -> None:
        """Insert a dispatched instruction and classify its operand state.

        Args:
            seq: The instruction's sequence number (its window slot is
                ``seq & mask``).
            cycle: The dispatch cycle (used to decide which operands are
                already available).
            sources: The renamed source operands (anything with
                ``preg``/``disp`` attributes); None means no sources.
            class_id: The issue-port class id from the decoded-op tuple.
        """
        if self._count >= self.capacity:
            raise RuntimeError("issue queue overflow (dispatch should have stalled)")
        slot = seq & self._mask
        self._class_ids[slot] = class_id
        pending = 0
        ready_cycles = self._ready_cycles
        if ready_cycles is not None and sources:
            for source in sources:
                preg = source.preg
                ready_at = ready_cycles[preg]
                if ready_at <= cycle:
                    continue
                pending += 1
                if ready_at == NOT_READY:
                    bucket = self._waiters.get(preg)
                    if bucket is None:
                        self._waiters[preg] = [seq]
                    else:
                        bucket.append(seq)
                else:
                    self._schedule(seq, ready_at)
        self._waiting[slot] = pending
        self._count += 1
        if not pending:
            # Inlined _push_ready (all operands already available — the
            # common case at dispatch).  Appends are in seq order already.
            self._ready_total += 1
            ready = self._ready[class_id]
            if ready and seq < ready[-1]:
                insort(ready, seq)
            else:
                ready.append(seq)

    def wakeup(self, preg: int, ready_cycle: int) -> None:
        """A producer wrote ``preg``; its value is visible at ``ready_cycle``.

        Moves every sequence number registered as waiting on ``preg`` into
        the wakeup bucket for ``ready_cycle``.  Called by the pipeline after
        each physical-register write; a write nobody waits on is a no-op.
        """
        waiters = self._waiters.pop(preg, None)
        if waiters is None:
            return
        bucket = self._wakeups.get(ready_cycle)
        if bucket is None:
            self._wakeups[ready_cycle] = waiters
            heappush(self._wakeup_heap, ready_cycle)
        else:
            bucket.extend(waiters)

    def _schedule(self, seq: int, ready_cycle: int) -> None:
        """Register one operand wakeup for ``seq`` at ``ready_cycle``."""
        bucket = self._wakeups.get(ready_cycle)
        if bucket is None:
            self._wakeups[ready_cycle] = [seq]
            heappush(self._wakeup_heap, ready_cycle)
        else:
            bucket.append(seq)

    def idle_until(self) -> int | None:
        """The cycle before which no select can possibly issue anything.

        Returns None when some instruction is already ready (select must run
        every cycle); otherwise the earliest pending wakeup cycle, or a
        sentinel far beyond any simulation when nothing is in flight.  This
        is what lets the pipeline's cycle loop fast-forward through
        guaranteed idle stretches (dcache misses, branch-resolution stalls).
        """
        if self._ready_total:
            return None
        heap = self._wakeup_heap
        return heap[0] if heap else NOT_READY

    def _drain_wakeups(self, cycle: int) -> None:
        """Apply every wakeup due at or before ``cycle``."""
        heap = self._wakeup_heap
        wakeups = self._wakeups
        ready_lists = self._ready
        waiting = self._waiting
        class_ids = self._class_ids
        mask = self._mask
        while heap and heap[0] <= cycle:
            for seq in wakeups.pop(heappop(heap)):
                slot = seq & mask
                pending = waiting[slot] - 1
                waiting[slot] = pending
                if not pending:
                    # Inlined _push_ready.
                    self._ready_total += 1
                    ready = ready_lists[class_ids[slot]]
                    if ready and seq < ready[-1]:
                        insort(ready, seq)
                    else:
                        ready.append(seq)

    def select(
        self,
        cycle: int,
        ready_fn: Callable[[int, int], bool] | None = None,
    ) -> list[int]:
        """Pick the sequence numbers to issue this cycle and remove them.

        Args:
            cycle: Current cycle.
            ready_fn: Optional last-moment veto ``(seq, cycle) -> bool``,
                called (oldest-first) only for **load-class** instructions
                whose operands are already available.  The pipeline uses it
                for load memory-ordering conditions — the one readiness
                aspect the wakeup queue cannot index by cycle.  Other
                classes issue unconditionally once their operand count
                reaches zero.

        Returns:
            Selected sequence numbers, oldest first.
        """
        heap = self._wakeup_heap
        ready = self._ready
        dispatch_cycles = self._dispatch_cycles
        mask = self._mask
        if heap and heap[0] <= cycle:
            # Inlined _drain_wakeups: apply every wakeup due by now.
            wakeups = self._wakeups
            waiting = self._waiting
            class_ids = self._class_ids
            while heap and heap[0] <= cycle:
                for seq in wakeups.pop(heappop(heap)):
                    slot = seq & mask
                    pending = waiting[slot] - 1
                    waiting[slot] = pending
                    if not pending:
                        self._ready_total += 1
                        bucket = ready[class_ids[slot]]
                        if bucket and seq < bucket[-1]:
                            insort(bucket, seq)
                        else:
                            bucket.append(seq)
        if not self._ready_total:
            return []

        # Single-competitor fast path (the overwhelmingly common case):
        # exactly one class has both ready entries and port width, so walk
        # that one list oldest-first without building cursor records at all.
        single = -1
        multi = False
        for class_id, limit in self._port_limits:
            if limit and ready[class_id]:
                if single >= 0:
                    multi = True
                    break
                single = class_id
        if not multi:
            if single < 0:
                return []
            limit = self._port_limits[single][1]
            entries = ready[single]
            gate = ready_fn if single == CLASS_LOAD else None
            remaining_total = self._total_issue
            selected = []
            kept: list[int] | None = None
            index = 0
            count = len(entries)
            while index < count and limit and remaining_total:
                seq = entries[index]
                index += 1
                if (dispatch_cycles[seq & mask] >= cycle   # earliest issue is next cycle
                        or (gate is not None and not gate(seq, cycle))):
                    if kept is None:
                        kept = [seq]
                    else:
                        kept.append(seq)
                    continue
                selected.append(seq)
                limit -= 1
                remaining_total -= 1
            if index:
                if kept is None:
                    if index == count:
                        entries.clear()
                    else:
                        del entries[:index]
                else:
                    kept.extend(entries[index:])
                    ready[single] = kept
            if selected:
                self._count -= len(selected)
                self._ready_total -= len(selected)
            return selected

        # General path: two or more classes compete (the single-competitor
        # case was handled above); merge by sequence number with per-class
        # cursors [entries, next index, remaining port width, kept-back
        # seqs, class id, load veto or None].
        cursors = []
        for class_id, limit in self._port_limits:
            if limit and ready[class_id]:
                gate = ready_fn if class_id == CLASS_LOAD else None
                cursors.append([ready[class_id], 0, limit, None, class_id, gate])

        remaining_total = self._total_issue
        selected = []
        active = list(cursors)
        while remaining_total and active:
            # Oldest ready instruction among classes with port width left.
            best = active[0]
            best_seq = best[0][best[1]]
            for cursor in active[1:]:
                seq = cursor[0][cursor[1]]
                if seq < best_seq:
                    best = cursor
                    best_seq = seq
            entries, index = best[0], best[1]
            seq = entries[index]
            best[1] = index + 1
            gate = best[5]
            if (dispatch_cycles[seq & mask] >= cycle   # earliest issue is next cycle
                    or (gate is not None and not gate(seq, cycle))):
                if best[3] is None:
                    best[3] = [seq]
                else:
                    best[3].append(seq)
            else:
                selected.append(seq)
                best[2] -= 1
                remaining_total -= 1
                if not best[2]:
                    active.remove(best)
                    continue
            if best[1] == len(entries):
                active.remove(best)

        # Re-assemble each touched ready list: seqs passed over stay, in
        # order, ahead of the not-yet-visited suffix (both are ascending and
        # every kept seq precedes the suffix's).
        for entries, index, _limit, kept, class_id, _gate in cursors:
            if index == 0:
                continue
            if kept is None:
                if index == len(entries):
                    entries.clear()
                else:
                    del entries[:index]
            else:
                kept.extend(entries[index:])
                ready[class_id] = kept
        if selected:
            self._count -= len(selected)
            self._ready_total -= len(selected)
        return selected
