"""Load and store queues with store-to-load forwarding."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class StoreQueueEntry:
    """One in-flight store.

    The address/value become known when the store issues (executes its
    address generation); the entry leaves the queue when the store commits
    and writes the data cache.
    """

    seq: int
    pc: int
    size: int
    trace_addr: int                 # architecturally correct address (from the trace)
    addr: int | None = None         # known after the store executes
    value: int | None = None
    executed: bool = False
    complete_cycle: int = -1


def ranges_overlap(addr_a: int, size_a: int, addr_b: int, size_b: int) -> bool:
    """True if the byte ranges [a, a+size_a) and [b, b+size_b) intersect."""
    return addr_a < addr_b + size_b and addr_b < addr_a + size_a


def range_covers(addr_a: int, size_a: int, addr_b: int, size_b: int) -> bool:
    """True if range A fully covers range B."""
    return addr_a <= addr_b and addr_a + size_a >= addr_b + size_b


@dataclass(slots=True)
class LoadCheck:
    """Outcome of disambiguating a load against the store queue."""

    action: str                      # "forward" | "wait_store" | "violation" | "memory"
    store: StoreQueueEntry | None = None
    value: int | None = None


#: Shared read-only result for the common "no conflicting store" case, so
#: the per-load disambiguation path allocates nothing when the queue has no
#: overlap (never mutate it).
_MEMORY_CHECK = LoadCheck("memory")


class StoreQueue:
    """In-order store queue (program order) with forwarding search.

    ``entries`` stays in program order for the youngest-first disambiguation
    walk; a seq-keyed index makes the execute-time :meth:`find` O(1).
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: list[StoreQueueEntry] = []
        self._by_seq: dict[int, StoreQueueEntry] = {}

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def occupancy(self) -> int:
        """Entries currently held (the observability layer's SQ probe)."""
        return len(self.entries)

    @property
    def full(self) -> bool:
        """True when no store-queue entry is free."""
        return len(self.entries) >= self.capacity

    def add(self, entry: StoreQueueEntry) -> None:
        """Append an in-flight store (dispatch order == program order)."""
        if len(self.entries) >= self.capacity:
            raise RuntimeError("store queue overflow (dispatch should have stalled)")
        self.entries.append(entry)
        self._by_seq[entry.seq] = entry

    def find(self, seq: int) -> StoreQueueEntry | None:
        """The entry for store ``seq`` (None if absent)."""
        return self._by_seq.get(seq)

    def pop_committed(self, seq: int) -> StoreQueueEntry:
        """Remove the (oldest) entry for ``seq`` at commit."""
        entry = self._by_seq.pop(seq, None)
        if entry is None:
            raise KeyError(f"store {seq} not in the store queue")
        self.entries.remove(entry)
        return entry

    def has_unexecuted_older(self, seq: int) -> bool:
        """True if any store older than ``seq`` has not executed yet."""
        return any(e.seq < seq and not e.executed for e in self.entries)

    def check_load(self, seq: int, addr: int, size: int) -> LoadCheck:
        """Disambiguate a load at address ``addr`` against older stores.

        Scans older stores from youngest to oldest:

        * an older not-yet-executed store whose (architectural) address
          overlaps the load → the load would consume stale data: this is a
          memory-ordering **violation** if the load goes ahead now;
        * an executed, overlapping store that fully covers the load →
          **forward** its value;
        * an executed, partially overlapping store → the load must
          **wait_store** until that store commits;
        * otherwise the load reads the **memory** image.
        """
        # The queue is kept in program order (appends happen at dispatch),
        # so a reverse walk visits older stores youngest-first without the
        # sort the previous implementation paid on every load.
        end = addr + size
        for entry in reversed(self.entries):
            if entry.seq >= seq:
                continue
            if not entry.executed:
                trace_addr = entry.trace_addr
                if trace_addr < end and addr < trace_addr + entry.size:
                    return LoadCheck("violation", store=entry)
                continue
            entry_addr = entry.addr
            if entry_addr is None or not (entry_addr < end
                                          and addr < entry_addr + entry.size):
                continue
            if entry_addr <= addr and entry_addr + entry.size >= end:
                offset = addr - entry_addr
                mask = (1 << (8 * size)) - 1
                value = (entry.value >> (8 * offset)) & mask
                return LoadCheck("forward", store=entry, value=value)
            return LoadCheck("wait_store", store=entry)
        return _MEMORY_CHECK


class LoadQueue:
    """Bookkeeping-only load queue (capacity limit on in-flight loads)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: set[int] = set()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def occupancy(self) -> int:
        """Entries currently held (the observability layer's LQ probe)."""
        return len(self.entries)

    @property
    def full(self) -> bool:
        """True when no load-queue entry is free."""
        return len(self.entries) >= self.capacity

    def add(self, seq: int) -> None:
        """Track an in-flight load (capacity limit only)."""
        if len(self.entries) >= self.capacity:
            raise RuntimeError("load queue overflow (dispatch should have stalled)")
        self.entries.add(seq)

    def remove(self, seq: int) -> None:
        """Stop tracking a retired load (no-op for unknown loads)."""
        self.entries.discard(seq)
