"""Execution helpers: latencies and value computation on physical registers.

The pipeline is execute-in-execute: ALU results are recomputed from physical
register values (plus RENO_CF map-table displacements, i.e. fused additions)
and later checked against the architectural trace at commit.
"""

from __future__ import annotations

from repro.functional.trace import DynamicInstruction
from repro.isa.opcodes import OpClass
from repro.isa.semantics import alu_eval, mask64
from repro.uarch.rename import RenameResult


def execution_latency(dyn: DynamicInstruction) -> int:
    """Base execution latency (cache latency for loads is added separately)."""
    return dyn.instruction.spec.latency


def operand_values(
    rename: RenameResult, read_preg, *, fused: bool = True
) -> list[int]:
    """Materialise source operand values.

    Args:
        rename: The instruction's rename result.
        read_preg: Callable ``preg -> value``.
        fused: If True, add the map-table displacement to the register value
            (the fused-operation data path).  The conventional pipeline always
            has zero displacements, so this is a no-op there.
    """
    values = []
    for source in rename.sources:
        value = read_preg(source.preg)
        if fused and source.disp:
            value = mask64(value + source.disp)
        values.append(value)
    return values


def compute_alu_value(dyn: DynamicInstruction, operands: list[int]) -> int:
    """Compute the result of a non-memory instruction from operand values."""
    instruction = dyn.instruction
    op_class = instruction.spec.op_class
    if op_class is OpClass.CALL:
        # The link value is the fall-through PC, independent of operands.
        return mask64(dyn.pc + 4)
    a = operands[0] if operands else 0
    b = operands[1] if len(operands) > 1 else 0
    return alu_eval(instruction.opcode, a, b, instruction.imm)


def effective_address(dyn: DynamicInstruction, operands: list[int]) -> int:
    """Effective address of a load/store from its (fused) base operand."""
    return mask64(operands[0] + dyn.instruction.imm)


def store_value(dyn: DynamicInstruction, operands: list[int]) -> int:
    """Value a store writes to memory (after the store-data-path addition)."""
    size = dyn.instruction.spec.mem_bytes
    mask = (1 << (8 * size)) - 1
    return operands[1] & mask
