"""Pluggable execution backends for experiment grids.

:func:`execute_grid` is the machinery behind
:func:`repro.harness.runner.run_matrix`: it splits the (workload × machine ×
RENO config) grid into one :class:`WorkloadTask` per workload, consults the
on-disk outcome cache, and hands the task list to an :class:`Executor`:

* :class:`SerialExecutor` runs every task in-process (keeping full outcomes).
* :class:`ProcessExecutor` fans tasks out over a ``fork`` multiprocessing
  pool, falling back to serial when the platform lacks ``fork``, a task
  cannot be pickled, or there is only one task.
* :class:`AutoExecutor` — the default behind ``jobs="auto"`` — probes the
  CPU count, the grid size, and the *measured* per-cell cost of the first
  workload before committing to a backend, so single-core containers and
  tiny grids never pay fork + pickling overhead just to lose to the plain
  serial loop.

Design points:

* **Task granularity is one workload.**  All (machine, RENO) points of a
  workload share one functional trace — exactly the paper's methodology and
  the serial runner's behaviour — so splitting finer would recompute traces.
  Parallelism across workloads is where the wall-clock time is.
* **Deterministic ordering.**  Results are assembled in grid order (workload,
  then machine, then RENO label) regardless of worker completion order, so
  ``MatrixResult`` iteration order is identical to the serial runner's.
* **Graceful fallback.**  Every executor degrades to in-process execution
  with identical results whenever a pool cannot help.
* **Cache-aware workers.**  Each worker checks the cache per grid point and
  only computes (and stores) the misses; the functional trace is built only
  if at least one point of the workload misses.

Workers return *slim* outcomes (no program / functional trace) to keep
inter-process traffic proportional to the statistics, not the trace length.
The in-process path keeps full outcomes for cache misses, preserving the
original ``run_matrix`` behaviour for callers that inspect
``outcome.functional``.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Protocol, runtime_checkable

from repro.core.config import RenoConfig
from repro.core.simulator import SimulationOutcome, simulate
from repro.functional.simulator import FunctionalSimulator
from repro.harness.cache import (
    SimulationCache,
    outcome_key,
    program_digest,
    resolve_cache,
)
from repro.store.base import open_store, store_locator
from repro.uarch.backend import DEFAULT_BACKEND, resolve_backend
from repro.uarch.config import MachineConfig
from repro.workloads.base import Workload

#: Environment variable supplying the default worker count for ``jobs=None``
#: (an integer, or ``auto`` for adaptive backend selection).
JOBS_ENV = "REPRO_JOBS"

#: Environment variable enabling the distributed fleet backend for
#: ``jobs=None`` (its value is the fleet worker-process count); an explicit
#: ``$REPRO_JOBS`` still wins.  See :mod:`repro.api.fleet`.
FLEET_ENV = "REPRO_FLEET"

#: Grid-point key: (workload name, machine label, RENO label).
GridKey = tuple[str, str, str]

#: One executed workload block: grid-ordered (key, outcome) pairs.
Block = list[tuple[GridKey, SimulationOutcome]]

#: Per-cell completion callback: ``progress(grid_key, cached)`` is invoked
#: once per grid cell as its outcome becomes available (``cached`` is True
#: for cache hits).  A callback accepting a third positional argument is
#: additionally handed the cell's :class:`SimulationOutcome` — this is how
#: the session streams live per-cell utilization.  In-process execution
#: streams cell by cell; pool execution streams block by block as workers
#: finish.
ProgressFn = Callable[[GridKey, bool], None]

#: Cooperative cancellation probe: return True to abort the grid.
CancelFn = Callable[[], bool]


class ExecutionCancelled(RuntimeError):
    """A grid execution was aborted by its cancellation callback."""


def _progress_emitter(progress):
    """Normalise a progress callback to the 3-arg form.

    Legacy callbacks take ``(grid_key, cached)``; outcome-aware callbacks
    (the session's live-utilization hook) take ``(grid_key, cached,
    outcome)``.  Both keep working: the returned emitter always accepts
    three arguments and drops the outcome for 2-arg callbacks.
    """
    if progress is None:
        return None
    try:
        parameters = list(inspect.signature(progress).parameters.values())
    except (TypeError, ValueError):
        parameters = []
    positional = sum(1 for p in parameters
                     if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD))
    if positional >= 3 or any(p.kind == p.VAR_POSITIONAL for p in parameters):
        return progress
    return lambda grid_key, cached, outcome: progress(grid_key, cached)

#: Estimated remaining serial seconds above which :class:`AutoExecutor`
#: switches from the serial loop to a process pool.  Roughly an order of
#: magnitude above pool spawn + pickling overhead, so going parallel is only
#: chosen when it can actually pay for itself.
PROBE_THRESHOLD_S = 0.5


@dataclass(frozen=True)
class WorkloadTask:
    """Everything a worker needs to run one workload's (machine × RENO) block."""

    workload: Workload
    scale: int
    machines: tuple[tuple[str, MachineConfig], ...]
    renos: tuple[tuple[str, RenoConfig | None], ...]
    collect_timing: bool
    max_instructions: int
    #: Result-store locator (a path, ``sqlite://...`` or ``http://...``;
    #: see :func:`repro.store.base.open_store`); None disables caching.
    #: Named ``cache_root`` for wire/pickle compatibility with pre-store
    #: payloads, where it was always a directory path.
    cache_root: str | None
    record_stats: bool = False
    #: Cycle-loop backend name (see :mod:`repro.uarch.backend`); None defers
    #: to ``$REPRO_BACKEND``/``python`` at simulation time.  Never part of
    #: the outcome-cache key — results are backend-independent.
    backend: str | None = None

    @property
    def cells(self) -> int:
        """Number of grid points this task covers."""
        return len(self.machines) * len(self.renos)


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a numeric ``jobs=`` argument (None → ``$REPRO_JOBS`` or 1).

    Kept for backwards compatibility with pre-executor callers; the engine
    itself now routes through :func:`resolve_executor`, which also accepts
    ``"auto"``.
    """
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    return max(1, jobs)


def _slim(outcome: SimulationOutcome) -> SimulationOutcome:
    """Drop the program and functional trace before crossing a process pipe."""
    return replace(outcome, program=None, functional=None)


def run_workload_block(
    task: WorkloadTask,
    *,
    slim: bool,
    cache: SimulationCache | None = None,
    progress: ProgressFn | None = None,
    cancel: CancelFn | None = None,
) -> Block:
    """Run (or load from cache) every grid point of one workload.

    Args:
        task: The workload block description.
        slim: Strip programs/traces from computed outcomes (used by worker
            processes; the in-process path keeps them).
        cache: Store instance to use; defaults to one opened from the
            ``task.cache_root`` locator (worker processes build their own
            so the task stays cheap to pickle).
        progress: Optional per-cell completion callback (see
            :data:`ProgressFn`).
        cancel: Optional cancellation probe, checked before every computed
            cell; raises :class:`ExecutionCancelled` when it returns True.

    Returns:
        ``[(grid_key, outcome), ...]`` in (machine, RENO) grid order.
    """
    workload = task.workload
    emit = _progress_emitter(progress)
    if cache is None and task.cache_root is not None:
        cache = open_store(task.cache_root)
    if cancel is not None and cancel():
        raise ExecutionCancelled(f"cancelled before workload {workload.name}")
    program = workload.build(task.scale)
    digest = program_digest(program) if cache is not None else ""

    points: list[tuple[GridKey, str | None, SimulationOutcome | None]] = []
    misses = 0
    for machine_label, machine in task.machines:
        for reno_label, reno in task.renos:
            grid_key = (workload.name, machine_label, reno_label)
            key = None
            outcome = None
            if cache is not None:
                key = outcome_key(digest, machine, reno,
                                  task.max_instructions, task.collect_timing,
                                  task.record_stats)
                outcome = cache.get(key)
            if outcome is None:
                misses += 1
            points.append((grid_key, key, outcome))

    functional = None
    if misses:
        functional = FunctionalSimulator(program, task.max_instructions).run()

    machines = dict(task.machines)
    renos = dict(task.renos)
    results: Block = []
    for grid_key, key, outcome in points:
        cached = outcome is not None
        if outcome is None:
            if cancel is not None and cancel():
                raise ExecutionCancelled(f"cancelled in workload {workload.name}")
            _, machine_label, reno_label = grid_key
            outcome = simulate(
                program,
                machines[machine_label],
                renos[reno_label],
                trace=functional,
                collect_timing=task.collect_timing,
                record_stats=task.record_stats,
                max_instructions=task.max_instructions,
                backend=task.backend,
            )
            if cache is not None:
                cache.put(key, outcome)
            if slim:
                outcome = _slim(outcome)
        results.append((grid_key, outcome))
        if emit is not None:
            emit(grid_key, cached, outcome)
    return results


def _worker(task: WorkloadTask):
    """Pool entry point: slim outcomes plus the worker-local cache stats,
    which the parent merges so ``cache.stats`` is meaningful for pools."""
    cache = open_store(task.cache_root)
    block = run_workload_block(task, slim=True, cache=cache)
    return block, (cache.stats if cache is not None else None)


def _task_fully_cached(task: WorkloadTask, cache: SimulationCache) -> bool:
    """Whether every grid point of ``task`` already has a store entry.

    Checks entry existence only (``contains``: no payload decode, no
    hit/miss stats), so the :class:`AutoExecutor` recall path can cheaply
    distinguish a warm repeat run from a cold grid before committing to a
    worker pool.
    """
    program = task.workload.build(task.scale)
    digest = program_digest(program)
    for _, machine in task.machines:
        for _, reno in task.renos:
            key = outcome_key(digest, machine, reno,
                              task.max_instructions, task.collect_timing,
                              task.record_stats)
            if not cache.contains(key):
                return False
    return True


def _fork_context():
    """The fork multiprocessing context, or None when the platform lacks it."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _tasks_picklable(tasks: list[WorkloadTask]) -> bool:
    """Whether every task can cross a process boundary (ad-hoc workloads with
    closure builders cannot; they silently run in-process instead)."""
    try:
        for task in tasks:
            pickle.dumps(task)
    except Exception:
        return False
    return True


def build_tasks(
    workloads: list[Workload],
    machines: dict[str, MachineConfig],
    renos: dict[str, RenoConfig | None],
    *,
    scale: int = 1,
    collect_timing: bool = False,
    record_stats: bool = False,
    max_instructions: int = 2_000_000,
    cache_root: str | None = None,
    backend: str | None = None,
) -> list[WorkloadTask]:
    """One :class:`WorkloadTask` per workload, covering the full grid."""
    return [
        WorkloadTask(
            workload=workload,
            scale=scale,
            machines=tuple(machines.items()),
            renos=tuple(renos.items()),
            collect_timing=collect_timing,
            max_instructions=max_instructions,
            cache_root=cache_root,
            record_stats=record_stats,
            backend=backend,
        )
        for workload in workloads
    ]


# ---------------------------------------------------------------------------
# The persisted cost model
# ---------------------------------------------------------------------------


#: File name of the persisted cost model inside the outcome-cache root.
COSTS_FILENAME = "costs.json"

#: Meta-document name the cost model lives under in a result store (the
#: disk tier maps it onto :data:`COSTS_FILENAME` in the store root).
COSTS_META = "costs"


class CostModel:
    """Cross-run store of measured per-workload cell timings.

    Lives in the result store's ``costs`` meta document — for the disk
    tier that is the historical ``$REPRO_CACHE_DIR/costs.json``; through
    the sqlite or HTTP tiers the same document is shared fleet-wide, so
    one worker's probe timing spares every other worker the probe.  Keys
    are per workload task — name, scale, timing collection and
    instruction budget — mirroring how the outcome cache distinguishes
    grid points; values are measured serial seconds per computed
    (machine × RENO) cell.

    :class:`AutoExecutor` records a cost every time its in-process probe
    actually computes cells, and on later runs uses the recorded costs to
    pick the serial loop or the process pool *without any probe*.  Costs are
    advisory (a stale entry can only cost wall-clock time, never results),
    so the store degrades gracefully: unreadable documents read as empty
    and failed writes are ignored.
    """

    def __init__(self, store):
        """Create a model over ``store`` — a result store, or a cache-root
        path/str (the historical form), which opens the disk tier there."""
        if isinstance(store, (str, Path)):
            store = open_store(store)
        self._store = store
        root = getattr(store, "root", None)
        #: Path of the backing ``costs.json`` for disk-tier models (the
        #: historical attribute; None for shared tiers, which have no file).
        self.path = Path(root) / COSTS_FILENAME if root is not None else None

    @staticmethod
    def key(task: WorkloadTask) -> str:
        """The store key for one workload task (outcome-cache style).

        Includes the *resolved* cycle-loop backend name — ``task.backend``
        run through :func:`repro.uarch.backend.resolve_backend`, so a
        requested-but-unavailable ``compiled`` keys as ``python``, matching
        the loop that will actually run.  Compiled-backend timings are an
        order of magnitude off python-backend ones; sharing entries would
        poison the pool-or-serial decision for whichever backend reads a
        cost the other wrote.
        """
        backend = resolve_backend(task.backend).name
        return (f"{task.workload.name}|scale={task.scale}"
                f"|timing={int(task.collect_timing)}"
                f"|stats={int(task.record_stats)}"
                f"|budget={task.max_instructions}"
                f"|backend={backend}")

    def load(self) -> dict[str, float]:
        """All recorded costs (empty on a missing or unreadable store).

        Version-1 stores (written before backends existed) lack the
        ``|backend=`` key component; every v1 timing was measured on the
        python reference loop, so such keys are read as
        ``|backend=python`` entries.  The migration is pure-read — the
        document itself upgrades on the next :meth:`record`, and a v1 key
        never shadows a real v2 entry.
        """
        try:
            payload = self._store.get_meta(COSTS_META)
        except Exception:             # noqa: BLE001 - advisory data only
            return {}
        costs: dict[str, float] = {}
        migrated: dict[str, float] = {}
        for key, value in payload.items():
            if not isinstance(value, (int, float)):
                continue
            if "|backend=" in key:
                costs[key] = float(value)
            else:
                migrated[f"{key}|backend={DEFAULT_BACKEND}"] = float(value)
        for key, value in migrated.items():
            costs.setdefault(key, value)
        return costs

    def record(self, task: WorkloadTask, seconds_per_cell: float) -> None:
        """Merge one measured cost into the store (atomic, best-effort).

        The merge happens store-side (:meth:`~repro.store.base.ResultStore.
        merge_meta`): the disk tier runs it under a cross-process file
        lock, the sqlite tier inside a transaction, and the HTTP tier on
        the server — so parallel Sessions and fleet workers sharing one
        store never lose each other's entries.
        """
        try:
            self._store.merge_meta(
                COSTS_META, {self.key(task): seconds_per_cell})
        except Exception:             # noqa: BLE001 - advisory data only
            pass


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


@runtime_checkable
class Executor(Protocol):
    """Strategy for running a list of workload tasks.

    Implementations must return one block per task, **in task order**, with
    each block's (machine, RENO) pairs in grid order — the deterministic
    ordering contract every consumer of :func:`execute_grid` relies on.

    ``progress``/``cancel`` are optional keyword hooks (see
    :data:`ProgressFn` / :data:`CancelFn`); :func:`execute_grid` only passes
    them when the caller supplied one, so minimal implementations taking
    just ``(tasks, cache)`` keep working for plain runs.
    """

    def execute(
        self,
        tasks: list[WorkloadTask],
        cache: SimulationCache | None,
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
    ) -> list[Block]:
        """Run every task and return their blocks in task order."""
        ...  # pragma: no cover - protocol definition


class SerialExecutor:
    """Run every task in-process (full, non-slim outcomes)."""

    def execute(
        self,
        tasks: list[WorkloadTask],
        cache: SimulationCache | None,
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
    ) -> list[Block]:
        """Run the tasks one after another in the current process."""
        return [
            run_workload_block(task, slim=False, cache=cache,
                               progress=progress, cancel=cancel)
            for task in tasks
        ]


def _emit_block_progress(block: Block, progress: ProgressFn | None) -> None:
    """Fire the per-cell callback for a block computed elsewhere."""
    emit = _progress_emitter(progress)
    if emit is None:
        return
    for grid_key, outcome in block:
        emit(grid_key, outcome.cached, outcome)


def _delegate(
    executor: Executor,
    tasks: list[WorkloadTask],
    cache: SimulationCache | None,
    progress: ProgressFn | None,
    cancel: CancelFn | None,
) -> list[Block]:
    """Forward to another executor, passing the hooks only when set.

    Keeps the historical two-argument ``execute(tasks, cache)`` call shape
    for plain runs, so minimal/stubbed executors (tests, user subclasses)
    that predate the hooks keep working.
    """
    if progress is None and cancel is None:
        return executor.execute(tasks, cache)
    return executor.execute(tasks, cache, progress=progress, cancel=cancel)


class ProcessExecutor:
    """Fan tasks out over a ``fork`` multiprocessing pool.

    Falls back to :class:`SerialExecutor` whenever a pool cannot help or
    cannot work: a single task, ``jobs <= 1``, a platform without ``fork``,
    or tasks that cannot be pickled.

    Progress streams block by block as workers finish (worker processes
    cannot call back into the parent per cell); cancellation is checked
    between arriving blocks and terminates the pool.
    """

    def __init__(self, jobs: int):
        """Create an executor using at most ``jobs`` worker processes."""
        self.jobs = jobs

    def execute(
        self,
        tasks: list[WorkloadTask],
        cache: SimulationCache | None,
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
    ) -> list[Block]:
        """Run the tasks on a worker pool (serial fallback when impossible)."""
        jobs = min(self.jobs, len(tasks))
        context = _fork_context()
        if jobs <= 1 or context is None or not _tasks_picklable(tasks):
            return _delegate(SerialExecutor(), tasks, cache, progress, cancel)
        blocks: list[Block] = []
        with context.Pool(processes=jobs) as pool:
            # imap preserves task order while letting finished blocks stream
            # back before the whole grid is done (progress + cancellation).
            for block, worker_stats in pool.imap(_worker, tasks):
                if cancel is not None and cancel():
                    pool.terminate()
                    raise ExecutionCancelled(
                        f"cancelled after {len(blocks)}/{len(tasks)} workloads")
                blocks.append(block)
                if cache is not None and worker_stats is not None:
                    cache.stats.hits += worker_stats.hits
                    cache.stats.misses += worker_stats.misses
                    cache.stats.stores += worker_stats.stores
                _emit_block_progress(block, progress)
        return blocks


class AutoExecutor:
    """Adaptive backend selection: recall, else probe, then commit.

    The decision has three phases:

    1. **Static** (:meth:`static_choice`): serial whenever a pool cannot
       possibly win — one CPU, fewer than two tasks, no ``fork``, or
       unpicklable tasks.  This is what fixes the historical single-core
       regression, where fork + pickling overhead made ``jobs=N`` slower
       than the plain loop.
    2. **Recall** (when a cache is active): if the persisted
       :class:`CostModel` has a measured per-cell cost for *every* task,
       the backend is chosen from the recorded costs alone — no probe runs
       at all on repeat grids.
    3. **Probe**: otherwise tasks run in-process until one actually
       *computes* something (an all-cache-hit block costs ~nothing and says
       nothing about simulation cost, so it is consumed and the probe moves
       on), giving a measured per-miss cell cost — which is also recorded
       into the cost model for the next run.  The remaining tasks go to a
       :class:`ProcessExecutor` only when their estimated serial time
       exceeds ``probe_threshold_s``; tiny grids (e.g. micro-workload test
       sweeps) stay serial and skip pool spawn entirely.

    Simulated results are identical whichever backend is chosen; only
    wall-clock time (and outcome slimness, see module docstring) differ.
    """

    def __init__(
        self,
        max_jobs: int | None = None,
        cpu_count: int | None = None,
        probe_threshold_s: float = PROBE_THRESHOLD_S,
    ):
        """Create the executor.

        Args:
            max_jobs: Cap on worker processes (None = number of CPUs).
            cpu_count: Override the probed CPU count (for tests).
            probe_threshold_s: Estimated remaining serial seconds above
                which the process pool is chosen.
        """
        self.max_jobs = max_jobs
        self.cpu_count = cpu_count
        self.probe_threshold_s = probe_threshold_s

    def _cpus(self) -> int:
        return self.cpu_count if self.cpu_count is not None else (os.cpu_count() or 1)

    def static_choice(self, tasks: list[WorkloadTask]) -> Executor | None:
        """The backend decidable without probing, or None when a probe is needed."""
        if self._cpus() <= 1 or len(tasks) < 2:
            return SerialExecutor()
        if _fork_context() is None or not _tasks_picklable(tasks):
            return SerialExecutor()
        return None

    def _pool_jobs(self, tasks: list[WorkloadTask]) -> int:
        jobs = min(self._cpus(), len(tasks))
        if self.max_jobs is not None:
            jobs = min(jobs, self.max_jobs)
        return jobs

    def execute(
        self,
        tasks: list[WorkloadTask],
        cache: SimulationCache | None,
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
    ) -> list[Block]:
        """Run the tasks on the backend the cost model or probe selects."""
        choice = self.static_choice(tasks)
        if choice is not None:
            return _delegate(choice, tasks, cache, progress, cancel)

        # Recall: with a recorded cost for every task, choose the backend
        # without probing at all (the cross-run cost model lives next to
        # the outcome cache).  Recorded costs assume uncached cells, so
        # before committing to a pool the first task's cache entries are
        # checked: a fully warm leading block means the grid is probably
        # warm, and the probe loop below (which consumes all-hit blocks
        # in-process) handles that case without ever spawning workers.
        model = CostModel(cache) if cache is not None else None
        if model is not None:
            costs = model.load()
            if costs:
                known = [costs.get(CostModel.key(task)) for task in tasks]
                if all(cost is not None for cost in known):
                    estimate = sum(cost * task.cells
                                   for cost, task in zip(known, tasks))
                    if estimate < self.probe_threshold_s:
                        return _delegate(SerialExecutor(), tasks, cache,
                                         progress, cancel)
                    if not _task_fully_cached(tasks[0], cache):
                        return _delegate(ProcessExecutor(self._pool_jobs(tasks)),
                                         tasks, cache, progress, cancel)

        # Probe in-process until a block actually computes cells: estimating
        # cost from an all-cache-hit block would read as "free" and wrongly
        # keep an expensive, mostly-uncached remainder serial.
        blocks: list[Block] = []
        per_cell = None
        index = 0
        while index < len(tasks):
            task = tasks[index]
            misses_before = cache.stats.misses if cache is not None else 0
            start = time.perf_counter()
            blocks.append(run_workload_block(task, slim=False, cache=cache,
                                             progress=progress, cancel=cancel))
            elapsed = time.perf_counter() - start
            computed = (cache.stats.misses - misses_before
                        if cache is not None else task.cells)
            index += 1
            if computed:
                per_cell = elapsed / computed
                if model is not None:
                    model.record(task, per_cell)
                break

        rest = tasks[index:]
        if not rest:
            return blocks
        # Remaining cells are costed as if uncached — an upper bound, so a
        # warm remainder at worst pays one pool spawn for near-free hits.
        remaining_cells = sum(task.cells for task in rest)
        if per_cell * remaining_cells < self.probe_threshold_s:
            blocks.extend(_delegate(SerialExecutor(), rest, cache,
                                    progress, cancel))
        else:
            blocks.extend(_delegate(ProcessExecutor(self._pool_jobs(rest)),
                                    rest, cache, progress, cancel))
        return blocks


def resolve_executor(
    jobs: int | str | None = None, executor: Executor | None = None
) -> Executor:
    """Normalise the ``jobs=`` / ``executor=`` arguments to an :class:`Executor`.

    * An explicit ``executor`` always wins.
    * ``jobs=None`` (the default) reads ``$REPRO_JOBS``; when that is also
      unset but ``$REPRO_FLEET`` is set, the process-shared distributed
      fleet is selected; otherwise ``"auto"``.
    * ``jobs="auto"`` selects :class:`AutoExecutor`.
    * ``jobs="fleet"`` selects the process-shared
      :class:`repro.api.fleet.FleetExecutor` (broker + worker processes
      over the wire schema; worker count from ``$REPRO_FLEET``).
    * ``jobs<=1`` selects :class:`SerialExecutor`; larger integers select
      :class:`ProcessExecutor` with that many workers.
    """
    if executor is not None:
        return executor
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV, "").strip()
        if not jobs:
            jobs = "fleet" if os.environ.get(FLEET_ENV, "").strip() else "auto"
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            return AutoExecutor()
        if jobs.lower() == "fleet":
            # Imported lazily: the fleet lives in the api layer, and plain
            # in-process runs must not pay (or require) its import.
            from repro.api.fleet import shared_fleet

            return shared_fleet()
        try:
            jobs = int(jobs)
        except ValueError:
            return AutoExecutor()
    if jobs <= 1:
        return SerialExecutor()
    return ProcessExecutor(jobs)


# ---------------------------------------------------------------------------
# The grid entry point
# ---------------------------------------------------------------------------


def execute_grid(
    workloads: list[Workload],
    machines: dict[str, MachineConfig],
    renos: dict[str, RenoConfig | None],
    *,
    scale: int = 1,
    collect_timing: bool = False,
    record_stats: bool = False,
    max_instructions: int = 2_000_000,
    jobs: int | str | None = None,
    cache: SimulationCache | bool | str | None = None,
    executor: Executor | None = None,
    progress: ProgressFn | None = None,
    cancel: CancelFn | None = None,
    backend: str | None = None,
) -> dict[GridKey, SimulationOutcome]:
    """Run the full grid and return outcomes in deterministic grid order.

    Args:
        workloads: Resolved workload objects (one task each).
        machines: Machine-label → configuration.
        renos: RENO-label → configuration (None = baseline).
        scale: Workload scale factor.
        collect_timing: Keep per-instruction timing records.
        record_stats: Record occupancy/utilization histograms per cell
            (``outcome.stats.occupancy``; see :mod:`repro.uarch.observe`).
        max_instructions: Functional-simulation budget.
        jobs: Worker processes: an int, ``"auto"`` (adaptive; the default),
            or None to read ``$REPRO_JOBS``.
        cache: Outcome cache; accepts every form
            :func:`repro.harness.cache.resolve_cache` understands
            (instance / bool / path / None).
        executor: Explicit :class:`Executor` instance (overrides ``jobs``).
        progress: Optional per-cell completion callback
            (:data:`ProgressFn`); this is what streams job progress out of
            a :class:`repro.api.session.Session`.
        cancel: Optional cancellation probe (:data:`CancelFn`); a True
            return aborts the grid with :class:`ExecutionCancelled`.
        backend: Cycle-loop backend name for every simulation in the grid
            (see :mod:`repro.uarch.backend`); None defers to
            ``$REPRO_BACKEND``/``python``.  Provenance only — outcome-cache
            keys do not include it, because results are
            backend-independent.

    Returns:
        ``{(workload name, machine label, reno label): outcome}`` ordered
        exactly as the serial nested loops would produce it.  Outcomes
        computed by worker processes or loaded from the cache are *slim*:
        ``program``/``functional`` are None, while all timing-side fields
        are byte-identical to an in-process run.
    """
    executor = resolve_executor(jobs, executor)
    cache = resolve_cache(cache)
    cache_root = store_locator(cache)
    tasks = build_tasks(
        workloads,
        machines,
        renos,
        scale=scale,
        collect_timing=collect_timing,
        record_stats=record_stats,
        max_instructions=max_instructions,
        cache_root=cache_root,
        backend=backend,
    )
    blocks = _delegate(executor, tasks, cache, progress, cancel) if tasks else []
    outcomes: dict[GridKey, SimulationOutcome] = {}
    for block in blocks:
        for grid_key, outcome in block:
            outcomes[grid_key] = outcome
    return outcomes
