"""Grid runner: (workload × machine × RENO config) simulation matrices."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RenoConfig
from repro.core.simulator import SimulationOutcome, simulate
from repro.functional.simulator import FunctionalSimulator
from repro.uarch.config import MachineConfig
from repro.workloads.base import Workload, get_workload

#: Label conventionally used for the RENO-less machine in config dictionaries.
SPEEDUP_BASELINE = "BASE"


@dataclass
class MatrixResult:
    """All simulation outcomes of one experiment grid."""

    outcomes: dict[tuple[str, str, str], SimulationOutcome]
    workloads: list[str]
    machine_labels: list[str]
    reno_labels: list[str]

    def get(self, workload: str, machine: str, reno: str) -> SimulationOutcome:
        return self.outcomes[(workload, machine, reno)]

    def speedup(self, workload: str, machine: str, reno: str,
                baseline_machine: str | None = None,
                baseline_reno: str = SPEEDUP_BASELINE) -> float:
        """Cycles(baseline) / cycles(config) for one workload."""
        baseline = self.get(workload, baseline_machine or machine, baseline_reno)
        target = self.get(workload, machine, reno)
        return baseline.cycles / target.cycles if target.cycles else 1.0


def _resolve_workloads(workloads: list[str | Workload]) -> list[Workload]:
    resolved = []
    for entry in workloads:
        resolved.append(get_workload(entry) if isinstance(entry, str) else entry)
    return resolved


def run_matrix(
    workloads: list[str | Workload],
    machines: dict[str, MachineConfig],
    renos: dict[str, RenoConfig | None],
    scale: int = 1,
    collect_timing: bool = False,
    max_instructions: int = 2_000_000,
) -> MatrixResult:
    """Simulate every (workload, machine, RENO config) combination.

    The functional trace for each workload is computed once and shared by all
    machine/RENO points, so every configuration sees the identical dynamic
    instruction stream (as in the paper's methodology).
    """
    resolved = _resolve_workloads(workloads)
    outcomes: dict[tuple[str, str, str], SimulationOutcome] = {}
    for workload in resolved:
        program = workload.build(scale)
        functional = FunctionalSimulator(program, max_instructions).run()
        for machine_label, machine in machines.items():
            for reno_label, reno in renos.items():
                outcomes[(workload.name, machine_label, reno_label)] = simulate(
                    program,
                    machine,
                    reno,
                    trace=functional,
                    collect_timing=collect_timing,
                )
    return MatrixResult(
        outcomes=outcomes,
        workloads=[workload.name for workload in resolved],
        machine_labels=list(machines),
        reno_labels=list(renos),
    )
