"""Grid runner: (workload × machine × RENO config) simulation matrices."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RenoConfig
from repro.core.simulator import SimulationOutcome
from repro.harness.cache import SimulationCache
from repro.harness.parallel import execute_grid
from repro.uarch.config import MachineConfig
from repro.workloads.base import Workload, get_workload

#: Label conventionally used for the RENO-less machine in config dictionaries.
SPEEDUP_BASELINE = "BASE"


class MatrixLookupError(KeyError):
    """A (workload, machine, RENO) triple absent from a result matrix.

    Carries the missing triple and the labels the matrix does contain so a
    typo'd label is diagnosable from the message alone.
    """

    def __init__(self, matrix: "MatrixResult", workload: str, machine: str, reno: str):
        self.triple = (workload, machine, reno)
        message = (
            f"no outcome for workload={workload!r}, machine={machine!r}, "
            f"reno={reno!r}; matrix has workloads={matrix.workloads}, "
            f"machines={matrix.machine_labels}, renos={matrix.reno_labels}"
        )
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError wraps its argument in repr(); unwrap for a readable message.
        return self.args[0]


@dataclass
class MatrixResult:
    """All simulation outcomes of one experiment grid."""

    outcomes: dict[tuple[str, str, str], SimulationOutcome]
    workloads: list[str]
    machine_labels: list[str]
    reno_labels: list[str]

    def get(self, workload: str, machine: str, reno: str) -> SimulationOutcome:
        """The outcome for one grid point (raises :class:`MatrixLookupError`)."""
        try:
            return self.outcomes[(workload, machine, reno)]
        except KeyError:
            raise MatrixLookupError(self, workload, machine, reno) from None

    def speedup(self, workload: str, machine: str, reno: str,
                baseline_machine: str | None = None,
                baseline_reno: str = SPEEDUP_BASELINE) -> float:
        """Cycles(baseline) / cycles(config) for one workload."""
        baseline = self.get(workload, baseline_machine or machine, baseline_reno)
        target = self.get(workload, machine, reno)
        return baseline.cycles / target.cycles if target.cycles else 1.0


def _resolve_workloads(workloads: list[str | Workload]) -> list[Workload]:
    resolved = []
    for entry in workloads:
        resolved.append(get_workload(entry) if isinstance(entry, str) else entry)
    return resolved


def run_matrix(
    workloads: list[str | Workload],
    machines: dict[str, MachineConfig],
    renos: dict[str, RenoConfig | None],
    scale: int = 1,
    collect_timing: bool = False,
    max_instructions: int = 2_000_000,
    jobs: int | None = None,
    cache: SimulationCache | bool | str | None = None,
) -> MatrixResult:
    """Simulate every (workload, machine, RENO config) combination.

    The functional trace for each workload is computed once and shared by all
    machine/RENO points, so every configuration sees the identical dynamic
    instruction stream (as in the paper's methodology).

    Args:
        workloads: Workload names (resolved via the registry) or objects.
        machines: Machine-label → configuration.
        renos: RENO-label → configuration (None = conventional baseline).
        scale: Workload scale factor.
        collect_timing: Keep per-instruction timing records (Figure 9).
        max_instructions: Functional-simulation budget per workload.
        jobs: Worker processes to fan workloads out over.  None reads
            ``$REPRO_JOBS`` (default 1); 1 runs in-process.  Simulated
            results and their ordering are identical for every ``jobs``
            value, but outcomes computed by worker processes are *slim*
            (``outcome.program``/``outcome.functional`` are None — the
            program and trace are not shipped back over the pipe); callers
            needing those fields should run with ``jobs=1`` and a cold
            cache, as cache hits are slim too.
        cache: On-disk outcome cache.  None enables it only when
            ``$REPRO_CACHE_DIR`` is set; True/False force it on/off; a path
            or :class:`~repro.harness.cache.SimulationCache` selects a
            specific cache.  See :mod:`repro.harness.cache`.
    """
    resolved = _resolve_workloads(workloads)
    outcomes = execute_grid(
        resolved,
        machines,
        renos,
        scale=scale,
        collect_timing=collect_timing,
        max_instructions=max_instructions,
        jobs=jobs,
        cache=cache,
    )
    return MatrixResult(
        outcomes=outcomes,
        workloads=[workload.name for workload in resolved],
        machine_labels=list(machines),
        reno_labels=list(renos),
    )
