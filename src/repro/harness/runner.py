"""Grid runner: (workload × machine × RENO config) simulation matrices."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RenoConfig
from repro.core.simulator import SimulationOutcome
from repro.harness.cache import SimulationCache
from repro.harness.executors import CancelFn, Executor, ProgressFn, execute_grid
from repro.uarch.config import MachineConfig
from repro.workloads.base import Workload, get_workload

#: Label conventionally used for the RENO-less machine in config dictionaries.
SPEEDUP_BASELINE = "BASE"


class MatrixLookupError(KeyError):
    """A (workload, machine, RENO) triple absent from a result matrix.

    Carries the missing triple and the labels the matrix does contain so a
    typo'd label is diagnosable from the message alone.
    """

    def __init__(self, matrix: "MatrixResult", workload: str, machine: str, reno: str):
        self.triple = (workload, machine, reno)
        message = (
            f"no outcome for workload={workload!r}, machine={machine!r}, "
            f"reno={reno!r}; matrix has workloads={matrix.workloads}, "
            f"machines={matrix.machine_labels}, renos={matrix.reno_labels}"
        )
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError wraps its argument in repr(); unwrap for a readable message.
        return self.args[0]


class ZeroCycleError(ValueError):
    """An outcome involved in a speedup has ``cycles == 0``.

    A zero-cycle outcome means the simulation never ran (or was truncated to
    nothing) — silently reporting parity would hide a broken run, so the
    offending grid point is named instead.
    """

    def __init__(self, workload: str, machine: str, reno: str):
        self.triple = (workload, machine, reno)
        super().__init__(
            f"outcome for workload={workload!r}, machine={machine!r}, "
            f"reno={reno!r} has cycles == 0; a zero-cycle outcome indicates "
            f"a broken run, not parity — refusing to compute a speedup from it"
        )


def _require_unique(labels: list[str], kind: str) -> None:
    """Raise ValueError naming any label that appears more than once."""
    seen: set[str] = set()
    duplicates: set[str] = set()
    for label in labels:
        if label in seen:
            duplicates.add(label)
        seen.add(label)
    if duplicates:
        raise ValueError(
            f"duplicate {kind} label(s) {sorted(duplicates)}: every {kind} in a "
            f"grid needs a unique label, otherwise outcomes silently overwrite "
            f"each other"
        )


def _normalize_axis(axis, kind: str) -> dict:
    """Normalise a machines/renos axis (dict or (label, config) pairs) to a
    dict, rejecting duplicate labels."""
    if isinstance(axis, dict):
        return axis
    pairs = list(axis)
    _require_unique([label for label, _ in pairs], kind)
    return dict(pairs)


@dataclass
class MatrixResult:
    """All simulation outcomes of one experiment grid."""

    outcomes: dict[tuple[str, str, str], SimulationOutcome]
    workloads: list[str]
    machine_labels: list[str]
    reno_labels: list[str]

    def get(self, workload: str, machine: str, reno: str) -> SimulationOutcome:
        """The outcome for one grid point (raises :class:`MatrixLookupError`)."""
        try:
            return self.outcomes[(workload, machine, reno)]
        except KeyError:
            raise MatrixLookupError(self, workload, machine, reno) from None

    def speedup(self, workload: str, machine: str, reno: str,
                baseline_machine: str | None = None,
                baseline_reno: str = SPEEDUP_BASELINE) -> float:
        """Cycles(baseline) / cycles(config) for one workload.

        Raises :class:`ZeroCycleError` when either outcome reports zero
        cycles (a broken run), rather than returning a fake ratio.
        """
        baseline_machine = baseline_machine or machine
        baseline = self.get(workload, baseline_machine, baseline_reno)
        target = self.get(workload, machine, reno)
        if not target.cycles:
            raise ZeroCycleError(workload, machine, reno)
        if not baseline.cycles:
            raise ZeroCycleError(workload, baseline_machine, baseline_reno)
        return baseline.cycles / target.cycles


def _resolve_workloads(workloads: list[str | Workload]) -> list[Workload]:
    resolved = []
    for entry in workloads:
        resolved.append(get_workload(entry) if isinstance(entry, str) else entry)
    _require_unique([workload.name for workload in resolved], "workload")
    return resolved


def run_matrix(
    workloads: list[str | Workload],
    machines: dict[str, MachineConfig],
    renos: dict[str, RenoConfig | None],
    scale: int = 1,
    collect_timing: bool = False,
    record_stats: bool = False,
    max_instructions: int = 2_000_000,
    jobs: int | str | None = None,
    cache: SimulationCache | bool | str | None = None,
    executor: Executor | None = None,
    progress: ProgressFn | None = None,
    cancel: CancelFn | None = None,
    backend: str | None = None,
) -> MatrixResult:
    """Simulate every (workload, machine, RENO config) combination.

    The functional trace for each workload is computed once and shared by all
    machine/RENO points, so every configuration sees the identical dynamic
    instruction stream (as in the paper's methodology).

    Duplicate labels on any axis — the same workload name twice, or a reused
    machine/RENO label — raise ValueError instead of silently overwriting
    outcomes in the result matrix.

    Args:
        workloads: Workload names (resolved via the registry) or objects.
        machines: Machine-label → configuration (a dict, or (label, config)
            pairs).
        renos: RENO-label → configuration (None = conventional baseline);
            same forms as ``machines``.
        scale: Workload scale factor.
        collect_timing: Keep per-instruction timing records (Figure 9).
        record_stats: Record per-structure occupancy histograms and issue
            utilization per cell (``outcome.stats.occupancy``; see
            :mod:`repro.uarch.observe`).
        max_instructions: Functional-simulation budget per workload.
        jobs: Worker processes to fan workloads out over: an int, ``"auto"``
            (adaptive backend selection, see
            :class:`repro.harness.executors.AutoExecutor`), or None to read
            ``$REPRO_JOBS`` (unset defaults to ``"auto"``).  Simulated
            results and their ordering are identical for every ``jobs``
            value, but outcomes computed by worker processes are *slim*
            (``outcome.program``/``outcome.functional`` are None — the
            program and trace are not shipped back over the pipe); callers
            needing those fields should run with ``jobs=1`` and a cold
            cache, as cache hits are slim too.
        cache: On-disk outcome cache.  None enables it only when
            ``$REPRO_CACHE_DIR`` is set; True/False force it on/off; a path
            or :class:`~repro.harness.cache.SimulationCache` selects a
            specific cache.  See :mod:`repro.harness.cache`.
        executor: Explicit :class:`~repro.harness.executors.Executor`
            backend (overrides ``jobs``).
        progress: Per-cell completion callback
            (:data:`~repro.harness.executors.ProgressFn`).
        cancel: Cooperative cancellation probe
            (:data:`~repro.harness.executors.CancelFn`).
        backend: Cycle-loop backend name for every simulation (``"python"``,
            ``"compiled"``; see :mod:`repro.uarch.backend`), or None to
            defer to ``$REPRO_BACKEND``/``python``.  Results are identical
            for every backend — this only changes how fast cells compute —
            so it never enters spec digests or outcome-cache keys.
    """
    resolved = _resolve_workloads(workloads)
    machines = _normalize_axis(machines, "machine")
    renos = _normalize_axis(renos, "RENO")
    outcomes = execute_grid(
        resolved,
        machines,
        renos,
        scale=scale,
        collect_timing=collect_timing,
        record_stats=record_stats,
        max_instructions=max_instructions,
        jobs=jobs,
        cache=cache,
        executor=executor,
        progress=progress,
        cancel=cancel,
        backend=backend,
    )
    return MatrixResult(
        outcomes=outcomes,
        workloads=[workload.name for workload in resolved],
        machine_labels=list(machines),
        reno_labels=list(renos),
    )
