"""Content-addressed outcome caching: key material + the default tier.

Every grid point of an experiment — one (workload program, machine
configuration, RENO configuration, instruction budget) combination — is
deterministic, so its :class:`~repro.core.simulator.SimulationOutcome` can be
computed once and reused across figure experiments and repeated benchmark
runs.  The cache key is a SHA-256 over

* a digest of the assembled program (instructions, entry point, initial
  memory) — the workload name is deliberately *not* part of the key, so two
  workloads assembling the identical program share an entry;
* :meth:`MachineConfig.digest` and :meth:`RenoConfig.digest` (behavioural
  fields only; report labels are excluded);
* the functional-simulation instruction budget and whether per-instruction
  timing records were collected;
* a cache format version (bumped whenever the stored payload shape changes).

Storage itself lives in :mod:`repro.store`: this module computes the keys
(:func:`program_digest`, :func:`outcome_key`) and resolves the engine's
``cache=`` argument onto a store tier.  :class:`SimulationCache` — the
historical name every harness caller uses — *is* the local-disk tier
(:class:`repro.store.disk.DiskStore`); the sqlite and HTTP tiers speak
the same protocol and are selected by locator (``sqlite://<path>``,
``http://host:port``) or by the ``$REPRO_STORE`` environment variable.

The disk tier defaults to ``~/.cache/repro-reno`` and is overridden by
the ``REPRO_CACHE_DIR`` environment variable.  ``python -m
repro.harness.cache`` prints the location and entry count; ``--clear``
wipes it.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from repro.core.config import RenoConfig
from repro.isa.program import Program
from repro.store.base import (
    CACHE_FORMAT_VERSION,
    STORE_ENV,
    StoreStats,
    open_store,
)
from repro.store.disk import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    DiskStore,
    default_cache_root,
    file_lock,
)
from repro.uarch.config import MachineConfig

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "STORE_ENV",
    "SimulationCache",
    "default_cache_root",
    "file_lock",
    "main",
    "outcome_key",
    "program_digest",
    "resolve_cache",
]

#: Historical names: the disk tier and its counters, re-exported so every
#: pre-store import site (tests, harness internals) keeps working.
SimulationCache = DiskStore
CacheStats = StoreStats


def program_digest(program: Program) -> str:
    """Content hash of an assembled program.

    Covers everything that influences simulation: the instruction stream
    (with resolved targets), the entry point and the initial memory image.
    The program *name* is a report label and is excluded.
    """
    hasher = hashlib.sha256()
    hasher.update(str(program.entry).encode())
    for instruction in program.instructions:
        hasher.update(
            f"{instruction.opcode.value}|{instruction.rd}|{instruction.rs1}|"
            f"{instruction.rs2}|{instruction.imm}|{instruction.target}\n".encode()
        )
    for address in sorted(program.initial_memory):
        hasher.update(f"@{address}={program.initial_memory[address]}".encode())
    return hasher.hexdigest()


def outcome_key(
    prog_digest: str,
    machine: MachineConfig,
    reno: RenoConfig | None,
    max_instructions: int,
    collect_timing: bool,
    record_stats: bool = False,
) -> str:
    """The cache key for one grid point."""
    reno_digest = reno.digest() if reno is not None else "baseline"
    material = "|".join([
        f"v{CACHE_FORMAT_VERSION}",
        prog_digest,
        machine.digest(),
        reno_digest,
        str(max_instructions),
        "timing" if collect_timing else "notiming",
        "stats" if record_stats else "nostats",
    ])
    return hashlib.sha256(material.encode()).hexdigest()


def resolve_cache(cache):
    """Normalise the ``cache=`` argument accepted by the experiment engine.

    * ``None`` (the default): a store is active only when ``$REPRO_STORE``
      names one (any locator) or ``$REPRO_CACHE_DIR`` is set (the disk
      tier there), so casual runs and the existing test suite touch no
      global state.
    * ``True`` / ``False``: force the default-location disk cache on or off.
    * a locator (``str`` / ``Path``): a path opens the disk tier there;
      ``sqlite://<path>`` and ``http(s)://host:port`` open the shared
      tiers (see :func:`repro.store.base.open_store`).
    * a store instance (:class:`SimulationCache` or any
      :class:`repro.store.base.ResultStore`): used as-is.
    """
    if cache is None:
        locator = os.environ.get(STORE_ENV)
        if locator:
            return open_store(locator)
        return SimulationCache() if os.environ.get(CACHE_DIR_ENV) else None
    if cache is False:
        return None
    if cache is True:
        return SimulationCache()
    if isinstance(cache, (str, Path)):
        return open_store(cache)
    if hasattr(cache, "get") and hasattr(cache, "put"):
        return cache
    raise TypeError(f"cache must be None, bool, a locator or a result store, "
                    f"got {cache!r}")


def main(argv: list[str] | None = None) -> int:
    """Tiny CLI: report the cache location/size, optionally clear it."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clear", action="store_true", help="delete every cache entry")
    args = parser.parse_args(argv)

    cache = SimulationCache()
    count = len(cache)
    print(f"cache root:  {cache.root}")
    print(f"entries:     {count}")
    print(f"total bytes: {cache.size_bytes()}")
    if args.clear:
        print(f"removed:     {cache.clear()}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
