"""Content-addressed on-disk cache for simulation outcomes.

Every grid point of an experiment — one (workload program, machine
configuration, RENO configuration, instruction budget) combination — is
deterministic, so its :class:`~repro.core.simulator.SimulationOutcome` can be
computed once and reused across figure experiments and repeated benchmark
runs.  The cache key is a SHA-256 over

* a digest of the assembled program (instructions, entry point, initial
  memory) — the workload name is deliberately *not* part of the key, so two
  workloads assembling the identical program share an entry;
* :meth:`MachineConfig.digest` and :meth:`RenoConfig.digest` (behavioural
  fields only; report labels are excluded);
* the functional-simulation instruction budget and whether per-instruction
  timing records were collected;
* a cache format version (bumped whenever the stored payload shape changes).

Stored payloads are *slim*: the timing result (statistics, final registers,
optional timing records) plus a functional summary.  The program and the full
dynamic trace are not stored — they are cheap to rebuild relative to the
cycle-level simulation and would dominate the cache size.  A cache-loaded
outcome therefore has ``outcome.program is None`` and
``outcome.functional is None``; everything the experiment reports read
(``stats``, ``cycles``, ``timing.timing_records``) is preserved byte-for-byte.

The cache location defaults to ``~/.cache/repro-reno`` and is overridden by
the ``REPRO_CACHE_DIR`` environment variable.  ``python -m
repro.harness.cache`` prints the location and entry count; ``--clear`` wipes
it.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
import time
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import RenoConfig
from repro.core.simulator import SimulationOutcome
from repro.isa.program import Program
from repro.uarch.config import MachineConfig

#: Bump whenever the pickled payload layout or the key material changes.
#: v2: ``SimResult`` gained the ``finished`` field (incremental runs).
#: v3: ``SimStats`` gained ``occupancy`` and ``SimResult`` gained
#:     ``timeline`` (observability); the key material gained the
#:     ``record_stats`` mode.
CACHE_FORMAT_VERSION = 3

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache root when the environment variable is unset.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro-reno"


def default_cache_root() -> Path:
    """The active cache root: ``$REPRO_CACHE_DIR`` or the home-dir default."""
    override = os.environ.get(CACHE_DIR_ENV)
    return Path(override) if override else DEFAULT_CACHE_DIR


try:
    import fcntl as _fcntl
except ImportError:                   # pragma: no cover - non-POSIX platform
    _fcntl = None


@contextlib.contextmanager
def file_lock(path: str | Path, timeout: float = 10.0):
    """Cross-process mutual exclusion for updates of ``path``.

    Guards read-modify-write updates of shared files (the cost model's
    ``costs.json``) against concurrent Sessions sharing one
    ``$REPRO_CACHE_DIR``.  The lock is an ``fcntl.flock`` on a sibling
    ``<path>.lock`` file: kernel advisory locks are released automatically
    when the holder exits (cleanly or not), so there is no stale-lock state
    to detect or break — the classic ``O_EXCL``-file failure mode (two
    waiters racing to break a dead holder's file and both "acquiring") is
    structurally impossible.  The empty ``.lock`` file itself is left in
    place; it carries no state.

    If the lock cannot be acquired within ``timeout`` seconds — or the
    platform has no ``fcntl`` — the caller proceeds *unlocked*, consistent
    with the cache's best-effort degradation: a lost cost entry can cost
    wall-clock time, never correctness.

    Yields True when the lock was actually held, False on the degraded
    path.
    """
    lock_path = Path(str(path) + ".lock")
    if _fcntl is None:                # pragma: no cover - non-POSIX platform
        yield False
        return
    try:
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(str(lock_path), os.O_CREAT | os.O_WRONLY)
    except OSError:
        # Unwritable directory: same degradation as a store failure.
        yield False
        return
    deadline = time.monotonic() + timeout
    locked = False
    try:
        while True:
            try:
                _fcntl.flock(descriptor, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
                locked = True
                break
            except OSError:
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.01)
        yield locked
    finally:
        if locked:
            try:
                _fcntl.flock(descriptor, _fcntl.LOCK_UN)
            except OSError:
                pass
        os.close(descriptor)


def program_digest(program: Program) -> str:
    """Content hash of an assembled program.

    Covers everything that influences simulation: the instruction stream
    (with resolved targets), the entry point and the initial memory image.
    The program *name* is a report label and is excluded.
    """
    hasher = hashlib.sha256()
    hasher.update(str(program.entry).encode())
    for instruction in program.instructions:
        hasher.update(
            f"{instruction.opcode.value}|{instruction.rd}|{instruction.rs1}|"
            f"{instruction.rs2}|{instruction.imm}|{instruction.target}\n".encode()
        )
    for address in sorted(program.initial_memory):
        hasher.update(f"@{address}={program.initial_memory[address]}".encode())
    return hasher.hexdigest()


def outcome_key(
    prog_digest: str,
    machine: MachineConfig,
    reno: RenoConfig | None,
    max_instructions: int,
    collect_timing: bool,
    record_stats: bool = False,
) -> str:
    """The cache key for one grid point."""
    reno_digest = reno.digest() if reno is not None else "baseline"
    material = "|".join([
        f"v{CACHE_FORMAT_VERSION}",
        prog_digest,
        machine.digest(),
        reno_digest,
        str(max_instructions),
        "timing" if collect_timing else "notiming",
        "stats" if record_stats else "nostats",
    ])
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`SimulationCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class SimulationCache:
    """A directory of pickled slim simulation outcomes, addressed by key."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()
        self._store_failure_warned = False

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out, like git)."""
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------

    def get(self, key: str) -> SimulationOutcome | None:
        """Load a cached outcome, or None on a miss (or an unreadable entry).

        Any failure to read, unpickle or interpret an entry counts as a miss:
        entries written by other versions of the codebase can fail in ways
        well beyond ``UnpicklingError`` (e.g. ``ModuleNotFoundError`` for a
        renamed class), and a corrupt cache must cost a recomputation, never
        an experiment.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
            if payload.get("version") != CACHE_FORMAT_VERSION:
                raise ValueError("cache format version mismatch")
            outcome = SimulationOutcome(
                program=None,
                functional=None,
                timing=payload["timing"],
                reno_config=payload["reno_config"],
                cached=True,
            )
        except Exception:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return outcome

    def put(self, key: str, outcome: SimulationOutcome) -> None:
        """Store a slim copy of ``outcome`` under ``key`` (atomic write).

        Store failures (unwritable or uncreatable cache directory) degrade
        to a one-time warning rather than an exception: the outcome was
        already computed, and losing cache persistence must not lose the
        experiment.
        """
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "timing": outcome.timing,
            "reno_config": outcome.reno_config,
        }
        path = self.path_for(key)
        temp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write to a unique temporary file and rename it into place so
            # concurrent workers computing the same point never see a torn
            # entry.
            descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except OSError as error:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            if not self._store_failure_warned:
                self._store_failure_warned = True
                warnings.warn(
                    f"simulation cache at {self.root} is not writable "
                    f"({error}); results will not be cached",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        self.stats.stores += 1

    # ------------------------------------------------------------------

    def entries(self) -> list[Path]:
        """All entry files currently in the cache."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.pkl"))

    def __len__(self) -> int:
        return len(self.entries())

    def size_bytes(self) -> int:
        """Total on-disk size of all cache entries."""
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def resolve_cache(cache) -> SimulationCache | None:
    """Normalise the ``cache=`` argument accepted by the experiment engine.

    * ``None`` (the default): caching is enabled only when ``REPRO_CACHE_DIR``
      is set, so casual runs and the existing test suite touch no global
      state.
    * ``True`` / ``False``: force the default-location cache on or off.
    * a path (``str`` / ``Path``): a cache rooted there.
    * a :class:`SimulationCache`: used as-is.
    """
    if cache is None:
        return SimulationCache() if os.environ.get(CACHE_DIR_ENV) else None
    if cache is False:
        return None
    if cache is True:
        return SimulationCache()
    if isinstance(cache, (str, Path)):
        return SimulationCache(cache)
    if isinstance(cache, SimulationCache):
        return cache
    raise TypeError(f"cache must be None, bool, path or SimulationCache, got {cache!r}")


def main(argv: list[str] | None = None) -> int:
    """Tiny CLI: report the cache location/size, optionally clear it."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clear", action="store_true", help="delete every cache entry")
    args = parser.parse_args(argv)

    cache = SimulationCache()
    count = len(cache)
    print(f"cache root:  {cache.root}")
    print(f"entries:     {count}")
    print(f"total bytes: {cache.size_bytes()}")
    if args.clear:
        print(f"removed:     {cache.clear()}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
