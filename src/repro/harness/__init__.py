"""Experiment harness: regenerates every figure of the paper's evaluation.

Each ``figure*`` function in :mod:`repro.harness.experiments` corresponds to
one figure (or in-text result) of the paper and returns an
:class:`~repro.harness.experiments.ExperimentReport` whose rows mirror the
series the paper plots.  The benchmarks in ``benchmarks/`` and the examples in
``examples/`` are thin wrappers around these functions.
"""

from repro.harness.cache import SimulationCache, outcome_key, program_digest
from repro.harness.parallel import execute_grid
from repro.harness.runner import MatrixLookupError, run_matrix, SPEEDUP_BASELINE
from repro.harness.experiments import (
    ExperimentReport,
    figure8_elimination_and_speedup,
    figure9_critical_path,
    figure10_division_of_labor,
    figure11_register_file,
    figure11_issue_width,
    figure12_scheduler,
    instruction_mix,
    fusion_sensitivity,
    integration_table_cost,
    run_scale_sweep,
)

__all__ = [
    "run_matrix",
    "SPEEDUP_BASELINE",
    "MatrixLookupError",
    "SimulationCache",
    "execute_grid",
    "outcome_key",
    "program_digest",
    "ExperimentReport",
    "figure8_elimination_and_speedup",
    "figure9_critical_path",
    "figure10_division_of_labor",
    "figure11_register_file",
    "figure11_issue_width",
    "figure12_scheduler",
    "instruction_mix",
    "fusion_sensitivity",
    "integration_table_cost",
    "run_scale_sweep",
]
