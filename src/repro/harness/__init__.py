"""Experiment harness: regenerates every figure of the paper's evaluation.

The harness is organised around three layers:

* **Specs and the registry** (:mod:`repro.harness.spec`): every figure is a
  declarative :class:`SweepSpec` grid plus a pure reducer, registered under
  a short name (``fig8`` ... ``fig12``, ``mix``, ``fusion``, ``it_cost``,
  ``scale_sweep``) and runnable via :func:`run_experiment` or the
  ``python -m repro`` CLI.
* **The engine** (:mod:`repro.harness.executors`,
  :mod:`repro.harness.cache`): pluggable execution backends (serial /
  process pool / adaptive ``"auto"``) over a content-addressed on-disk
  outcome cache.
* **Compat wrappers** (:mod:`repro.harness.experiments`): the original
  ``figure*`` functions, now thin shims over the registry, still returning
  :class:`~repro.harness.experiments.ExperimentReport` objects whose rows
  mirror the paper's figures.  The benchmarks in ``benchmarks/`` and the
  examples in ``examples/`` build on these layers.
"""

from repro.harness.cache import SimulationCache, file_lock, outcome_key, program_digest
from repro.harness.executors import (
    AutoExecutor,
    CancelFn,
    ExecutionCancelled,
    Executor,
    ProcessExecutor,
    ProgressFn,
    SerialExecutor,
    execute_grid,
    resolve_executor,
)
from repro.harness.runner import (
    MatrixLookupError,
    MatrixResult,
    SPEEDUP_BASELINE,
    ZeroCycleError,
    run_matrix,
)
from repro.harness.spec import (
    Experiment,
    SweepSpec,
    experiment,
    get_experiment,
    list_experiments,
    register_experiment,
    run_experiment,
)
from repro.harness.experiments import (
    ExperimentReport,
    figure8_elimination_and_speedup,
    figure9_critical_path,
    figure10_division_of_labor,
    figure11_register_file,
    figure11_issue_width,
    figure12_scheduler,
    instruction_mix,
    fusion_sensitivity,
    integration_table_cost,
    run_scale_sweep,
)

__all__ = [
    "run_matrix",
    "MatrixResult",
    "SPEEDUP_BASELINE",
    "MatrixLookupError",
    "ZeroCycleError",
    "SimulationCache",
    "execute_grid",
    "file_lock",
    "outcome_key",
    "program_digest",
    "Executor",
    "ExecutionCancelled",
    "ProgressFn",
    "CancelFn",
    "SerialExecutor",
    "ProcessExecutor",
    "AutoExecutor",
    "resolve_executor",
    "SweepSpec",
    "Experiment",
    "experiment",
    "register_experiment",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "ExperimentReport",
    "figure8_elimination_and_speedup",
    "figure9_critical_path",
    "figure10_division_of_labor",
    "figure11_register_file",
    "figure11_issue_width",
    "figure12_scheduler",
    "instruction_mix",
    "fusion_sensitivity",
    "integration_table_cost",
    "run_scale_sweep",
]
