"""Declarative experiment specifications and the experiment registry.

A :class:`SweepSpec` captures one full experiment grid — (workloads ×
machines × RENO configs × scale) plus the simulation budget — as a plain,
hashable, JSON-round-trippable value.  Where the ``figure*`` functions used
to hand-roll ``run_matrix`` plumbing, each figure is now registered as an
:class:`Experiment`: a *spec builder* (parameters → :class:`SweepSpec`) plus
a *pure reducer* (:class:`~repro.harness.runner.MatrixResult` →
:class:`~repro.harness.experiments.ExperimentReport`).  That split is what
makes experiments scriptable:

* the spec is data — it can be printed, diffed, digested, serialised into a
  report artifact, and re-run bit-identically;
* the registry drives the ``python -m repro`` CLI (``list`` / ``run``), so
  every figure of the paper is runnable without writing Python;
* reducers never touch the engine, so parallelism/caching/executor choice
  cannot change report contents.

Example::

    from repro.harness import get_experiment, run_experiment

    spec = get_experiment("fig8").build_spec("specint", ["gzip_like"], 1)
    spec.digest()                # stable content hash of the whole grid
    report = run_experiment("fig8", workloads=["gzip_like"], jobs="auto")

Experiments whose shape is not one grid (the functional-only instruction
mix, the multi-scale sweep) register a custom ``run_fn`` instead of a
builder/reducer pair; the CLI treats both kinds identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.config import RenoConfig
from repro.harness.cache import SimulationCache
from repro.harness.executors import CancelFn, Executor, ProgressFn
from repro.harness.runner import MatrixResult, _require_unique, run_matrix
from repro.uarch.config import MachineConfig
from repro.workloads.base import Workload
from repro.workloads.suites import suite_by_name


@dataclass(frozen=True)
class SweepSpec:
    """One experiment grid as a declarative, hashable value.

    Attributes:
        suite: Suite name the workloads came from (report labelling).
        workloads: Workload names, in report row order.
        machines: (label, machine config) pairs, in report column order.
        renos: (label, RENO config or None) pairs, in series order.
        scale: Workload scale factor (≥ 1).
        collect_timing: Keep per-instruction timing records.
        record_stats: Record occupancy/utilization histograms per cell.
        max_instructions: Functional-simulation budget per workload.
    """

    suite: str
    workloads: tuple[str, ...]
    machines: tuple[tuple[str, MachineConfig], ...]
    renos: tuple[tuple[str, RenoConfig | None], ...]
    scale: int = 1
    collect_timing: bool = False
    record_stats: bool = False
    max_instructions: int = 2_000_000

    def __post_init__(self):
        """Validate the grid: non-empty axes, unique labels, sane scale."""
        if not self.workloads:
            raise ValueError("spec needs at least one workload")
        if not self.machines or not self.renos:
            raise ValueError("spec needs at least one machine and one RENO config")
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.max_instructions < 1:
            raise ValueError("max_instructions must be positive")
        _require_unique(list(self.workloads), "workload")
        _require_unique([label for label, _ in self.machines], "machine")
        _require_unique([label for label, _ in self.renos], "RENO")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_grid(
        cls,
        suite: str,
        workloads: list[str | Workload] | None,
        machines: dict[str, MachineConfig],
        renos: dict[str, RenoConfig | None],
        *,
        scale: int = 1,
        collect_timing: bool = False,
        record_stats: bool = False,
        max_instructions: int = 2_000_000,
    ) -> "SweepSpec":
        """Build a spec from the arguments the ``figure*`` functions take.

        ``workloads=None`` resolves to the full named suite; explicit
        entries may be names or :class:`~repro.workloads.base.Workload`
        objects (stored by name — a spec is pure data, so re-running one
        built from *unregistered* ad-hoc objects requires the objects
        again; :meth:`Experiment.run` handles that case by running the
        grid with the original objects).
        """
        if workloads is None:
            names = tuple(workload.name for workload in suite_by_name(suite))
        else:
            names = tuple(
                entry.name if isinstance(entry, Workload) else entry
                for entry in workloads
            )
        return cls(
            suite=suite,
            workloads=names,
            machines=tuple(machines.items()),
            renos=tuple(renos.items()),
            scale=scale,
            collect_timing=collect_timing,
            record_stats=record_stats,
            max_instructions=max_instructions,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def machine_labels(self) -> list[str]:
        """Machine labels in grid order."""
        return [label for label, _ in self.machines]

    @property
    def reno_labels(self) -> list[str]:
        """RENO labels in grid order."""
        return [label for label, _ in self.renos]

    @property
    def grid_size(self) -> int:
        """Total number of (workload, machine, RENO) cells."""
        return len(self.workloads) * len(self.machines) * len(self.renos)

    # ------------------------------------------------------------------
    # Serialization / hashing
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The whole grid as a plain JSON-serialisable dictionary."""
        return {
            "suite": self.suite,
            "workloads": list(self.workloads),
            "machines": {label: machine.to_dict() for label, machine in self.machines},
            "renos": {
                label: (reno.to_dict() if reno is not None else None)
                for label, reno in self.renos
            },
            "scale": self.scale,
            "collect_timing": self.collect_timing,
            "record_stats": self.record_stats,
            "max_instructions": self.max_instructions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            suite=data["suite"],
            workloads=tuple(data["workloads"]),
            machines=tuple(
                (label, MachineConfig.from_dict(machine))
                for label, machine in data["machines"].items()
            ),
            renos=tuple(
                (label, RenoConfig.from_dict(reno) if reno is not None else None)
                for label, reno in data["renos"].items()
            ),
            scale=data["scale"],
            collect_timing=data["collect_timing"],
            # Absent in spec dicts serialised before observability existed.
            record_stats=data.get("record_stats", False),
            max_instructions=data["max_instructions"],
        )

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Stable content hash of the full grid (labels included)."""
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        jobs: int | str | None = None,
        cache: SimulationCache | bool | str | None = None,
        executor: Executor | None = None,
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
        backend: str | None = None,
    ) -> MatrixResult:
        """Run the grid through the experiment engine.

        ``jobs``/``cache``/``executor``/``progress``/``cancel``/``backend``
        take the same forms as :func:`~repro.harness.runner.run_matrix`; the
        spec contributes everything else.  ``backend`` is deliberately a
        run-time argument and **not** a spec field: results are
        backend-independent, so it must never perturb :meth:`to_dict` or
        :meth:`digest` (and with them the outcome-cache identity of a grid).
        """
        return run_matrix(
            list(self.workloads),
            self.machines,
            self.renos,
            scale=self.scale,
            collect_timing=self.collect_timing,
            record_stats=self.record_stats,
            max_instructions=self.max_instructions,
            jobs=jobs,
            cache=cache,
            executor=executor,
            progress=progress,
            cancel=cancel,
            backend=backend,
        )


# ---------------------------------------------------------------------------
# The experiment registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """A registered, named experiment: spec builder + pure reducer.

    Attributes:
        name: Registry key (``"fig8"``, ``"fig11_regs"``, ...).
        title: Human-readable title (``"Figure 8"``).
        description: One-line summary shown by ``python -m repro list``.
        default_suite: Suite used when the caller passes none.
        build_spec: ``(suite, workloads, scale, **params) -> SweepSpec``.
        reduce: ``(matrix, spec) -> ExperimentReport``; must be pure — it
            may only read the matrix and spec, never re-run simulations.
        run_fn: Custom runner for experiments that are not a single grid
            (signature ``(suite, workloads=, scale=, jobs=, cache=,
            executor=, **params) -> ExperimentReport``); when set,
            ``build_spec``/``reduce`` are unused.
    """

    name: str
    title: str
    description: str
    default_suite: str = "specint"
    build_spec: Callable[..., SweepSpec] | None = None
    reduce: Callable[[MatrixResult, SweepSpec], Any] | None = None
    run_fn: Callable[..., Any] | None = None

    def run(
        self,
        suite: str | None = None,
        workloads: list[str] | None = None,
        scale: int = 1,
        jobs: int | str | None = None,
        cache: SimulationCache | bool | str | None = None,
        executor: Executor | None = None,
        progress: ProgressFn | None = None,
        cancel: CancelFn | None = None,
        backend: str | None = None,
        **params,
    ):
        """Build the spec, run the grid, reduce to an ``ExperimentReport``.

        The returned report carries provenance: ``report.experiment`` is the
        registry name and ``report.spec`` the spec's :meth:`SweepSpec.to_dict`
        form (None for custom-runner experiments).  ``progress``/``cancel``
        stream per-cell completion out of (and cooperative cancellation
        into) the engine — this is the hook
        :class:`repro.api.session.Session` jobs are built on.
        """
        suite = suite or self.default_suite
        if self.run_fn is not None:
            # Pass the hooks only when set, so externally registered run_fn
            # callables with the pre-hook signature keep working for plain
            # runs (mirrors the executors' two-argument compat shape).
            hooks = {}
            if progress is not None:
                hooks["progress"] = progress
            if cancel is not None:
                hooks["cancel"] = cancel
            if backend is not None:
                hooks["backend"] = backend
            report = self.run_fn(
                suite, workloads=workloads, scale=scale, jobs=jobs,
                cache=cache, executor=executor, **hooks, **params,
            )
            spec_dict = None
        else:
            spec = self.build_spec(suite, workloads, scale, **params)
            if workloads is not None and any(
                    isinstance(entry, Workload) for entry in workloads):
                # Ad-hoc Workload objects may not be in the registry, so the
                # grid runs with the objects themselves; the spec still
                # records their names for provenance.
                matrix = run_matrix(
                    list(workloads), spec.machines, spec.renos,
                    scale=spec.scale, collect_timing=spec.collect_timing,
                    record_stats=spec.record_stats,
                    max_instructions=spec.max_instructions,
                    jobs=jobs, cache=cache, executor=executor,
                    progress=progress, cancel=cancel, backend=backend,
                )
            else:
                matrix = spec.run(jobs=jobs, cache=cache, executor=executor,
                                  progress=progress, cancel=cancel,
                                  backend=backend)
            report = self.reduce(matrix, spec)
            spec_dict = spec.to_dict()
        report.experiment = self.name
        report.spec = spec_dict
        return report


#: Registry name → :class:`Experiment`, in registration (paper) order.
EXPERIMENTS: dict[str, Experiment] = {}


def register_experiment(entry: Experiment) -> Experiment:
    """Add an experiment to the registry (duplicate names are an error)."""
    if entry.name in EXPERIMENTS:
        raise ValueError(f"experiment {entry.name!r} registered twice")
    EXPERIMENTS[entry.name] = entry
    return entry


def experiment(
    name: str,
    *,
    title: str,
    description: str = "",
    suite: str = "specint",
    reducer: Callable[[MatrixResult, SweepSpec], Any],
) -> Callable[[Callable[..., SweepSpec]], Callable[..., SweepSpec]]:
    """Decorator registering a spec builder (with its reducer) by name.

    Usage::

        @experiment("fig8", title="Figure 8",
                    description="...", reducer=_reduce_fig8)
        def _fig8_spec(suite, workloads, scale):
            return SweepSpec.from_grid(...)
    """

    def decorator(builder: Callable[..., SweepSpec]) -> Callable[..., SweepSpec]:
        register_experiment(Experiment(
            name=name,
            title=title,
            description=description,
            default_suite=suite,
            build_spec=builder,
            reduce=reducer,
        ))
        return builder

    return decorator


def _ensure_registered() -> None:
    # The experiment definitions live in repro.harness.experiments, which
    # imports this module for the decorator; import it lazily so the registry
    # fills itself on first use without a circular import.
    from repro.harness import experiments  # noqa: F401


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment by name."""
    _ensure_registered()
    try:
        return EXPERIMENTS[name]
    except KeyError as exc:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from exc


def list_experiments() -> list[Experiment]:
    """All registered experiments, in registration (paper) order."""
    _ensure_registered()
    return list(EXPERIMENTS.values())


def run_experiment(name: str, **kwargs):
    """Run a registered experiment end to end (see :meth:`Experiment.run`).

    Since the API redesign this is a thin client of the process-default
    :class:`repro.api.session.Session` — same arguments, same deterministic
    results, but every run flows through the one facade the service and the
    CLI also use (session defaults for ``jobs``/``cache``/``executor``
    apply only where the caller left them unset).
    """
    from repro.api.session import default_session

    return default_session().run_experiment(name, **kwargs)
