"""Backwards-compatible aliases for the experiment execution engine.

The engine moved to :mod:`repro.harness.executors` when execution backends
became pluggable (``SerialExecutor`` / ``ProcessExecutor`` / ``AutoExecutor``
behind the ``Executor`` protocol).  This module re-exports the original names
so pre-executor imports keep working unchanged.
"""

from repro.harness.executors import (  # noqa: F401
    GridKey,
    JOBS_ENV,
    WorkloadTask,
    execute_grid,
    resolve_jobs,
    run_workload_block,
)

__all__ = [
    "GridKey",
    "JOBS_ENV",
    "WorkloadTask",
    "execute_grid",
    "resolve_jobs",
    "run_workload_block",
]
