"""Deprecated aliases for the experiment execution engine.

The engine moved to :mod:`repro.harness.executors` when execution backends
became pluggable (``SerialExecutor`` / ``ProcessExecutor`` / ``AutoExecutor``
behind the ``Executor`` protocol).  This module re-exports the original names
so pre-executor imports keep working, but importing it now raises a
:class:`DeprecationWarning` — update imports to
``repro.harness.executors`` (or the ``repro.harness`` package namespace,
which re-exports everything public).
"""

import warnings

warnings.warn(
    "repro.harness.parallel is deprecated; import from "
    "repro.harness.executors instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.harness.executors import (  # noqa: F401,E402
    GridKey,
    JOBS_ENV,
    WorkloadTask,
    execute_grid,
    resolve_jobs,
    run_workload_block,
)

__all__ = [
    "GridKey",
    "JOBS_ENV",
    "WorkloadTask",
    "execute_grid",
    "resolve_jobs",
    "run_workload_block",
]
