"""Parallel, cached execution engine for experiment grids.

:func:`execute_grid` is the machinery behind
:func:`repro.harness.runner.run_matrix`: it takes the (workload × machine ×
RENO config) grid, consults the on-disk outcome cache, and fans the remaining
work out over ``multiprocessing`` workers.

Design points:

* **Task granularity is one workload.**  All (machine, RENO) points of a
  workload share one functional trace — exactly the paper's methodology and
  the serial runner's behaviour — so splitting finer would recompute traces.
  Parallelism across workloads is where the wall-clock time is.
* **Deterministic ordering.**  Results are assembled in grid order (workload,
  then machine, then RENO label) regardless of worker completion order, so
  ``MatrixResult`` iteration order is identical to the serial runner's.
* **Graceful fallback.**  ``jobs=1``, a platform without ``fork``, or a task
  that cannot be pickled all fall back to in-process execution with the same
  results.
* **Cache-aware workers.**  Each worker checks the cache per grid point and
  only computes (and stores) the misses; the functional trace is built only
  if at least one point of the workload misses.

Workers return *slim* outcomes (no program / functional trace) to keep
inter-process traffic proportional to the statistics, not the trace length.
The in-process path keeps full outcomes for cache misses, preserving the
original ``run_matrix`` behaviour for callers that inspect
``outcome.functional``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass, replace

from repro.core.config import RenoConfig
from repro.core.simulator import SimulationOutcome, simulate
from repro.functional.simulator import FunctionalSimulator
from repro.harness.cache import SimulationCache, outcome_key, program_digest, resolve_cache
from repro.uarch.config import MachineConfig
from repro.workloads.base import Workload

#: Environment variable supplying the default worker count for ``jobs=None``.
JOBS_ENV = "REPRO_JOBS"

#: Grid-point key: (workload name, machine label, RENO label).
GridKey = tuple[str, str, str]


@dataclass(frozen=True)
class WorkloadTask:
    """Everything a worker needs to run one workload's (machine × RENO) block."""

    workload: Workload
    scale: int
    machines: tuple[tuple[str, MachineConfig], ...]
    renos: tuple[tuple[str, RenoConfig | None], ...]
    collect_timing: bool
    max_instructions: int
    cache_root: str | None


def resolve_jobs(jobs: int | None) -> int:
    """Normalise the ``jobs=`` argument (None → ``$REPRO_JOBS`` or 1)."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    return max(1, jobs)


def _slim(outcome: SimulationOutcome) -> SimulationOutcome:
    """Drop the program and functional trace before crossing a process pipe."""
    return replace(outcome, program=None, functional=None)


def run_workload_block(
    task: WorkloadTask, *, slim: bool, cache: SimulationCache | None = None
) -> list[tuple[GridKey, SimulationOutcome]]:
    """Run (or load from cache) every grid point of one workload.

    Args:
        task: The workload block description.
        slim: Strip programs/traces from computed outcomes (used by worker
            processes; the in-process path keeps them).
        cache: Cache instance to use; defaults to one rooted at
            ``task.cache_root`` (worker processes build their own so the
            task stays cheap to pickle).

    Returns:
        ``[(grid_key, outcome), ...]`` in (machine, RENO) grid order.
    """
    workload = task.workload
    if cache is None and task.cache_root is not None:
        cache = SimulationCache(task.cache_root)
    program = workload.build(task.scale)
    digest = program_digest(program) if cache is not None else ""

    points: list[tuple[GridKey, str | None, SimulationOutcome | None]] = []
    misses = 0
    for machine_label, machine in task.machines:
        for reno_label, reno in task.renos:
            grid_key = (workload.name, machine_label, reno_label)
            key = None
            outcome = None
            if cache is not None:
                key = outcome_key(digest, machine, reno,
                                  task.max_instructions, task.collect_timing)
                outcome = cache.get(key)
            if outcome is None:
                misses += 1
            points.append((grid_key, key, outcome))

    functional = None
    if misses:
        functional = FunctionalSimulator(program, task.max_instructions).run()

    machines = dict(task.machines)
    renos = dict(task.renos)
    results: list[tuple[GridKey, SimulationOutcome]] = []
    for grid_key, key, outcome in points:
        if outcome is None:
            _, machine_label, reno_label = grid_key
            outcome = simulate(
                program,
                machines[machine_label],
                renos[reno_label],
                trace=functional,
                collect_timing=task.collect_timing,
                max_instructions=task.max_instructions,
            )
            if cache is not None:
                cache.put(key, outcome)
            if slim:
                outcome = _slim(outcome)
        results.append((grid_key, outcome))
    return results


def _worker(task: WorkloadTask):
    """Pool entry point: slim outcomes plus the worker-local cache stats,
    which the parent merges so ``cache.stats`` is meaningful for jobs>1."""
    cache = SimulationCache(task.cache_root) if task.cache_root is not None else None
    block = run_workload_block(task, slim=True, cache=cache)
    return block, (cache.stats if cache is not None else None)


def _fork_context():
    """The fork multiprocessing context, or None when the platform lacks it."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _tasks_picklable(tasks: list[WorkloadTask]) -> bool:
    """Whether every task can cross a process boundary (ad-hoc workloads with
    closure builders cannot; they silently run in-process instead)."""
    try:
        for task in tasks:
            pickle.dumps(task)
    except Exception:
        return False
    return True


def execute_grid(
    workloads: list[Workload],
    machines: dict[str, MachineConfig],
    renos: dict[str, RenoConfig | None],
    *,
    scale: int = 1,
    collect_timing: bool = False,
    max_instructions: int = 2_000_000,
    jobs: int | None = None,
    cache: SimulationCache | bool | str | None = None,
) -> dict[GridKey, SimulationOutcome]:
    """Run the full grid and return outcomes in deterministic grid order.

    Args:
        workloads: Resolved workload objects (one task each).
        machines: Machine-label → configuration.
        renos: RENO-label → configuration (None = baseline).
        scale: Workload scale factor.
        collect_timing: Keep per-instruction timing records.
        max_instructions: Functional-simulation budget.
        jobs: Worker processes; None reads ``$REPRO_JOBS`` (default 1);
            1 runs in-process.
        cache: Outcome cache; accepts every form
            :func:`repro.harness.cache.resolve_cache` understands
            (instance / bool / path / None).

    Returns:
        ``{(workload name, machine label, reno label): outcome}`` ordered
        exactly as the serial nested loops would produce it.  Outcomes
        computed by worker processes (``jobs>1``) or loaded from the cache
        are *slim*: ``program``/``functional`` are None, while all
        timing-side fields are byte-identical to an in-process run.
    """
    jobs = resolve_jobs(jobs)
    cache = resolve_cache(cache)
    cache_root = str(cache.root) if cache is not None else None
    tasks = [
        WorkloadTask(
            workload=workload,
            scale=scale,
            machines=tuple(machines.items()),
            renos=tuple(renos.items()),
            collect_timing=collect_timing,
            max_instructions=max_instructions,
            cache_root=cache_root,
        )
        for workload in workloads
    ]

    jobs = min(jobs, len(tasks)) if tasks else 1
    context = _fork_context()
    use_pool = jobs > 1 and context is not None and _tasks_picklable(tasks)

    if use_pool:
        with context.Pool(processes=jobs) as pool:
            results = pool.map(_worker, tasks)
        blocks = []
        for block, worker_stats in results:
            blocks.append(block)
            if cache is not None and worker_stats is not None:
                cache.stats.hits += worker_stats.hits
                cache.stats.misses += worker_stats.misses
                cache.stats.stores += worker_stats.stores
    else:
        blocks = [run_workload_block(task, slim=False, cache=cache) for task in tasks]

    outcomes: dict[GridKey, SimulationOutcome] = {}
    for block in blocks:
        for grid_key, outcome in block:
            outcomes[grid_key] = outcome
    return outcomes
