"""One experiment per figure / in-text result of the paper's evaluation.

Each figure is registered in the experiment registry
(:mod:`repro.harness.spec`) as a *spec builder* — parameters →
:class:`~repro.harness.spec.SweepSpec` — plus a *pure reducer* that turns the
resulting :class:`~repro.harness.runner.MatrixResult` into an
:class:`ExperimentReport`.  The registry is what drives the ``python -m
repro`` CLI; the original ``figure*`` functions remain as thin
backwards-compatible wrappers over :func:`~repro.harness.spec.run_experiment`.

Every experiment returns an :class:`ExperimentReport` whose rows mirror the
series of the corresponding figure.  ``workloads=None`` runs the full suite;
passing an explicit subset (as the benchmarks do) keeps runtimes bounded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.critpath import analyze_critical_path
from repro.analysis.report import (
    REPORT_SCHEMA_VERSION,
    check_schema_version,
    decode_data_key,
    encode_data_key,
    format_percent,
    format_table,
)
from repro.core.config import RenoConfig
from repro.functional.simulator import FunctionalSimulator
from repro.functional.trace import mix_statistics
from repro.harness.runner import SPEEDUP_BASELINE, MatrixResult, run_matrix
from repro.harness.spec import Experiment, SweepSpec, experiment, register_experiment, run_experiment
from repro.uarch.config import MachineConfig
from repro.workloads.base import Workload
from repro.workloads.suites import suite_by_name


@dataclass
class ExperimentReport:
    """A regenerated table/figure: labelled rows plus the raw data.

    ``experiment`` and ``spec`` are provenance filled in by the registry
    (the registry name and the generating spec's dict form); reports built
    by hand leave them empty.  The whole report — including tuple-keyed
    ``data`` entries — round-trips exactly through :meth:`to_json` /
    :meth:`from_json`, which is what the ``--json`` CLI artifacts, the
    ``repro serve`` wire payloads and the structured benchmark comparisons
    consume.  ``schema_version`` stamps the serialised layout
    (:data:`~repro.analysis.report.REPORT_SCHEMA_VERSION`); readers accept
    older artifacts and refuse newer ones.

    ``occupancy`` (schema version 2) is an optional per-grid-cell
    occupancy/utilization section — ``"workload/machine/reno"`` →
    :meth:`repro.uarch.observe.OccupancyStats.summary` — populated only
    when the generating spec set ``record_stats``; it is None otherwise
    and for artifacts written before the section existed.
    """

    name: str
    description: str
    headers: list[str]
    rows: list[list[str]]
    data: dict = field(default_factory=dict)
    experiment: str = ""
    spec: dict | None = None
    occupancy: dict | None = None
    schema_version: int = REPORT_SCHEMA_VERSION

    def __str__(self) -> str:
        return format_table(self.headers, self.rows, title=f"{self.name}: {self.description}")

    # ------------------------------------------------------------------
    # Serialization (CLI artifacts, structured benchmark comparisons)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dictionary form (tuple data keys are tagged)."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "description": self.description,
            "experiment": self.experiment,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "data": [[encode_data_key(key), value] for key, value in self.data.items()],
            "spec": self.spec,
            "occupancy": self.occupancy,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentReport":
        """Inverse of :meth:`to_dict`.

        Artifacts that predate schema versioning read as version 1; a
        payload stamped with a *newer* schema than this package supports
        raises ValueError instead of being silently misread.
        """
        version = check_schema_version(payload.get("schema_version", 1))
        return cls(
            name=payload["name"],
            description=payload["description"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            data={decode_data_key(key): value for key, value in payload["data"]},
            experiment=payload.get("experiment", ""),
            spec=payload.get("spec"),
            occupancy=payload.get("occupancy"),
            schema_version=version,
        )

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict` (the ``--json`` artifact format)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentReport":
        """Inverse of :meth:`to_json` (exact round-trip)."""
        return cls.from_dict(json.loads(text))


def _workload_list(suite: str, workloads: list[str] | None) -> list[str | Workload]:
    if workloads is not None:
        return list(workloads)
    return [workload.name for workload in suite_by_name(suite)]


def _label(name: str) -> str:
    from repro.workloads.base import get_workload

    return get_workload(name).label


_RENO_STACK = {
    SPEEDUP_BASELINE: None,
    "ME": RenoConfig.reno_me(),
    "CF+ME": RenoConfig.reno_cf_me(),
    "RENO": RenoConfig.reno_default(),
}


# ---------------------------------------------------------------------------
# Figure 8: elimination rates and speedups, 4- and 6-wide
# ---------------------------------------------------------------------------


def _reduce_fig8(matrix: MatrixResult, spec: SweepSpec) -> ExperimentReport:
    """Elimination/fold shares and 4/6-wide speedups per workload + amean."""
    headers = ["benchmark", "ME%", "CF%", "RA+CSE%", "total%",
               "speedup 4w", "speedup 6w"]
    rows = []
    data = {}
    sums = [0.0] * 6
    for name in matrix.workloads:
        stats4 = matrix.get(name, "4wide", "RENO").stats
        speedup4 = matrix.speedup(name, "4wide", "RENO") - 1
        speedup6 = matrix.speedup(name, "6wide", "RENO") - 1
        values = [stats4.move_elimination_rate, stats4.fold_rate, stats4.cse_ra_rate,
                  stats4.elimination_rate, speedup4, speedup6]
        data[name] = dict(zip(["me", "cf", "cse_ra", "total", "speedup4", "speedup6"], values))
        sums = [total + value for total, value in zip(sums, values)]
        rows.append([_label(name)] + [format_percent(v) for v in values[:4]]
                    + [format_percent(v, signed=True) for v in values[4:]])
    count = len(matrix.workloads) or 1
    averages = [total / count for total in sums]
    rows.append(["amean"] + [format_percent(v) for v in averages[:4]]
                + [format_percent(v, signed=True) for v in averages[4:]])
    data["amean"] = dict(zip(["me", "cf", "cse_ra", "total", "speedup4", "speedup6"], averages))
    return ExperimentReport(
        name=f"Figure 8 ({spec.suite})",
        description="instructions eliminated/folded and RENO speedups (4- and 6-wide)",
        headers=headers, rows=rows, data=data,
    )


@experiment("fig8", title="Figure 8",
            description="instructions eliminated/folded and RENO speedups (4- and 6-wide)",
            reducer=_reduce_fig8)
def _fig8_spec(suite: str, workloads: list[str] | None, scale: int) -> SweepSpec:
    """Grid: {4wide, 6wide} × {BASE, RENO} over the suite."""
    return SweepSpec.from_grid(
        suite, workloads,
        machines={"4wide": MachineConfig.default_4wide(),
                  "6wide": MachineConfig.default_6wide()},
        renos={SPEEDUP_BASELINE: None, "RENO": RenoConfig.reno_default()},
        scale=scale,
    )


def figure8_elimination_and_speedup(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | str | None = None,
    cache=None,
    executor=None,
) -> ExperimentReport:
    """Fraction of dynamic instructions eliminated (ME/CF/RA+CSE stack) and
    the speedup of full RENO over the baseline, on 4- and 6-wide machines.

    Compat wrapper over ``run_experiment("fig8", ...)``.
    """
    return run_experiment("fig8", suite=suite, workloads=workloads, scale=scale,
                          jobs=jobs, cache=cache, executor=executor)


# ---------------------------------------------------------------------------
# Bottleneck sweep: occupancy attribution across the Figure 8 grid
# ---------------------------------------------------------------------------


def collect_occupancy(matrix: MatrixResult) -> dict:
    """The per-cell occupancy section of a matrix, keyed ``"w/m/r"``.

    Only cells whose outcomes actually carry occupancy statistics (i.e. the
    grid ran with ``record_stats=True``) contribute; everything else is
    skipped rather than emitted as an empty entry.
    """
    section = {}
    for (workload, machine, reno), outcome in matrix.outcomes.items():
        occupancy = outcome.stats.occupancy
        if occupancy is not None:
            section[f"{workload}/{machine}/{reno}"] = occupancy.summary()
    return section


def _reduce_bottleneck(matrix: MatrixResult, spec: SweepSpec) -> ExperimentReport:
    """Utilization table per grid cell, plus the raw occupancy section."""
    headers = ["benchmark", "machine", "config", "ROB", "IQ", "PRF",
               "issue", "top stall"]
    rows = []
    data = {}
    for name in matrix.workloads:
        for machine_label in matrix.machine_labels:
            for reno_label in matrix.reno_labels:
                outcome = matrix.get(name, machine_label, reno_label)
                summary = outcome.stats.occupancy.summary()
                structures = summary["structures"]
                stalls = summary["fetch_stalls"]
                top_stall = (max(stalls, key=stalls.get)
                             if any(stalls.values()) else "-")
                data[(name, machine_label, reno_label)] = summary
                rows.append([
                    _label(name), machine_label, reno_label,
                    format_percent(structures["rob"]["utilization"]),
                    format_percent(structures["iq"]["utilization"]),
                    format_percent(structures["prf"]["utilization"]),
                    format_percent(summary["issue"]["utilization"]),
                    top_stall,
                ])
    return ExperimentReport(
        name=f"Bottleneck sweep ({spec.suite})",
        description="occupancy attribution: structure/issue utilization across the Figure 8 grid",
        headers=headers, rows=rows, data=data,
        occupancy=collect_occupancy(matrix),
    )


@experiment("bottleneck", title="Bottleneck sweep",
            description="occupancy attribution: structure/issue utilization across the Figure 8 grid",
            reducer=_reduce_bottleneck)
def _bottleneck_spec(suite: str, workloads: list[str] | None, scale: int) -> SweepSpec:
    """The Figure 8 grid with per-structure occupancy recording enabled."""
    return SweepSpec.from_grid(
        suite, workloads,
        machines={"4wide": MachineConfig.default_4wide(),
                  "6wide": MachineConfig.default_6wide()},
        renos={SPEEDUP_BASELINE: None, "RENO": RenoConfig.reno_default()},
        scale=scale,
        record_stats=True,
    )


# ---------------------------------------------------------------------------
# Figure 9: critical-path breakdown
# ---------------------------------------------------------------------------


def _reduce_fig9(matrix: MatrixResult, spec: SweepSpec) -> ExperimentReport:
    """Critical-path bucket shares per (workload, RENO config)."""
    headers = ["benchmark", "config", "fetch", "alu", "load", "mem", "commit"]
    rows = []
    data = {}
    for name in matrix.workloads:
        for reno_label in matrix.reno_labels:
            outcome = matrix.get(name, "4wide", reno_label)
            breakdown = analyze_critical_path(outcome.timing.timing_records or [])
            fractions = breakdown.fractions()
            data[(name, reno_label)] = fractions
            rows.append([
                _label(name), reno_label,
                format_percent(fractions["fetch"]),
                format_percent(fractions["alu_exec"]),
                format_percent(fractions["load_exec"]),
                format_percent(fractions["load_mem"]),
                format_percent(fractions["commit"]),
            ])
    return ExperimentReport(
        name=f"Figure 9 ({spec.suite})",
        description="critical-path breakdown: baseline vs CF+ME vs full RENO",
        headers=headers, rows=rows, data=data,
    )


@experiment("fig9", title="Figure 9",
            description="critical-path breakdown: baseline vs CF+ME vs full RENO",
            reducer=_reduce_fig9)
def _fig9_spec(suite: str, workloads: list[str] | None, scale: int) -> SweepSpec:
    """Grid: 4wide × {BASE, CF+ME, RENO}, with timing records collected."""
    return SweepSpec.from_grid(
        suite, workloads,
        machines={"4wide": MachineConfig.default_4wide()},
        renos={SPEEDUP_BASELINE: None, "CF+ME": RenoConfig.reno_cf_me(),
               "RENO": RenoConfig.reno_default()},
        scale=scale,
        collect_timing=True,
    )


def figure9_critical_path(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | str | None = None,
    cache=None,
    executor=None,
) -> ExperimentReport:
    """Critical-path bucket shares for baseline, CF+ME, and full RENO.

    Compat wrapper over ``run_experiment("fig9", ...)``.
    """
    return run_experiment("fig9", suite=suite, workloads=workloads, scale=scale,
                          jobs=jobs, cache=cache, executor=executor)


# ---------------------------------------------------------------------------
# Figure 10: division of labor between RENO_CF and RENO_CSE+RA
# ---------------------------------------------------------------------------


def _reduce_fig10(matrix: MatrixResult, spec: SweepSpec) -> ExperimentReport:
    """Per-config speedups over baseline plus the cross-workload average."""
    config_labels = [label for label in matrix.reno_labels if label != SPEEDUP_BASELINE]
    headers = ["benchmark"] + [f"{label} speedup" for label in config_labels]
    rows = []
    data = {}
    sums = {label: 0.0 for label in config_labels}
    for name in matrix.workloads:
        row = [_label(name)]
        for label in config_labels:
            speedup = matrix.speedup(name, "4wide", label) - 1
            sums[label] += speedup
            data[(name, label)] = speedup
            row.append(format_percent(speedup, signed=True))
        rows.append(row)
    count = len(matrix.workloads) or 1
    rows.append(["avg"] + [format_percent(sums[label] / count, signed=True)
                           for label in config_labels])
    for label in config_labels:
        data[("avg", label)] = sums[label] / count
    return ExperimentReport(
        name=f"Figure 10 ({spec.suite})",
        description="cooperation between RENO_CF and RENO_CSE+RA",
        headers=headers, rows=rows, data=data,
    )


@experiment("fig10", title="Figure 10",
            description="cooperation between RENO_CF and RENO_CSE+RA",
            reducer=_reduce_fig10)
def _fig10_spec(suite: str, workloads: list[str] | None, scale: int) -> SweepSpec:
    """Grid: 4wide × {BASE, RENO, RENO+FullInteg, FullInteg, LoadsInteg}."""
    return SweepSpec.from_grid(
        suite, workloads,
        machines={"4wide": MachineConfig.default_4wide()},
        renos={
            SPEEDUP_BASELINE: None,
            "RENO": RenoConfig.reno_default(),
            "RENO+FullInteg": RenoConfig.reno_full_integration(),
            "FullInteg": RenoConfig.integration_only_full(),
            "LoadsInteg": RenoConfig.integration_only_loads(),
        },
        scale=scale,
    )


def figure10_division_of_labor(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | str | None = None,
    cache=None,
    executor=None,
) -> ExperimentReport:
    """Speedups of RENO, RENO+full IT, full integration only, loads-only
    integration (the four bars of Figure 10).

    Compat wrapper over ``run_experiment("fig10", ...)``.
    """
    return run_experiment("fig10", suite=suite, workloads=workloads, scale=scale,
                          jobs=jobs, cache=cache, executor=executor)


# ---------------------------------------------------------------------------
# Figure 11: compensating for smaller register files / narrower issue
# ---------------------------------------------------------------------------


def _reduce_fig11_registers(matrix: MatrixResult, spec: SweepSpec) -> ExperimentReport:
    """Relative performance per register-file size; 100% = biggest-file BASE."""
    register_sizes = [int(label[1:]) for label in matrix.machine_labels]
    reference_machine = f"p{max(register_sizes)}"
    headers = ["config"] + [f"p{size}" for size in register_sizes]
    rows = []
    data = {}
    for reno_label in (SPEEDUP_BASELINE, "CF+ME", "RENO"):
        row = [reno_label]
        for size in register_sizes:
            relative = 0.0
            for name in matrix.workloads:
                reference = matrix.get(name, reference_machine, SPEEDUP_BASELINE).cycles
                target = matrix.get(name, f"p{size}", reno_label).cycles
                relative += reference / target
            relative /= len(matrix.workloads) or 1
            data[(reno_label, size)] = relative
            row.append(format_percent(relative))
        rows.append(row)
    return ExperimentReport(
        name=f"Figure 11 top ({spec.suite})",
        description="RENO compensating for physical register file size",
        headers=headers, rows=rows, data=data,
    )


@experiment("fig11_regs", title="Figure 11 (top)",
            description="RENO compensating for physical register file size",
            reducer=_reduce_fig11_registers)
def _fig11_regs_spec(
    suite: str,
    workloads: list[str] | None,
    scale: int,
    register_sizes: tuple[int, ...] = (96, 112, 128, 160),
) -> SweepSpec:
    """Grid: one machine per register-file size × the full RENO stack."""
    return SweepSpec.from_grid(
        suite, workloads,
        machines={f"p{size}": MachineConfig.default_4wide().with_registers(size)
                  for size in register_sizes},
        renos=dict(_RENO_STACK),
        scale=scale,
    )


def figure11_register_file(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    register_sizes: tuple[int, ...] = (96, 112, 128, 160),
    jobs: int | str | None = None,
    cache=None,
    executor=None,
) -> ExperimentReport:
    """Relative performance at several register-file sizes for BASE, CF+ME,
    RA+CSE (full RENO); 100% = baseline machine with 160 registers.

    Compat wrapper over ``run_experiment("fig11_regs", ...)``.
    """
    return run_experiment("fig11_regs", suite=suite, workloads=workloads, scale=scale,
                          register_sizes=register_sizes,
                          jobs=jobs, cache=cache, executor=executor)


def _reduce_fig11_width(matrix: MatrixResult, spec: SweepSpec) -> ExperimentReport:
    """Relative performance per issue width; 100% = widest-machine BASE."""
    reference_machine = matrix.machine_labels[-1]
    headers = ["config"] + list(matrix.machine_labels)
    rows = []
    data = {}
    for reno_label in (SPEEDUP_BASELINE, "CF+ME", "RENO"):
        row = [reno_label]
        for machine_label in matrix.machine_labels:
            relative = 0.0
            for name in matrix.workloads:
                reference = matrix.get(name, reference_machine, SPEEDUP_BASELINE).cycles
                target = matrix.get(name, machine_label, reno_label).cycles
                relative += reference / target
            relative /= len(matrix.workloads) or 1
            data[(reno_label, machine_label)] = relative
            row.append(format_percent(relative))
        rows.append(row)
    return ExperimentReport(
        name=f"Figure 11 bottom ({spec.suite})",
        description="RENO compensating for reduced issue width",
        headers=headers, rows=rows, data=data,
    )


@experiment("fig11_width", title="Figure 11 (bottom)",
            description="RENO compensating for reduced issue width",
            reducer=_reduce_fig11_width)
def _fig11_width_spec(
    suite: str,
    workloads: list[str] | None,
    scale: int,
    widths: tuple[tuple[int, int], ...] = ((2, 2), (2, 3), (3, 4)),
) -> SweepSpec:
    """Grid: one machine per (int, total) issue width × the full RENO stack."""
    return SweepSpec.from_grid(
        suite, workloads,
        machines={f"i{i}t{t}": MachineConfig.default_4wide().with_issue(i, t)
                  for i, t in widths},
        renos=dict(_RENO_STACK),
        scale=scale,
    )


def figure11_issue_width(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    widths: tuple[tuple[int, int], ...] = ((2, 2), (2, 3), (3, 4)),
    jobs: int | str | None = None,
    cache=None,
    executor=None,
) -> ExperimentReport:
    """Relative performance at i2t2 / i2t3 / i3t4 issue widths; 100% = the
    baseline i3t4 machine without RENO.

    Compat wrapper over ``run_experiment("fig11_width", ...)``.
    """
    return run_experiment("fig11_width", suite=suite, workloads=workloads, scale=scale,
                          widths=widths, jobs=jobs, cache=cache, executor=executor)


# ---------------------------------------------------------------------------
# Figure 12: 2-cycle wakeup/select loop
# ---------------------------------------------------------------------------


def _reduce_fig12(matrix: MatrixResult, spec: SweepSpec) -> ExperimentReport:
    """Relative performance per scheduler latency; 100% = 1-cycle BASE."""
    headers = ["config", "1-cycle", "2-cycle"]
    rows = []
    data = {}
    for reno_label in (SPEEDUP_BASELINE, "CF+ME", "RENO"):
        row = [reno_label]
        for machine_label in matrix.machine_labels:
            relative = 0.0
            for name in matrix.workloads:
                reference = matrix.get(name, "sched1", SPEEDUP_BASELINE).cycles
                target = matrix.get(name, machine_label, reno_label).cycles
                relative += reference / target
            relative /= len(matrix.workloads) or 1
            data[(reno_label, machine_label)] = relative
            row.append(format_percent(relative))
        rows.append(row)
    return ExperimentReport(
        name=f"Figure 12 ({spec.suite})",
        description="RENO with a 2-cycle wakeup-select loop",
        headers=headers, rows=rows, data=data,
    )


@experiment("fig12", title="Figure 12",
            description="RENO with a 2-cycle wakeup-select loop",
            reducer=_reduce_fig12)
def _fig12_spec(suite: str, workloads: list[str] | None, scale: int) -> SweepSpec:
    """Grid: {1-cycle, 2-cycle scheduler} × the full RENO stack."""
    return SweepSpec.from_grid(
        suite, workloads,
        machines={"sched1": MachineConfig.default_4wide(),
                  "sched2": MachineConfig.default_4wide().with_scheduler_latency(2)},
        renos=dict(_RENO_STACK),
        scale=scale,
    )


def figure12_scheduler(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | str | None = None,
    cache=None,
    executor=None,
) -> ExperimentReport:
    """Relative performance with 1- vs 2-cycle scheduling loops; 100% = the
    1-cycle baseline without RENO.

    Compat wrapper over ``run_experiment("fig12", ...)``.
    """
    return run_experiment("fig12", suite=suite, workloads=workloads, scale=scale,
                          jobs=jobs, cache=cache, executor=executor)


# ---------------------------------------------------------------------------
# Scale sweep: the same grids at growing workload sizes
# ---------------------------------------------------------------------------


def run_scale_sweep(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scales: tuple[int, ...] = (1, 2, 4),
    jobs: int | str | None = None,
    cache=None,
    max_instructions: int = 2_000_000,
    executor=None,
    progress=None,
    cancel=None,
    backend=None,
) -> ExperimentReport:
    """Baseline-vs-RENO behaviour as the workloads scale up.

    For each ``scale`` the full (workload × {BASE, RENO}) grid is fanned
    through the parallel/cached experiment engine — ``jobs=`` parallelises
    across workloads and ``cache=`` makes repeated sweeps nearly free, which
    is what makes multi-scale grids cheap to iterate on.  Rows report the
    dynamic instruction count, baseline cycles/IPC and the RENO speedup at
    every (workload, scale) point, plus a per-scale arithmetic mean.

    Args:
        suite: Workload suite name (``specint``/``mediabench``).
        workloads: Optional explicit workload subset.
        scales: Scale factors to sweep (each roughly multiplies the dynamic
            instruction count).
        jobs: Worker processes per grid (see :func:`repro.harness.run_matrix`).
        cache: Outcome cache (same forms as :func:`repro.harness.run_matrix`).
        max_instructions: Functional-simulation budget per workload run.
        executor: Explicit execution backend (overrides ``jobs``).
        progress: Per-cell completion callback, applied per scale grid
            (:data:`~repro.harness.executors.ProgressFn`).
        cancel: Cooperative cancellation probe
            (:data:`~repro.harness.executors.CancelFn`).
        backend: Cycle-loop backend name for every grid (see
            :func:`repro.harness.run_matrix`).
    """
    names = _workload_list(suite, workloads)
    machines = {"4wide": MachineConfig.default_4wide()}
    renos = {SPEEDUP_BASELINE: None, "RENO": RenoConfig.reno_default()}

    headers = ["benchmark", "scale", "instructions", "base cycles",
               "base IPC", "RENO speedup"]
    rows = []
    data = {}
    for scale in scales:
        matrix = run_matrix(names, machines, renos, scale=scale, jobs=jobs,
                            cache=cache, max_instructions=max_instructions,
                            executor=executor, progress=progress,
                            cancel=cancel, backend=backend)
        speedup_sum = 0.0
        for name in matrix.workloads:
            base = matrix.get(name, "4wide", SPEEDUP_BASELINE)
            speedup = matrix.speedup(name, "4wide", "RENO") - 1
            speedup_sum += speedup
            data[(name, scale)] = {
                "instructions": base.stats.committed,
                "base_cycles": base.cycles,
                "base_ipc": base.ipc,
                "speedup": speedup,
            }
            rows.append([_label(name), str(scale), str(base.stats.committed),
                         str(base.cycles), f"{base.ipc:.2f}",
                         format_percent(speedup, signed=True)])
        count = len(matrix.workloads) or 1
        data[("amean", scale)] = {"speedup": speedup_sum / count}
        rows.append(["amean", str(scale), "", "", "",
                     format_percent(speedup_sum / count, signed=True)])
    return ExperimentReport(
        name=f"Scale sweep ({suite})",
        description=f"baseline vs RENO at workload scales {list(scales)}",
        headers=headers, rows=rows, data=data,
    )


def _run_scale_sweep_experiment(suite, workloads=None, scale=1, jobs=None,
                                cache=None, executor=None, progress=None,
                                cancel=None, scales=(1, 2, 4), **params):
    """Registry adapter for the scale sweep, which sweeps ``scales`` and
    therefore rejects a single ``scale=`` instead of silently ignoring it."""
    if scale != 1:
        raise ValueError(
            f"scale_sweep sweeps scales={tuple(scales)} and ignores scale=; "
            f"pass scales=... (Python) instead of scale={scale}"
        )
    return run_scale_sweep(suite, workloads=workloads, scales=tuple(scales),
                           jobs=jobs, cache=cache, executor=executor,
                           progress=progress, cancel=cancel, **params)


register_experiment(Experiment(
    name="scale_sweep",
    title="Scale sweep",
    description="baseline vs RENO at workload scales {1, 2, 4}",
    run_fn=_run_scale_sweep_experiment,
))


# ---------------------------------------------------------------------------
# In-text results
# ---------------------------------------------------------------------------


def instruction_mix(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
) -> ExperimentReport:
    """Dynamic fractions of moves and register-immediate additions (§2.3).

    Runs only the (fast) functional simulator, so it takes no ``jobs``/
    ``cache`` arguments.
    """
    names = _workload_list(suite, workloads)
    headers = ["benchmark", "moves", "reg-imm adds", "loads", "stores", "branches"]
    rows = []
    data = {}
    sums = [0.0] * 5
    for entry in names:
        from repro.workloads.base import get_workload

        workload = get_workload(entry) if isinstance(entry, str) else entry
        result = FunctionalSimulator(workload.build(scale), 2_000_000).run()
        mix = mix_statistics(result.trace)
        values = [mix.move_fraction, mix.reg_imm_add_fraction, mix.load_fraction,
                  mix.store_fraction, mix.branch_fraction]
        sums = [total + value for total, value in zip(sums, values)]
        data[workload.name] = dict(zip(["moves", "addis", "loads", "stores", "branches"], values))
        rows.append([workload.label] + [format_percent(value) for value in values])
    count = len(names) or 1
    rows.append(["amean"] + [format_percent(total / count) for total in sums])
    data["amean"] = dict(zip(["moves", "addis", "loads", "stores", "branches"],
                             [total / count for total in sums]))
    return ExperimentReport(
        name=f"Instruction mix ({suite})",
        description="dynamic move / register-immediate-addition fractions (§2.3)",
        headers=headers, rows=rows, data=data,
    )


def _run_mix_experiment(suite, workloads=None, scale=1, jobs=None, cache=None,
                        executor=None, progress=None, cancel=None, **params):
    """Registry adapter: the mix is functional-only, so the engine arguments
    (``jobs``/``cache``/``executor``/``progress``/``cancel``) are accepted
    and ignored."""
    return instruction_mix(suite, workloads=workloads, scale=scale)


register_experiment(Experiment(
    name="mix",
    title="Instruction mix",
    description="dynamic move / register-immediate-addition fractions (§2.3)",
    run_fn=_run_mix_experiment,
))


def _reduce_fusion(matrix: MatrixResult, spec: SweepSpec) -> ExperimentReport:
    """Benefit retained per workload when every fusion costs a cycle."""
    headers = ["benchmark", "CF+ME speedup", "slow-fusion speedup", "benefit retained"]
    rows = []
    data = {}
    for name in matrix.workloads:
        fast = matrix.speedup(name, "4wide", "CF+ME") - 1
        slow = matrix.speedup(name, "4wide", "CF+ME slow fusion") - 1
        retained = slow / fast if fast > 0 else 1.0
        data[name] = {"fast": fast, "slow": slow, "retained": retained}
        rows.append([_label(name), format_percent(fast, signed=True),
                     format_percent(slow, signed=True), format_percent(retained)])
    return ExperimentReport(
        name=f"Fusion sensitivity ({spec.suite})",
        description="RENO_CF benefit with 0-cycle vs 1-cycle fusion (§3.3)",
        headers=headers, rows=rows, data=data,
    )


@experiment("fusion", title="Fusion sensitivity",
            description="RENO_CF benefit with 0-cycle vs 1-cycle fusion (§3.3)",
            suite="mediabench", reducer=_reduce_fusion)
def _fusion_spec(suite: str, workloads: list[str] | None, scale: int) -> SweepSpec:
    """Grid: 4wide × {BASE, CF+ME, CF+ME with 1-cycle fusion}."""
    return SweepSpec.from_grid(
        suite, workloads,
        machines={"4wide": MachineConfig.default_4wide()},
        renos={SPEEDUP_BASELINE: None, "CF+ME": RenoConfig.reno_cf_me(),
               "CF+ME slow fusion": RenoConfig.reno_cf_me().with_slow_fusion()},
        scale=scale,
    )


def fusion_sensitivity(
    suite: str = "mediabench",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | str | None = None,
    cache=None,
    executor=None,
) -> ExperimentReport:
    """§3.3: how much of RENO_CF's benefit survives if every fusion costs a cycle.

    Compat wrapper over ``run_experiment("fusion", ...)``.
    """
    return run_experiment("fusion", suite=suite, workloads=workloads, scale=scale,
                          jobs=jobs, cache=cache, executor=executor)


def _reduce_it_cost(matrix: MatrixResult, spec: SweepSpec) -> ExperimentReport:
    """IT bandwidth (lookups + insertions) per division-of-labor policy."""
    headers = ["benchmark", "RENO IT accesses", "FullInteg IT accesses", "saved", "elim RENO", "elim FullInteg"]
    rows = []
    data = {}
    for name in matrix.workloads:
        default_stats = matrix.get(name, "4wide", "RENO").stats
        full_stats = matrix.get(name, "4wide", "RENO+FullInteg").stats
        default_accesses = default_stats.it_lookups + default_stats.it_insertions
        full_accesses = full_stats.it_lookups + full_stats.it_insertions
        saved = 1 - default_accesses / full_accesses if full_accesses else 0.0
        data[name] = {"default": default_accesses, "full": full_accesses, "saved": saved}
        rows.append([_label(name), str(default_accesses), str(full_accesses),
                     format_percent(saved),
                     format_percent(default_stats.elimination_rate),
                     format_percent(full_stats.elimination_rate)])
    return ExperimentReport(
        name=f"Integration table cost ({spec.suite})",
        description="IT bandwidth: loads-only division of labor vs full integration (§4.4)",
        headers=headers, rows=rows, data=data,
    )


@experiment("it_cost", title="Integration table cost",
            description="IT bandwidth: loads-only division of labor vs full integration (§4.4)",
            reducer=_reduce_it_cost)
def _it_cost_spec(suite: str, workloads: list[str] | None, scale: int) -> SweepSpec:
    """Grid: 4wide × {BASE, RENO, RENO+FullInteg}."""
    return SweepSpec.from_grid(
        suite, workloads,
        machines={"4wide": MachineConfig.default_4wide()},
        renos={SPEEDUP_BASELINE: None, "RENO": RenoConfig.reno_default(),
               "RENO+FullInteg": RenoConfig.reno_full_integration()},
        scale=scale,
    )


def integration_table_cost(
    suite: str = "specint",
    workloads: list[str] | None = None,
    scale: int = 1,
    jobs: int | str | None = None,
    cache=None,
    executor=None,
) -> ExperimentReport:
    """§4.4: IT bandwidth (lookups + insertions) for the default division of
    labor versus a full integration table.

    Compat wrapper over ``run_experiment("it_cost", ...)``.
    """
    return run_experiment("it_cost", suite=suite, workloads=workloads, scale=scale,
                          jobs=jobs, cache=cache, executor=executor)
